//! `herctrace` — trace, profile, and export Hercules executions.
//!
//! Two sources, four renderings:
//!
//! * **Live** (default): executes a fixture flow (Fig. 5 by default)
//!   with simulated tool work, tracing every span, and renders the
//!   result.
//! * **Replay** (`--workspace DIR`): recovers a durable workspace and
//!   synthesizes the trace from the last persisted execution report —
//!   no tool re-runs.
//!
//! Formats: `report` (critical-path analysis), `gantt` (text chart),
//! `tree` (span tree), `chrome` (Chrome `trace_event` JSON — load the
//! file in `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! ```text
//! herctrace --format gantt
//! herctrace --workspace /tmp/ws --format chrome --out trace.json
//! ```

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use hercules::store::Workspace;
use hercules_exec::{report_to_trace, schedule_to_trace, toy, Binding, Executor};
use hercules_flow::TaskGraph;
use hercules_history::HistoryDb;
use hercules_obs::chrome::to_chrome_trace;
use hercules_obs::{profile, Metrics, RingBuffer, TraceEvent, Tracer};
use hercules_schema::fixtures;

const USAGE: &str = "\
herctrace — trace, profile, and export Hercules executions

USAGE:
    herctrace [OPTIONS]

SOURCE (choose one):
    (default)            execute a fixture flow live, traced
    --workspace <DIR>    replay the last execution of a durable workspace
    --schedule <N>       simulate an N-machine cluster schedule instead

OPTIONS:
    --fixture <fig5|fig6>   fixture flow for live/schedule mode [default: fig5]
    --format <report|gantt|tree|chrome>   rendering [default: report]
    --out <FILE>            write to FILE instead of stdout
    --work-ms <N>           simulated per-tool compute [default: 5]
    --serial                run subtasks serially (baseline comparison)
    -h, --help              print this help
";

struct Options {
    workspace: Option<String>,
    schedule: Option<usize>,
    fixture: String,
    format: String,
    out: Option<String>,
    work_ms: u64,
    serial: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workspace: None,
        schedule: None,
        fixture: "fig5".into(),
        format: "report".into(),
        out: None,
        work_ms: 5,
        serial: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--workspace" => opts.workspace = Some(value("--workspace")?),
            "--schedule" => {
                opts.schedule = Some(
                    value("--schedule")?
                        .parse()
                        .map_err(|_| "--schedule needs a machine count".to_owned())?,
                );
            }
            "--fixture" => opts.fixture = value("--fixture")?,
            "--format" => opts.format = value("--format")?,
            "--out" => opts.out = Some(value("--out")?),
            "--work-ms" => {
                opts.work_ms = value("--work-ms")?
                    .parse()
                    .map_err(|_| "--work-ms needs a number".to_owned())?;
            }
            "--serial" => opts.serial = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if !matches!(opts.format.as_str(), "report" | "gantt" | "tree" | "chrome") {
        return Err(format!("unknown format `{}`", opts.format));
    }
    if !matches!(opts.fixture.as_str(), "fig5" | "fig6") {
        return Err(format!("unknown fixture `{}` (fig5 or fig6)", opts.fixture));
    }
    Ok(opts)
}

fn fixture_flow(name: &str) -> Result<TaskGraph, String> {
    let schema = Arc::new(fixtures::fig1());
    let flow = match name {
        "fig6" => hercules_flow::fixtures::fig6(schema),
        _ => hercules_flow::fixtures::fig5(schema),
    };
    flow.map_err(|e| format!("fixture: {e}"))
}

/// Executes the fixture flow live with tracing on; returns the trace
/// and the metrics it produced.
fn live_trace(opts: &Options) -> Result<(Vec<TraceEvent>, Metrics), String> {
    let flow = fixture_flow(&opts.fixture)?;
    let schema = flow.schema().clone();
    let mut db = HistoryDb::new(schema.clone());
    toy::seed_everything(&mut db, "herctrace");
    let mut binding = Binding::new();
    binding.bind_latest(&flow, &db);

    let ring = Arc::new(RingBuffer::new(65_536));
    let tracer = Tracer::new(ring.clone());
    let metrics = Metrics::new();
    let mut executor = Executor::new(toy::text_registry_with(
        &schema,
        toy::TextTool {
            work: Duration::from_millis(opts.work_ms),
            ..toy::TextTool::default()
        },
    ));
    executor.options_mut().parallel = !opts.serial;
    executor.options_mut().tracer = tracer;
    executor.options_mut().metrics = metrics.clone();
    executor
        .execute(&flow, &binding, &mut db)
        .map_err(|e| format!("execution: {e}"))?;
    Ok((ring.snapshot(), metrics))
}

/// Recovers a workspace and synthesizes the trace of its last run.
fn replayed_trace(dir: &str) -> Result<Vec<TraceEvent>, String> {
    let (_ws, session, recovery) =
        Workspace::open_session(Path::new(dir), |s| hercules::encaps::odyssey_registry(s))
            .map_err(|e| format!("workspace `{dir}`: {e}"))?;
    eprintln!("recovered workspace `{dir}`: {recovery}");
    eprintln!("recovery: {}", recovery.to_json());
    let report = session
        .last_report()
        .ok_or_else(|| format!("workspace `{dir}` holds no execution report"))?;
    Ok(report_to_trace(report, session.flow().ok()))
}

fn render(events: &[TraceEvent], format: &str, metrics: Option<&Metrics>) -> String {
    match format {
        "chrome" => to_chrome_trace(events),
        "tree" => profile::render_tree(&profile::build_spans(events)),
        "gantt" => profile::profile(events).render_gantt(80),
        _ => {
            let mut out = profile::profile(events).render_text();
            if let Some(metrics) = metrics {
                out.push('\n');
                out.push_str(&metrics.snapshot().render_text());
            }
            out
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;

    let output = if let Some(dir) = &opts.workspace {
        let events = replayed_trace(dir)?;
        render(&events, &opts.format, None)
    } else if let Some(machines) = opts.schedule {
        let flow = fixture_flow(&opts.fixture)?;
        let schedule = hercules_exec::cluster::simulate_schedule(
            &flow,
            &hercules_exec::cluster::UniformCost(10),
            machines,
        )
        .map_err(|e| format!("schedule: {e}"))?;
        let events = schedule_to_trace(&schedule, Some(&flow));
        render(&events, &opts.format, None)
    } else {
        let (events, metrics) = live_trace(&opts)?;
        let mut out = render(&events, &opts.format, Some(&metrics));
        if opts.format == "report" {
            let flow = fixture_flow(&opts.fixture)?;
            let width = flow.max_parallelism().map_err(|e| format!("waves: {e}"))?;
            out.push_str(&format!(
                "flow `{}` schema-theoretic max parallelism (widest DAG level): {width}\n",
                opts.fixture
            ));
        }
        out
    };

    match &opts.out {
        Some(path) => {
            std::fs::write(path, &output).map_err(|e| format!("write `{path}`: {e}"))?;
            eprintln!("wrote {} bytes to `{path}`", output.len());
        }
        None => print!("{output}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("herctrace: {msg}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
