//! The standard Odyssey demonstration environment: the merged schema of
//! Figs. 1–2, the simulated EDA tools, and a seeded standard library
//! matching the Fig. 9 browser listing (a low-pass filter by `jbb`, a
//! CMOS full adder by `director`, an operational amplifier by
//! `sutton`).
//!
//! The 1993 library cells were analog/mixed; this reproduction's
//! substrate is digital, so the "low pass filter" and "operational
//! amplifier" are stand-in gate-level circuits carrying the original
//! names (see `DESIGN.md`, substitutions table).

use std::sync::Arc;

use hercules_eda::{cells, GateKind, Netlist, PlacementRules, Stimuli};
use hercules_history::Metadata;
use hercules_schema::fixtures;

use crate::encaps::{odyssey_registry, SimOptions};
use crate::session::Session;

/// Builds a two-stage buffer chain standing in for the Fig. 9 low-pass
/// filter.
pub fn low_pass_filter() -> Netlist {
    let mut n = Netlist::new("low_pass_filter");
    let a = n.add_port_in("in");
    let m1 = n.add_net("m1");
    let m2 = n.add_net("m2");
    let y = n.add_port_out("out");
    n.add_gate(GateKind::Buf, &[a], m1);
    n.add_gate(GateKind::Inv, &[m1], m2);
    n.add_gate(GateKind::Inv, &[m2], y);
    n
}

/// Builds a differential-pair-shaped gate circuit standing in for the
/// Fig. 9 operational amplifier.
pub fn op_amp() -> Netlist {
    let mut n = Netlist::new("op_amp");
    let plus = n.add_port_in("plus");
    let minus = n.add_port_in("minus");
    let d = n.add_net("d");
    let y = n.add_port_out("out");
    n.add_gate(GateKind::Xor, &[plus, minus], d);
    n.add_gate(GateKind::Buf, &[d], y);
    n
}

/// Creates the standard session: Odyssey schema, simulated tools, and
/// the seeded library.
///
/// # Panics
///
/// Never under normal operation; seeding uses only entities the
/// Odyssey schema declares.
pub fn odyssey_session(user: &str) -> Session {
    let schema = Arc::new(fixtures::odyssey());
    let registry = odyssey_registry(&schema);
    let mut session = Session::new(schema.clone(), registry, user);
    let id = |name: &str| schema.require(name).expect("odyssey entity");

    {
        let db = session.db_mut();
        let mut tool = |entity: &str, name: &str, data: &[u8]| {
            db.record_primary(id(entity), Metadata::by("cad").named(name), data)
                .expect("tool seeds")
        };
        // Tool binaries (primary instances; data = path or script).
        let dme_inst = tool("DeviceModelEditor", "dme v1.2", b"/usr/cad/bin/dme");
        let _sced = tool("CircuitEditor", "sced (interactive)", b"");
        tool("Simulator", "hspice 92.1", b"/usr/cad/bin/hspice");
        tool("Placer", "rowplace", b"/usr/cad/bin/rowplace");
        tool("Extractor", "magic-ext", b"/usr/cad/bin/ext");
        tool("Verifier", "gemini-lvs", b"/usr/cad/bin/lvs");
        tool("Plotter", "xgraph", b"/usr/cad/bin/xgraph");
        tool("SimulatorCompiler", "cosmos-cc", b"/usr/cad/bin/cosmos");
        // Three optimizer instances sharing one encapsulation (§3.3).
        tool("Optimizer", "hillclimb", b"hillclimb");
        tool("Optimizer", "anneal", b"anneal");
        tool("Optimizer", "random-search", b"random-search");

        // Scripted editor sessions = the Fig. 9 designs.
        let scripted =
            |db: &mut hercules_history::HistoryDb, user: &str, name: &str, netlist: &Netlist| {
                db.record_primary(
                    id("CircuitEditor"),
                    Metadata::by(user).named(&format!("sced script: {name}")),
                    netlist.to_bytes().as_slice(),
                )
                .expect("script seeds")
            };
        scripted(db, "jbb", "Low pass filter", &low_pass_filter());
        scripted(db, "director", "CMOS Full adder", &cells::full_adder());
        scripted(db, "sutton", "Operational Amplifier", &op_amp());

        // A fab-provided model deck, recorded as the product of the
        // device-model editor so its derivation history is complete.
        db.record_derived(
            id("DeviceModels"),
            Metadata::by("cad").named("cmos08 models"),
            &hercules_eda::DeviceModels::default_1993().to_bytes(),
            hercules_history::Derivation::by_tool(dme_inst, []),
        )
        .expect("models seed");

        // Primary data.
        db.record_primary(
            id("PlacementRules"),
            Metadata::by("cad").named("default rules"),
            &PlacementRules::default().to_bytes(),
        )
        .expect("rules seed");
        db.record_primary(
            id("SimulatorOptions"),
            Metadata::by("cad").named("default options"),
            &SimOptions::default().to_bytes(),
        )
        .expect("options seed");
        // Seed the step stimuli first so the *newest* stimuli (what
        // `bind_latest` picks) is the adder walk used by the examples.
        let mut step = Stimuli::new("step");
        step.set(0, "in", hercules_eda::Logic::Zero);
        step.set(20, "in", hercules_eda::Logic::One);
        db.record_primary(
            id("Stimuli"),
            Metadata::by("cad").named("step on in").keyword("step"),
            &step.to_bytes(),
        )
        .expect("stimuli seed");
        let walk = Stimuli::exhaustive(&["a", "b", "cin"], 50);
        db.record_primary(
            id("Stimuli"),
            Metadata::by("cad")
                .named("adder walk")
                .keyword("exhaustive"),
            &walk.to_bytes(),
        )
        .expect("stimuli seed");
    }
    session
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_is_seeded() {
        let session = odyssey_session("tester");
        let db = session.db();
        assert!(db.len() >= 16);
        let users = db.users();
        for u in ["cad", "jbb", "director", "sutton"] {
            assert!(users.contains(&u.to_owned()), "missing {u}");
        }
    }

    #[test]
    fn stand_in_circuits_simulate() {
        use hercules_eda::{simulate, Logic, NetDelays};
        let lpf = low_pass_filter();
        let mut s = Stimuli::new("step");
        s.set(0, "in", Logic::One);
        let r = simulate(&lpf, &s, &NetDelays::default()).expect("ok");
        assert_eq!(r.wave("out").expect("exists").last_value(), Logic::One);

        let oa = op_amp();
        let mut s = Stimuli::new("diff");
        s.set(0, "plus", Logic::One);
        s.set(0, "minus", Logic::Zero);
        let r = simulate(&oa, &s, &NetDelays::default()).expect("ok");
        assert_eq!(r.wave("out").expect("exists").last_value(), Logic::One);
    }

    #[test]
    fn three_optimizer_instances_share_one_tool_entity() {
        let session = odyssey_session("tester");
        let schema = session.schema().clone();
        let opt = schema.require("Optimizer").expect("known");
        assert_eq!(session.db().instances_of(opt).len(), 3);
    }
}
