//! The Hercules user interface (Fig. 9), as a deterministic text UI.
//!
//! "A visualization of a task graph forms the basis of the Hercules
//! user interface" — and crucially "Hercules uses the *same* user
//! interface for each approach". [`render_task_window`] draws the task
//! window; [`Command`] and [`Ui::execute`] provide the scriptable
//! command loop the examples and tests drive (menu entries: Expand,
//! Unexpand, Browse, History, Select, Run…).

use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

use hercules_analyze::{Diagnostics, HistoryLinter, HistoryLinterSpec};
use hercules_exec::report_to_trace;
use hercules_flow::{render, NodeId};
use hercules_history::{InstanceId, InstanceSpec};
use hercules_obs::{
    names, profile, AnalysisHealth, Collector, FlightRecorder, HealthReport, HealthThresholds,
    MetricsSnapshot,
};

use hercules_sim::Env;

use crate::catalog;
use crate::error::HerculesError;
use crate::persist::ExecReportSpec;
use crate::session::{Approach, Session};
use crate::store::{ExecSpec, JournalOp, RecoveryReport, StoreError, Workspace, WriteState};
use crate::telemetry::{self, SessionStamp, TelemetryWriter};

/// One parsed UI command.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variants mirror the menu entries of Fig. 9
pub enum Command {
    /// `goal <Entity>` — goal-based start.
    Goal(String),
    /// `tool <Entity>` — tool-based start.
    Tool(String),
    /// `data <iN>` — data-based start.
    Data(InstanceId),
    /// `plan <name>` — plan-based start from the flow catalog.
    Plan(String),
    /// `expand <nN>`.
    Expand(NodeId),
    /// `unexpand <nN>`.
    Unexpand(NodeId),
    /// `specialize <nN> <Subtype>`.
    Specialize(NodeId, String),
    /// `browse <nN>`.
    Browse(NodeId),
    /// `select <nN> <iN> [iN…]`.
    Select(NodeId, Vec<InstanceId>),
    /// `bind-latest`.
    BindLatest,
    /// `run`.
    Run,
    /// `resume` — re-run only the failed/skipped subtasks of the last
    /// partial execution, serving committed work from the history.
    Resume,
    /// `history <iN>`.
    History(InstanceId),
    /// `uses <iN>` — forward-chain: everything derived from the
    /// instance (the "Use Dependencies" browser option).
    Uses(InstanceId),
    /// `retrace <iN>` — consistency maintenance: re-run the flow behind
    /// the instance against the newest input versions.
    Retrace(InstanceId),
    /// `menu <nN>` — show the Fig. 9 pop-up menu for a node.
    Menu(NodeId),
    /// `store <name>` — store the flow in the catalog.
    Store(String),
    /// `log` — list the session's execution events, including failures.
    Log,
    /// `trace` — render the span tree of the traced executions.
    Trace,
    /// `stats` — render the session's metrics registry.
    Stats,
    /// `profile` — critical-path analysis and Gantt chart of the last
    /// execution (live trace when present, else synthesized from the
    /// last report — e.g. after reopening a workspace).
    Profile,
    /// `show` — render the task window.
    Show,
    /// `clear` — abandon the flow.
    Clear,
    /// `catalogs` — list entity/tool/flow catalogs.
    Catalogs,
    /// `save <dir>` — create a durable workspace at the directory and
    /// journal every later mutating command into it.
    Save(String),
    /// `open <dir>` — recover the session from a durable workspace
    /// (replaying its journal, truncating any torn tail).
    Open(String),
    /// `checkpoint` — snapshot the session and rotate the journal.
    Checkpoint,
    /// `scrub` — CRC-verify every journal segment and the checkpoint,
    /// quarantining and repairing damage when the workspace is
    /// writable.
    Scrub,
    /// `lint [--incremental]` — run the static analyzer over the
    /// session. With `--incremental` the history passes re-analyze only
    /// the cone of instances affected since the last lint.
    Lint {
        /// Reuse the persistent analysis state instead of starting
        /// from scratch.
        incremental: bool,
    },
    /// `stale` — report every out-of-date derived instance with its
    /// predicted retrace cone (§3.3's "whether such retracing need
    /// occur", answered without running anything).
    Stale,
    /// `health [--json]` — the aggregated workspace health report:
    /// store mode/lease/quarantine, scheduler rates, cache hit rate,
    /// and analysis-index freshness, each mapped to ok/warn/critical.
    Health {
        /// Render as a JSON object instead of text.
        json: bool,
    },
    /// `cache open <dir>` — attach a content-addressed result cache
    /// rooted at the directory; later executions consult it ahead of
    /// tool dispatch and write produced results back. Sessions (and
    /// workspaces) that open the same root share results.
    CacheOpen(String),
    /// `cache stats` — per-tier hit/miss/error counts and occupancy of
    /// the attached content cache.
    CacheStats,
    /// `cache gc` — reclaim the content cache's disk tier down to its
    /// byte budget (oldest entries first), dropping damaged entries.
    CacheGc,
}

impl Command {
    /// Parses one command line.
    ///
    /// # Errors
    ///
    /// Returns [`HerculesError::BadCommand`] with a reason.
    pub fn parse(input: &str) -> Result<Command, HerculesError> {
        let bad = |reason: &str| HerculesError::BadCommand {
            input: input.to_owned(),
            reason: reason.to_owned(),
        };
        let mut parts = input.split_whitespace();
        let verb = parts.next().ok_or_else(|| bad("empty command"))?;
        let parse_node = |tok: Option<&str>| -> Result<NodeId, HerculesError> {
            let tok = tok.ok_or_else(|| bad("missing node (nN)"))?;
            let idx: usize = tok
                .strip_prefix('n')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad("node must look like n3"))?;
            Ok(NodeId::from_index(idx))
        };
        let parse_instance = |tok: &str| -> Result<InstanceId, HerculesError> {
            tok.strip_prefix('i')
                .and_then(|s| s.parse().ok())
                .map(InstanceId::from_raw)
                .ok_or_else(|| bad("instance must look like i7"))
        };
        match verb {
            "goal" => Ok(Command::Goal(
                parts.next().ok_or_else(|| bad("missing entity"))?.into(),
            )),
            "tool" => Ok(Command::Tool(
                parts.next().ok_or_else(|| bad("missing tool"))?.into(),
            )),
            "data" => Ok(Command::Data(parse_instance(
                parts.next().ok_or_else(|| bad("missing instance"))?,
            )?)),
            "plan" => Ok(Command::Plan(
                parts.next().ok_or_else(|| bad("missing flow name"))?.into(),
            )),
            "expand" => Ok(Command::Expand(parse_node(parts.next())?)),
            "unexpand" => Ok(Command::Unexpand(parse_node(parts.next())?)),
            "specialize" => Ok(Command::Specialize(
                parse_node(parts.next())?,
                parts.next().ok_or_else(|| bad("missing subtype"))?.into(),
            )),
            "browse" => Ok(Command::Browse(parse_node(parts.next())?)),
            "select" => {
                let node = parse_node(parts.next())?;
                let instances: Result<Vec<InstanceId>, HerculesError> =
                    parts.map(parse_instance).collect();
                let instances = instances?;
                if instances.is_empty() {
                    return Err(bad("select needs at least one instance"));
                }
                Ok(Command::Select(node, instances))
            }
            "bind-latest" => Ok(Command::BindLatest),
            "run" => Ok(Command::Run),
            "resume" => Ok(Command::Resume),
            "history" => Ok(Command::History(parse_instance(
                parts.next().ok_or_else(|| bad("missing instance"))?,
            )?)),
            "uses" => Ok(Command::Uses(parse_instance(
                parts.next().ok_or_else(|| bad("missing instance"))?,
            )?)),
            "retrace" => Ok(Command::Retrace(parse_instance(
                parts.next().ok_or_else(|| bad("missing instance"))?,
            )?)),
            "menu" => Ok(Command::Menu(parse_node(parts.next())?)),
            "store" => Ok(Command::Store(
                parts.next().ok_or_else(|| bad("missing name"))?.into(),
            )),
            "log" => Ok(Command::Log),
            "trace" => Ok(Command::Trace),
            "stats" => Ok(Command::Stats),
            "profile" => Ok(Command::Profile),
            "show" => Ok(Command::Show),
            "clear" => Ok(Command::Clear),
            "catalogs" => Ok(Command::Catalogs),
            "save" => Ok(Command::Save(
                parts.next().ok_or_else(|| bad("missing directory"))?.into(),
            )),
            "open" => Ok(Command::Open(
                parts.next().ok_or_else(|| bad("missing directory"))?.into(),
            )),
            "checkpoint" => Ok(Command::Checkpoint),
            "scrub" => Ok(Command::Scrub),
            "lint" => match parts.next() {
                None => Ok(Command::Lint { incremental: false }),
                Some("--incremental") => Ok(Command::Lint { incremental: true }),
                Some(other) => Err(bad(&format!("unknown lint option `{other}`"))),
            },
            "stale" => Ok(Command::Stale),
            "health" => match parts.next() {
                None => Ok(Command::Health { json: false }),
                Some("--json") => Ok(Command::Health { json: true }),
                Some(other) => Err(bad(&format!("unknown health option `{other}`"))),
            },
            "cache" => match parts.next() {
                Some("open") => Ok(Command::CacheOpen(
                    parts
                        .next()
                        .ok_or_else(|| bad("cache open needs a directory"))?
                        .to_owned(),
                )),
                Some("stats") => Ok(Command::CacheStats),
                Some("gc") => Ok(Command::CacheGc),
                _ => Err(bad("cache subcommands: open <dir>, stats, gc")),
            },
            other => Err(bad(&format!("unknown verb `{other}`"))),
        }
    }
}

/// Renders the Fig. 9 task window: the flow tree, the binding status of
/// every leaf, and the menu line.
pub fn render_task_window(session: &Session) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "┌─ Hercules ── user {} ─", session.user());
    match session.flow() {
        Ok(flow) => {
            for line in render::to_text(flow).lines() {
                let _ = writeln!(out, "│ {line}");
            }
            let mut leaves = flow.leaves();
            leaves.sort();
            for leaf in leaves {
                let bound = session.binding().get(leaf);
                let entity = flow
                    .entity_of(leaf)
                    .map(|e| session.schema().entity(e).name().to_owned())
                    .unwrap_or_default();
                let status = if bound.is_empty() {
                    "(unbound)".to_owned()
                } else {
                    bound
                        .iter()
                        .map(|i| instance_label(session, *i))
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                let _ = writeln!(out, "│ {leaf} {entity} ⇐ {status}");
            }
        }
        Err(_) => {
            let _ = writeln!(out, "│ (no task under construction — New Task…)");
        }
    }
    let _ = writeln!(
        out,
        "└─ menu: Expand · Unexpand · Specialize · Browse · Select · Run · History"
    );
    out
}

/// Formats a Unix-epoch millisecond stamp as `YYYY-MM-DD HH:MM:SSZ`
/// (civil-from-days conversion; proleptic Gregorian, UTC).
fn format_utc_ms(wall_unix_ms: u64) -> String {
    let secs = wall_unix_ms / 1_000;
    let (h, m, s) = (secs / 3600 % 24, secs / 60 % 60, secs % 60);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = yoe + era * 400 + i64::from(month <= 2);
    format!("{year:04}-{month:02}-{day:02} {h:02}:{m:02}:{s:02}Z")
}

fn instance_label(session: &Session, id: InstanceId) -> String {
    session
        .db()
        .instance(id)
        .map(|i| {
            if i.meta().name.is_empty() {
                id.to_string()
            } else {
                format!("{id}\u{201c}{}\u{201d}", i.meta().name)
            }
        })
        .unwrap_or_else(|_| id.to_string())
}

/// A scriptable UI shell over a session, optionally backed by a
/// durable [`Workspace`]: after `save <dir>` (or `open <dir>`), every
/// mutating command is journaled — fsynced before its result is
/// reported — so an acknowledged command survives a crash.
#[derive(Debug)]
pub struct Ui {
    session: Session,
    workspace: Option<Workspace>,
    last_recovery: Option<RecoveryReport>,
    env: Env,
    /// Persistent analysis state: the reverse-dependency index and
    /// cached verdicts behind `lint --incremental` and `stale`.
    linter: HistoryLinter,
    /// The always-on flight recorder, attached while a writable
    /// workspace is: the session tracer tees span events into the
    /// ring, and every command pumps the ring into the workspace's
    /// `telemetry-N.jsonl` sidecar.
    telemetry: Option<Telemetry>,
    /// Thresholds the `health` command maps raw signals through.
    health_thresholds: HealthThresholds,
}

/// The attached flight-recorder state (see [`crate::telemetry`]).
#[derive(Debug)]
struct Telemetry {
    recorder: Arc<FlightRecorder>,
    writer: TelemetryWriter,
    /// Metrics as of the last periodic export; the next export writes
    /// the delta against this.
    last_snapshot: MetricsSnapshot,
    /// Wall-clock deadline for the next metrics-delta export.
    next_export_ms: u64,
    /// Ring drop counter as of the last pump (the recorder reports a
    /// lifetime total; the pump translates it into counter increments).
    last_dropped: u64,
}

/// How often (wall-clock) a metrics delta is exported into the
/// telemetry stream — and, with it, how often the stream is fsynced.
const TELEMETRY_EXPORT_INTERVAL_MS: u64 = 1_000;

/// Sidecar file (under the workspace root) persisting the analysis
/// state across processes: a [`HistoryLinterSpec`] as JSON. Written
/// best-effort at `checkpoint`, validated against the history on
/// `open` — a stale or damaged sidecar just means the first lint is a
/// full one.
const ANALYSIS_SIDECAR: &str = "analysis-index.json";

impl Ui {
    /// Wraps a session (no workspace attached; use `save <dir>`).
    pub fn new(session: Session) -> Ui {
        Ui::new_in(session, Env::real())
    }

    /// Wraps a session whose `save`/`open` commands run against an
    /// explicit environment — the entry point the simulation harness
    /// uses to put the whole command loop on a simulated disk.
    pub fn new_in(session: Session, env: Env) -> Ui {
        Ui {
            session,
            workspace: None,
            last_recovery: None,
            env,
            linter: HistoryLinter::new(),
            telemetry: None,
            health_thresholds: HealthThresholds::default(),
        }
    }

    /// Replaces the thresholds the `health` command uses.
    pub fn set_health_thresholds(&mut self, thresholds: HealthThresholds) {
        self.health_thresholds = thresholds;
    }

    /// Returns the wrapped session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Returns mutable access to the session.
    ///
    /// Mutations made this way bypass the journal; take a `checkpoint`
    /// afterwards if a workspace is attached.
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Returns the attached durable workspace, if any.
    pub fn workspace(&self) -> Option<&Workspace> {
        self.workspace.as_ref()
    }

    /// Executes one command line, returning the transcript text the
    /// user would see.
    ///
    /// # Errors
    ///
    /// Parse and execution errors, verbatim.
    pub fn execute(&mut self, line: &str) -> Result<String, HerculesError> {
        let command = Command::parse(line)?;
        self.apply(command)
    }

    /// Executes a parsed command, journaling its effect when a
    /// workspace is attached.
    ///
    /// # Errors
    ///
    /// Execution errors from the session; journaling errors (an
    /// acknowledged command must be durable, so a failed fsync is
    /// reported even though the in-memory command succeeded).
    pub fn apply(&mut self, command: Command) -> Result<String, HerculesError> {
        // A degraded workspace must reject mutations *before* they land
        // in the in-memory session: otherwise the session and the
        // journal silently diverge.
        if let Some(ws) = &self.workspace {
            if let WriteState::Degraded(reason) = ws.write_state() {
                if Ui::mutates_session(&command) {
                    return Err(HerculesError::from(StoreError::Degraded(reason.clone())));
                }
            }
        }
        let db_before = self.session.db().len();
        let events_before = self.session.events().len();
        let journaled = command.clone();
        let result = self.dispatch(command);
        let op = self
            .workspace
            .is_some()
            .then(|| self.journal_op(&journaled, db_before, events_before, result.is_ok()))
            .flatten();
        let appended = match (op, self.workspace.as_mut()) {
            (Some(op), Some(ws)) => ws.append(&op).map_err(HerculesError::from),
            _ => Ok(()),
        };
        // Telemetry rides behind the journal: the command's spans land
        // in the sidecar only after the command itself is durable, and
        // a telemetry failure never un-acknowledges a command.
        self.pump_telemetry();
        appended?;
        result
    }

    /// Whether a command mutates the session (and so must be refused
    /// up front while the attached workspace is degraded read-only).
    fn mutates_session(command: &Command) -> bool {
        matches!(
            command,
            Command::Goal(_)
                | Command::Tool(_)
                | Command::Data(_)
                | Command::Plan(_)
                | Command::Expand(_)
                | Command::Unexpand(_)
                | Command::Specialize(_, _)
                | Command::Select(_, _)
                | Command::BindLatest
                | Command::Run
                | Command::Resume
                | Command::Retrace(_)
                | Command::Store(_)
                | Command::Clear
                | Command::Checkpoint
        )
    }

    /// Maps an executed command to the journal operation recording its
    /// effect, or `None` for read-only commands (and failed ones that
    /// changed nothing).
    fn journal_op(
        &self,
        command: &Command,
        db_before: usize,
        events_before: usize,
        ok: bool,
    ) -> Option<JournalOp> {
        match command {
            // Flow mutations: on success the session's construction
            // tape ends with exactly the op just performed (a plan
            // start resets the tape to its single Install op).
            Command::Goal(_)
            | Command::Tool(_)
            | Command::Plan(_)
            | Command::Expand(_)
            | Command::Unexpand(_)
            | Command::Specialize(_, _) => {
                if !ok {
                    return None;
                }
                self.session.flow_ops().last().cloned().map(JournalOp::Flow)
            }
            Command::Data(instance) => ok.then(|| JournalOp::DataStart {
                instance: instance.raw(),
            }),
            Command::Select(node, instances) => ok.then(|| JournalOp::Select {
                node: node.index(),
                instances: instances.iter().map(|i| i.raw()).collect(),
            }),
            Command::BindLatest => ok.then_some(JournalOp::BindLatest),
            Command::Store(name) => ok.then(|| JournalOp::StoreFlow {
                name: name.clone(),
                description: "stored from the UI".to_owned(),
            }),
            Command::Clear => ok.then_some(JournalOp::Clear),
            // Executions are journaled extensionally — committed
            // instances, the report, the logged event — even when they
            // returned an error, because an aborted run may still have
            // committed disjoint branches.
            Command::Run | Command::Resume => self.exec_op(db_before, events_before, ok),
            Command::Retrace(_) => self.exec_op(db_before, events_before, false),
            // Read-only commands, and the workspace commands
            // themselves, are not journaled.
            Command::Browse(_)
            | Command::History(_)
            | Command::Uses(_)
            | Command::Menu(_)
            | Command::Log
            | Command::Trace
            | Command::Stats
            | Command::Profile
            | Command::Show
            | Command::Catalogs
            | Command::Save(_)
            | Command::Open(_)
            | Command::Checkpoint
            | Command::Scrub
            | Command::Lint { .. }
            | Command::Stale
            | Command::Health { .. }
            | Command::CacheOpen(_)
            | Command::CacheStats
            | Command::CacheGc => None,
        }
    }

    /// Captures the extensional effect of an execution command: the
    /// instances committed since `db_before`, the event it logged, and
    /// (for `run`/`resume` that succeeded, `sets_report`) the report it
    /// installed.
    fn exec_op(
        &self,
        db_before: usize,
        events_before: usize,
        sets_report: bool,
    ) -> Option<JournalOp> {
        let db = self.session.db();
        let instances: Vec<InstanceSpec> = (db_before..db.len())
            .map(|i| InstanceSpec::capture(db, i))
            .collect();
        let event = self.session.events().get(events_before).cloned();
        if instances.is_empty() && event.is_none() && !sets_report {
            return None;
        }
        let report = if sets_report {
            self.session.last_report().map(ExecReportSpec::from_report)
        } else {
            None
        };
        Some(JournalOp::Exec(ExecSpec {
            instances,
            report,
            event,
        }))
    }

    fn dispatch(&mut self, command: Command) -> Result<String, HerculesError> {
        match command {
            Command::Goal(name) => {
                let node = self.session.start_from_goal(&name)?;
                Ok(format!("started from goal {name}: {node}\n"))
            }
            Command::Tool(name) => {
                let node = self.session.start_from_tool(&name)?;
                Ok(format!("started from tool {name}: {node}\n"))
            }
            Command::Data(instance) => {
                let node = self.session.start_from_data(instance)?;
                Ok(format!("started from data {instance}: {node}\n"))
            }
            Command::Plan(name) => {
                let node = self.session.start_from_plan(&name)?;
                Ok(format!("instantiated flow `{name}`; output {node}\n"))
            }
            Command::Expand(node) => {
                let created = self.session.expand(node)?;
                Ok(format!(
                    "expanded {node}: +{}\n",
                    created
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(" +")
                ))
            }
            Command::Unexpand(node) => {
                let removed = self.session.unexpand(node)?;
                Ok(format!("unexpanded {node}: removed {}\n", removed.len()))
            }
            Command::Specialize(node, subtype) => {
                self.session.specialize(node, &subtype)?;
                Ok(format!("specialized {node} to {subtype}\n"))
            }
            Command::Browse(node) => {
                let instances = self.session.browse(node)?;
                let mut out = format!("browser for {node}:\n");
                for i in instances {
                    let _ = writeln!(out, "  {}", instance_label(&self.session, i));
                }
                Ok(out)
            }
            Command::Select(node, instances) => {
                self.session.select_many(node, &instances);
                Ok(format!(
                    "selected {} instance(s) for {node}\n",
                    instances.len()
                ))
            }
            Command::BindLatest => {
                let unbound = self.session.bind_latest()?;
                Ok(format!(
                    "auto-bound; {} leaf(s) still unbound\n",
                    unbound.len()
                ))
            }
            Command::Run => {
                let report = self.session.run()?;
                let mut out = format!(
                    "ran {} subtask(s): {} invocation(s), {} cache hit(s)",
                    report.tasks.len(),
                    report.runs(),
                    report.cache_hits()
                );
                if !report.is_complete() {
                    let _ = write!(
                        out,
                        ", {} failed, {} skipped",
                        report.failed(),
                        report.skipped()
                    );
                }
                out.push('\n');
                if let Some(error) = report.first_error() {
                    let _ = writeln!(out, "  first failure: {error}");
                }
                Ok(out)
            }
            Command::Resume => {
                let report = self.session.resume()?;
                let mut out = format!(
                    "resumed {} subtask(s): {} invocation(s), {} cache hit(s)",
                    report.tasks.len(),
                    report.runs(),
                    report.cache_hits()
                );
                if !report.is_complete() {
                    let _ = write!(
                        out,
                        ", {} failed, {} skipped",
                        report.failed(),
                        report.skipped()
                    );
                }
                out.push('\n');
                if let Some(error) = report.first_error() {
                    let _ = writeln!(out, "  first failure: {error}");
                }
                Ok(out)
            }
            Command::History(instance) => {
                let tree = self.session.history_of(instance, Some(1))?;
                let mut out = format!("history of {}:\n", instance_label(&self.session, instance));
                if let Some(tool) = tree.tool {
                    let _ = writeln!(out, "  f← {}", instance_label(&self.session, tool));
                }
                for input in &tree.inputs {
                    let _ = writeln!(
                        out,
                        "  d← {}",
                        instance_label(&self.session, input.instance)
                    );
                }
                if tree.tool.is_none() && tree.inputs.is_empty() {
                    out.push_str("  (primary instance)\n");
                }
                Ok(out)
            }
            Command::Uses(instance) => {
                let downstream = self.session.db().forward_chain(instance)?;
                let mut out = format!(
                    "derived from {}:\n",
                    instance_label(&self.session, instance)
                );
                if downstream.is_empty() {
                    out.push_str("  (nothing yet)\n");
                }
                for d in downstream {
                    let _ = writeln!(out, "  {}", instance_label(&self.session, d));
                }
                Ok(out)
            }
            Command::Retrace(instance) => {
                let report = self.session.retrace(instance)?;
                Ok(if report.already_current {
                    format!("{instance} is already current; nothing re-ran\n")
                } else {
                    format!(
                        "retraced {instance}: {} invocation(s), {} cache hit(s); \
                         current result(s): {}\n",
                        report.report.runs(),
                        report.report.cache_hits(),
                        report
                            .goal_instances
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })
            }
            Command::Menu(node) => {
                let flow = self.session.flow()?;
                let menu = flow.menu_for(node)?;
                let schema = self.session.schema().clone();
                let names = |ids: &[hercules_schema::EntityTypeId]| {
                    ids.iter()
                        .map(|&e| schema.entity(e).name())
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                let mut out = format!("menu for {node}:\n");
                if menu.can_expand {
                    out.push_str("  Expand\n");
                    if !menu.optional_inputs.is_empty() {
                        let _ = writeln!(
                            out,
                            "  Expand with optional: {}",
                            names(&menu.optional_inputs)
                        );
                    }
                }
                if !menu.specializations.is_empty() {
                    let _ = writeln!(out, "  Specialize: {}", names(&menu.specializations));
                }
                if menu.can_unexpand {
                    out.push_str("  Unexpand\n");
                }
                if menu.needs_instance {
                    out.push_str("  Browse / Select\n");
                }
                if !menu.consumers.is_empty() {
                    let _ = writeln!(out, "  Make from this: {}", names(&menu.consumers));
                }
                Ok(out)
            }
            Command::Store(name) => {
                self.session.store_flow(&name, "stored from the UI")?;
                Ok(format!("stored flow `{name}`\n"))
            }
            Command::Log => {
                let events = self.session.events();
                if events.is_empty() {
                    let mut out = String::from("event log: (empty)\n");
                    if let Some(recovery) = &self.last_recovery {
                        let _ = writeln!(out, "last recovery: {}", recovery.to_json());
                    }
                    return Ok(out);
                }
                let mut out = String::from("event log:\n");
                for (n, event) in events.iter().enumerate() {
                    let _ = write!(out, "  #{n}");
                    // Events from journals written before timestamps
                    // existed deserialize with wall_unix_ms == 0; skip
                    // the stamp rather than print the epoch.
                    if event.wall_unix_ms > 0 {
                        let _ = write!(out, " [{}]", format_utc_ms(event.wall_unix_ms));
                    }
                    let _ = write!(
                        out,
                        " {}: {} task(s), {} run(s), {} cache hit(s)",
                        event.operation, event.tasks, event.runs, event.cache_hits
                    );
                    if event.failed > 0 || event.skipped > 0 {
                        let _ = write!(out, ", {} failed, {} skipped", event.failed, event.skipped);
                    }
                    out.push('\n');
                    for failure in &event.failures {
                        let _ = writeln!(out, "      ✗ {failure}");
                    }
                    if let Some(error) = &event.error {
                        let _ = writeln!(out, "      aborted: {error}");
                    }
                }
                if let Some(recovery) = &self.last_recovery {
                    let _ = writeln!(out, "last recovery: {}", recovery.to_json());
                }
                Ok(out)
            }
            Command::Trace => {
                let events = self.session.trace_events();
                if events.is_empty() {
                    return Ok("trace: (no spans recorded — run something first)\n".to_owned());
                }
                let spans = profile::build_spans(&events);
                Ok(format!(
                    "trace ({} spans):\n{}",
                    spans.len(),
                    profile::render_tree(&spans)
                ))
            }
            Command::Stats => Ok(self.session.metrics().snapshot().render_text()),
            Command::Profile => {
                let live = self.session.trace_events();
                let events = if live.iter().any(|e| e.name == "task") {
                    live
                } else {
                    // No live trace (fresh process, reopened workspace):
                    // synthesize one from the persisted report's start
                    // offsets and durations.
                    let Some(report) = self.session.last_report() else {
                        return Ok("profile: (no execution to profile)\n".to_owned());
                    };
                    report_to_trace(report, self.session.flow().ok())
                };
                let prof = profile::profile(&events);
                Ok(format!("{}\n{}", prof.render_text(), prof.render_gantt(60)))
            }
            Command::Show => Ok(render_task_window(&self.session)),
            Command::Clear => {
                self.session.clear_flow();
                Ok("cleared\n".to_owned())
            }
            Command::Catalogs => {
                let mut out = String::from("entity catalog:\n");
                for e in catalog::entity_catalog(self.session.schema()) {
                    let mark = if e.is_tool { "T" } else { "D" };
                    let _ = writeln!(out, "  [{mark}] {}", e.name);
                }
                let _ = writeln!(out, "flow catalog: {:?}", self.session.catalog().names());
                Ok(out)
            }
            Command::Save(path) => {
                let mut ws =
                    Workspace::create_in(Path::new(&path), &self.session, self.env.clone())
                        .map_err(HerculesError::from)?;
                ws.set_metrics(self.session.metrics().clone());
                self.workspace = Some(ws);
                self.attach_telemetry();
                Ok(format!(
                    "workspace saved to `{path}`; mutating commands are now journaled\n"
                ))
            }
            Command::Open(path) => {
                let (mut ws, session, recovery) = Workspace::open_session_in(
                    Path::new(&path),
                    |s| crate::encaps::odyssey_registry(s),
                    self.env.clone(),
                )
                .map_err(HerculesError::from)?;
                self.session = session;
                ws.set_metrics(self.session.metrics().clone());
                if recovery.degraded.is_some() {
                    self.session
                        .metrics()
                        .incr(hercules_obs::names::STORE_DEGRADED_OPENS, 1);
                }
                if recovery.took_over {
                    self.session.metrics().incr(names::STORE_LEASE_TAKEOVERS, 1);
                }
                self.workspace = Some(ws);
                self.attach_telemetry();
                // The old analysis state described a different history;
                // restore it from the workspace's sidecar when the
                // sidecar still matches, else start fresh (the next
                // lint will be a full one).
                self.linter = match self.load_analysis_sidecar() {
                    Some(linter) => {
                        self.session.metrics().incr(names::ANALYZE_INDEX_HITS, 1);
                        linter
                    }
                    None => {
                        self.session
                            .metrics()
                            .incr(names::ANALYZE_INDEX_REBUILDS, 1);
                        HistoryLinter::new()
                    }
                };
                let mut out = format!("opened workspace `{path}`: {recovery}\n");
                let _ = writeln!(out, "recovery: {}", recovery.to_json());
                self.last_recovery = Some(recovery);
                Ok(out)
            }
            Command::Checkpoint => match self.workspace.as_mut() {
                None => Err(HerculesError::Store {
                    message: "no workspace attached; `save <path>` first".into(),
                }),
                Some(ws) => {
                    ws.checkpoint(&self.session).map_err(HerculesError::from)?;
                    let generation = ws.generation();
                    self.save_analysis_sidecar();
                    Ok(format!("checkpointed; now at generation {generation}\n"))
                }
            },
            Command::Scrub => match self.workspace.as_mut() {
                None => Err(HerculesError::Store {
                    message: "no workspace attached; `save <path>` or `open <path>` first".into(),
                }),
                Some(ws) => {
                    let report = ws.scrub(&self.session).map_err(HerculesError::from)?;
                    let mut out = format!("{report}\n");
                    let _ = writeln!(out, "scrub: {}", report.to_json());
                    Ok(out)
                }
            },
            Command::Lint { incremental } => {
                let started = self.env.clock.now();
                let mut out = Diagnostics::new();
                let mut timings = Vec::new();
                {
                    let clock = self.env.clock.clone();
                    let mut tick = move || clock.now().as_ns();
                    timings.extend(hercules_analyze::lint_schema_timed(
                        self.session.schema(),
                        &mut out,
                        &mut tick,
                    ));
                    if let Ok(flow) = self.session.flow() {
                        timings
                            .extend(hercules_analyze::lint_flow_timed(flow, &mut out, &mut tick));
                    }
                }
                let result = if incremental {
                    self.linter.lint_incremental(self.session.db(), &mut out)
                } else {
                    self.linter.lint_full(self.session.db(), &mut out)
                };
                result.map_err(|e| HerculesError::Store {
                    message: format!("history analysis failed: {e}"),
                })?;
                let stats = self.linter.stats();
                let metrics = self.session.metrics();
                metrics.observe_duration(names::ANALYZE_LINT_NS, self.env.clock.since(started));
                for t in &timings {
                    let name =
                        format!("{}.{}", names::ANALYZE_PASS_NS, t.code.to_ascii_lowercase());
                    metrics.observe(&name, t.nanos);
                }
                metrics.observe(
                    names::ANALYZE_CONE_INSTANCES,
                    stats.instances_analyzed as u64,
                );
                let mut text = if out.is_empty() {
                    String::from("lint: clean\n")
                } else {
                    out.render_text()
                };
                let _ = writeln!(
                    text,
                    "analyzed {}/{} instance(s), {} solver visit(s) ({})",
                    stats.instances_analyzed,
                    stats.instances_total,
                    stats.solver_visits,
                    if stats.incremental {
                        "incremental"
                    } else {
                        "full"
                    }
                );
                Ok(text)
            }
            Command::Stale => {
                // Bring the persistent index up to date (cheap: only
                // the instances recorded since the last lint/stale).
                let mut scratch = Diagnostics::new();
                self.linter
                    .lint_incremental(self.session.db(), &mut scratch)
                    .map_err(|e| HerculesError::Store {
                        message: format!("history analysis failed: {e}"),
                    })?;
                let stale = self.session.db().stale_instances()?;
                if stale.is_empty() {
                    return Ok("stale: everything is current\n".to_owned());
                }
                let mut out = format!("{} stale instance(s):\n", stale.len());
                for s in &stale {
                    let cone = self
                        .linter
                        .index()
                        .retrace_cone(self.session.db(), s.instance)?;
                    self.session
                        .metrics()
                        .observe(names::ANALYZE_RETRACE_RERUN, cone.rerun.len() as u64);
                    let _ = writeln!(
                        out,
                        "  {} ({} superseded by {}): retrace would be {}",
                        instance_label(&self.session, s.instance),
                        s.outdated_input,
                        s.newer_version,
                        cone.summary()
                    );
                }
                Ok(out)
            }
            Command::Health { json } => {
                let report = self.health_report();
                if json {
                    Ok(format!("{}\n", report.to_json()))
                } else {
                    Ok(report.render_text())
                }
            }
            Command::CacheOpen(dir) => {
                let cache = hercules_cache::ContentCache::open(
                    &self.env.fs,
                    &dir,
                    None,
                    hercules_cache::CacheConfig::default(),
                    self.env.clock.clone(),
                    self.session.metrics().clone(),
                )
                .map_err(|e| HerculesError::Store {
                    message: format!("cache open failed: {e}"),
                })?;
                self.session.attach_content_cache(cache);
                Ok(format!("content cache attached at {dir}\n"))
            }
            Command::CacheStats => match self.session.content_cache() {
                Some(cache) => Ok(cache.stats().render_text()),
                None => Ok("content cache: not attached (`cache open <dir>`)\n".to_owned()),
            },
            Command::CacheGc => match self.session.content_cache() {
                Some(cache) => {
                    let r = cache.gc().map_err(|e| HerculesError::Store {
                        message: format!("cache gc failed: {e}"),
                    })?;
                    Ok(format!(
                        "cache gc: scanned {} entries, evicted {}, dropped {} damaged, reaped {} tmp, {} -> {} bytes\n",
                        r.scanned, r.evicted, r.dropped, r.reaped_tmp, r.bytes_before, r.bytes_after
                    ))
                }
                None => Ok("content cache: not attached (`cache open <dir>`)\n".to_owned()),
            },
        }
    }

    /// Computes the aggregated health report for the current session
    /// and workspace state (also records `health.checks` /
    /// `health.status` into the metrics registry so the report's own
    /// history rides the telemetry stream).
    pub fn health_report(&self) -> HealthReport {
        let snapshot = self.session.metrics().snapshot();
        let store = self
            .workspace
            .as_ref()
            .map(|ws| telemetry::store_health(ws, self.last_recovery.as_ref()));
        let analysis = AnalysisHealth {
            instances_total: self.session.db().len(),
            instances_indexed: self.linter.index().watermark(),
            stale_instances: self
                .session
                .db()
                .stale_instances()
                .map(|v| v.len())
                .unwrap_or(0),
        };
        let report = HealthReport::build(
            self.env.clock.wall_unix_ms(),
            store.as_ref(),
            Some(&analysis),
            &snapshot,
            &self.health_thresholds,
        );
        let metrics = self.session.metrics();
        metrics.incr(names::HEALTH_CHECKS, 1);
        metrics.gauge_set(names::HEALTH_STATUS, report.overall().level());
        report
    }

    /// Attaches the flight recorder to a freshly saved/opened
    /// *writable* workspace: opens a new `telemetry-N.jsonl` sidecar
    /// with a durably anchored session stamp and tees the session
    /// tracer into a bounded ring that [`Ui::pump_telemetry`] drains
    /// after every command. Degraded (read-only) workspaces get no
    /// recorder — a browser must not write into a store it does not
    /// own. Best-effort: attach failure costs telemetry, never the
    /// save/open itself.
    fn attach_telemetry(&mut self) {
        self.telemetry = None;
        let Some(ws) = &self.workspace else { return };
        if !ws.is_writable() {
            return;
        }
        let stamp = SessionStamp::for_workspace(ws, self.session.user());
        match TelemetryWriter::attach(
            ws.root(),
            self.env.clone(),
            self.session.metrics().clone(),
            &stamp,
        ) {
            Ok(writer) => {
                let recorder = Arc::new(FlightRecorder::new());
                self.session
                    .attach_trace_sink(recorder.clone() as Arc<dyn Collector>);
                self.telemetry = Some(Telemetry {
                    recorder,
                    writer,
                    last_snapshot: self.session.metrics().snapshot(),
                    next_export_ms: self.env.clock.wall_unix_ms() + TELEMETRY_EXPORT_INTERVAL_MS,
                    last_dropped: 0,
                });
            }
            Err(_) => {
                self.session
                    .metrics()
                    .incr(names::TELEMETRY_WRITE_ERRORS, 1);
            }
        }
    }

    /// Drains the flight-recorder ring into the sidecar and, when the
    /// export interval has elapsed, appends a metrics-delta record and
    /// fsyncs the stream. Runs after every command; all I/O here is
    /// best-effort (see [`crate::telemetry`]).
    fn pump_telemetry(&mut self) {
        let Some(t) = self.telemetry.as_mut() else {
            return;
        };
        let metrics = self.session.metrics().clone();
        let now_ms = self.env.clock.wall_unix_ms();
        let mut export = false;
        if now_ms >= t.next_export_ms {
            let snapshot = metrics.snapshot();
            let delta = snapshot.delta(&t.last_snapshot);
            t.recorder
                .record_metrics_delta(&delta, self.env.clock.now().as_ns(), now_ms);
            t.last_snapshot = snapshot;
            t.next_export_ms = now_ms + TELEMETRY_EXPORT_INTERVAL_MS;
            metrics.incr(names::TELEMETRY_METRIC_EXPORTS, 1);
            export = true;
        }
        let bytes = t.recorder.drain();
        if !bytes.is_empty() {
            let records = bytes.iter().filter(|&&b| b == b'\n').count() as u64;
            metrics.incr(names::TELEMETRY_RECORDS, records);
            t.writer.append(&bytes);
        }
        let dropped = t.recorder.dropped();
        if dropped > t.last_dropped {
            metrics.incr(names::TELEMETRY_DROPPED_RECORDS, dropped - t.last_dropped);
            t.last_dropped = dropped;
        }
        if export {
            // One fsync per export interval bounds how much telemetry
            // a crash can shed without putting an fsync on every
            // command's path.
            t.writer.sync();
        }
    }

    /// Writes the analysis sidecar next to the checkpoint, best-effort:
    /// a failure only costs the next process a full re-lint. The linter
    /// is brought current first so the sidecar covers the whole
    /// journaled history.
    fn save_analysis_sidecar(&mut self) {
        let Some(ws) = &self.workspace else { return };
        let mut scratch = Diagnostics::new();
        if self
            .linter
            .lint_incremental(self.session.db(), &mut scratch)
            .is_err()
        {
            return;
        }
        let Ok(json) = serde_json::to_string(&self.linter.to_spec()) else {
            return;
        };
        let path = ws.root().join(ANALYSIS_SIDECAR);
        let fs = &self.env.fs;
        if let Ok(mut f) = fs.create_truncate(&path) {
            let _ = f.write_all(json.as_bytes()).and_then(|()| f.sync_all());
        }
    }

    /// Restores the analysis state from the attached workspace's
    /// sidecar; `None` when there is no sidecar or it no longer matches
    /// the recovered history.
    fn load_analysis_sidecar(&self) -> Option<HistoryLinter> {
        let ws = self.workspace.as_ref()?;
        let bytes = self.env.fs.read(&ws.root().join(ANALYSIS_SIDECAR)).ok()?;
        let spec: HistoryLinterSpec = serde_json::from_slice(&bytes).ok()?;
        HistoryLinter::from_spec(&spec, self.session.db())
    }

    /// Runs a whole script (one command per line; `#` comments and
    /// blank lines skipped), concatenating the transcript.
    ///
    /// # Errors
    ///
    /// Stops at the first failing command.
    pub fn run_script(&mut self, script: &str) -> Result<String, HerculesError> {
        let mut out = String::new();
        for line in script.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let _ = writeln!(out, "> {line}");
            out.push_str(&self.execute(line)?);
        }
        Ok(out)
    }
}

/// Convenience constructor mirroring [`Session::start`].
impl From<Approach> for Command {
    fn from(a: Approach) -> Command {
        match a {
            Approach::Goal(g) => Command::Goal(g),
            Approach::Tool(t) => Command::Tool(t),
            Approach::Data(d) => Command::Data(d),
            Approach::Plan(p) => Command::Plan(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_commands() {
        assert_eq!(
            Command::parse("goal Performance").expect("ok"),
            Command::Goal("Performance".into())
        );
        assert_eq!(
            Command::parse("expand n3").expect("ok"),
            Command::Expand(NodeId::from_index(3))
        );
        assert_eq!(
            Command::parse("select n2 i7 i9").expect("ok"),
            Command::Select(
                NodeId::from_index(2),
                vec![InstanceId::from_raw(7), InstanceId::from_raw(9)]
            )
        );
        assert!(Command::parse("").is_err());
        assert!(Command::parse("frobnicate").is_err());
        assert!(Command::parse("expand x3").is_err());
        assert!(Command::parse("select n2").is_err());
    }

    #[test]
    fn task_window_renders_without_flow() {
        let session = Session::odyssey("jbb");
        let window = render_task_window(&session);
        assert!(window.contains("no task under construction"));
        assert!(window.contains("menu:"));
    }

    #[test]
    fn scripted_session_builds_and_shows_a_flow() {
        let mut ui = Ui::new(Session::odyssey("jbb"));
        let transcript = ui
            .run_script(
                "# goal-based start\n\
                 goal Performance\n\
                 expand n0\n\
                 show\n",
            )
            .expect("script runs");
        assert!(transcript.contains("started from goal Performance"));
        assert!(transcript.contains("Simulator"));
        assert!(transcript.contains("⇐ (unbound)"));
    }

    #[test]
    fn uses_command_forward_chains() {
        let mut ui = Ui::new(Session::odyssey("jbb"));
        ui.run_script(
            "goal Layout\n\
             expand n0\n\
             specialize n2 EditedNetlist\n\
             expand n2\n\
             bind-latest\n\
             run\n",
        )
        .expect("script runs");
        // The editor leaf (n4) produced the netlist that fed the
        // layout; `uses` on its bound script must list both products.
        let bound = ui
            .session()
            .binding()
            .get(hercules_flow::NodeId::from_index(4))[0];
        let out = ui
            .execute(&format!("uses i{}", bound.raw()))
            .expect("chains");
        assert!(out.contains("derived from"));
        assert!(!out.contains("nothing yet"));
    }

    #[test]
    fn menu_command_shows_fig9_popup() {
        let mut ui = Ui::new(Session::odyssey("jbb"));
        ui.execute("goal Layout").expect("starts");
        ui.execute("expand n0").expect("expands");
        // n2 is the abstract Netlist input.
        let out = ui.execute("menu n2").expect("shows");
        assert!(out.contains("Specialize: EditedNetlist, ExtractedNetlist"));
        assert!(out.contains("Browse / Select"));
        let out = ui.execute("menu n0").expect("shows");
        assert!(out.contains("Unexpand"));
    }

    #[test]
    fn retrace_command_reports_current_and_stale() {
        let mut ui = Ui::new(Session::odyssey("jbb"));
        ui.run_script(
            "goal Layout\n\
             expand n0\n\
             specialize n2 EditedNetlist\n\
             expand n2\n\
             bind-latest\n\
             run\n",
        )
        .expect("script runs");
        let report = ui.session().last_report().expect("ran").clone();
        let layout = report.single(hercules_flow::NodeId::from_index(0));
        let out = ui
            .execute(&format!("retrace i{}", layout.raw()))
            .expect("retraces");
        assert!(out.contains("already current"), "{out}");
    }

    #[test]
    fn log_command_lists_execution_events() {
        let mut ui = Ui::new(Session::odyssey("jbb"));
        assert_eq!(ui.execute("log").expect("empty ok"), "event log: (empty)\n");
        ui.run_script(
            "goal Layout\n\
             expand n0\n\
             specialize n2 EditedNetlist\n\
             expand n2\n\
             bind-latest\n\
             run\n",
        )
        .expect("script runs");
        let out = ui.execute("log").expect("lists");
        assert!(out.contains("#0 ["), "wall-clock stamp: {out}");
        assert!(out.contains("] run:"), "{out}");
        assert!(out.contains("cache hit(s)"), "{out}");
        assert!(!out.contains("failed"), "clean run: {out}");
    }

    #[test]
    fn format_utc_ms_matches_known_dates() {
        assert_eq!(format_utc_ms(0), "1970-01-01 00:00:00Z");
        // 2000-03-01 00:00:00 UTC — the day after a century leap day.
        assert_eq!(format_utc_ms(951_868_800_000), "2000-03-01 00:00:00Z");
        assert_eq!(format_utc_ms(951_868_799_000), "2000-02-29 23:59:59Z");
    }

    #[test]
    fn trace_stats_profile_commands_render() {
        let mut ui = Ui::new(Session::odyssey("jbb"));
        assert!(ui.execute("trace").expect("empty ok").contains("no spans"));
        assert!(ui
            .execute("profile")
            .expect("empty ok")
            .contains("no execution"));
        ui.run_script(
            "goal Layout\n\
             expand n0\n\
             specialize n2 EditedNetlist\n\
             expand n2\n\
             bind-latest\n\
             run\n",
        )
        .expect("script runs");
        let trace = ui.execute("trace").expect("renders");
        assert!(trace.contains("execute"), "{trace}");
        assert!(trace.contains("task ["), "task spans labeled: {trace}");
        let stats = ui.execute("stats").expect("renders");
        assert!(stats.contains("exec.executions"), "{stats}");
        assert!(stats.contains("exec.task_wall_ns"), "{stats}");
        let prof = ui.execute("profile").expect("renders");
        assert!(prof.contains("critical path"), "{prof}");
        assert!(prof.contains("parallelism"), "{prof}");
        assert!(prof.contains("worker"), "gantt rows: {prof}");
    }

    #[test]
    fn profile_synthesizes_from_report_when_trace_is_empty() {
        let mut ui = Ui::new(Session::odyssey("jbb"));
        ui.run_script(
            "goal Layout\n\
             expand n0\n\
             specialize n2 EditedNetlist\n\
             expand n2\n\
             bind-latest\n\
             run\n",
        )
        .expect("script runs");
        // Simulate a reopened workspace: the report survives, the live
        // trace ring does not.
        ui.session().clear_trace();
        let prof = ui.execute("profile").expect("synthesizes");
        assert!(prof.contains("critical path"), "{prof}");
        assert!(prof.contains("#n"), "node-labeled tasks: {prof}");
    }

    #[test]
    fn approach_converts_to_command() {
        let c: Command = Approach::Goal("Layout".into()).into();
        assert_eq!(c, Command::Goal("Layout".into()));
    }

    #[test]
    fn parse_workspace_commands() {
        assert_eq!(
            Command::parse("save /tmp/ws").expect("ok"),
            Command::Save("/tmp/ws".into())
        );
        assert_eq!(
            Command::parse("open /tmp/ws").expect("ok"),
            Command::Open("/tmp/ws".into())
        );
        assert_eq!(
            Command::parse("checkpoint").expect("ok"),
            Command::Checkpoint
        );
        assert_eq!(Command::parse("scrub").expect("ok"), Command::Scrub);
        assert_eq!(Command::parse("resume").expect("ok"), Command::Resume);
        assert!(Command::parse("save").is_err());
        assert!(Command::parse("open").is_err());
    }

    #[test]
    fn scrub_without_workspace_is_an_error() {
        let mut ui = Ui::new(Session::odyssey("jbb"));
        let err = ui.execute("scrub").expect_err("no workspace");
        assert!(err.to_string().contains("save <path>"), "{err}");
    }

    #[test]
    fn scrub_command_reports_clean_on_a_fresh_workspace() {
        let root = std::env::temp_dir().join(format!("hercules-ui-scrub-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let mut ui = Ui::new(Session::odyssey("jbb"));
        let script = format!(
            "save {}\n\
             goal Layout\n\
             expand n0\n\
             scrub\n",
            root.display()
        );
        let out = ui.run_script(&script).expect("script runs");
        assert!(out.contains("; clean"), "{out}");
        assert!(out.contains("\"damaged\":false"), "json rendered: {out}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn open_renders_recovery_json_and_log_repeats_it() {
        let root = std::env::temp_dir().join(format!("hercules-ui-recov-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let mut ui = Ui::new(Session::odyssey("jbb"));
        ui.run_script(&format!(
            "save {}\n\
             goal Layout\n\
             expand n0\n",
            root.display()
        ))
        .expect("script runs");
        drop(ui);

        let mut ui = Ui::new(Session::odyssey("jbb"));
        let out = ui
            .execute(&format!("open {}", root.display()))
            .expect("reopens");
        assert!(out.contains("recovery: {"), "{out}");
        assert!(out.contains("\"ops_replayed\":2"), "{out}");
        let log = ui.execute("log").expect("lists");
        assert!(log.contains("last recovery: {"), "{log}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn degraded_workspace_refuses_mutations_before_the_session_changes() {
        let root = std::env::temp_dir().join(format!("hercules-ui-degr-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let mut ui = Ui::new(Session::odyssey("jbb"));
        ui.run_script(&format!(
            "save {}\n\
             goal Layout\n\
             expand n0\n",
            root.display()
        ))
        .expect("script runs");
        drop(ui);

        // Forge a live foreign lease: the next open must degrade.
        let far_future = u64::MAX / 2;
        std::fs::write(
            root.join("LEASE"),
            format!("{{\"owner\":\"rival\",\"expires_unix_ms\":{far_future},\"token\":99}}"),
        )
        .expect("forge lease");

        let mut ui = Ui::new(Session::odyssey("jbb"));
        let out = ui
            .execute(&format!("open {}", root.display()))
            .expect("opens read-only");
        assert!(out.contains("opened read-only"), "{out}");
        assert!(out.contains("lease held by `rival`"), "{out}");

        // Browsing still works; mutations are refused up front.
        assert!(ui.execute("show").is_ok());
        assert!(ui.execute("log").is_ok());
        let flow_ops_before = ui.session().flow_ops().len();
        let err = ui.execute("goal Layout").expect_err("degraded refusal");
        assert!(err.to_string().contains("read-only"), "{err}");
        assert_eq!(
            ui.session().flow_ops().len(),
            flow_ops_before,
            "refused before mutating the session"
        );
        let err = ui.execute("checkpoint").expect_err("degraded refusal");
        assert!(err.to_string().contains("read-only"), "{err}");
        // Scrub runs, reports, but cannot repair.
        let scrub = ui.execute("scrub").expect("scrub reports");
        assert!(scrub.contains("; clean"), "{scrub}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn checkpoint_without_workspace_is_an_error() {
        let mut ui = Ui::new(Session::odyssey("jbb"));
        let err = ui.execute("checkpoint").expect_err("no workspace");
        assert!(err.to_string().contains("save <path>"), "{err}");
    }

    #[test]
    fn resume_without_failure_is_an_error() {
        let mut ui = Ui::new(Session::odyssey("jbb"));
        assert!(matches!(
            ui.execute("resume"),
            Err(HerculesError::NothingToResume { .. })
        ));
    }

    #[test]
    fn saved_session_reopens_with_full_state() {
        let root = std::env::temp_dir().join(format!("hercules-ui-ws-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let mut ui = Ui::new(Session::odyssey("jbb"));
        let script = format!(
            "save {}\n\
             goal Layout\n\
             expand n0\n\
             specialize n2 EditedNetlist\n\
             expand n2\n\
             bind-latest\n\
             run\n\
             store place-flow\n",
            root.display()
        );
        let transcript = ui.run_script(&script).expect("script runs");
        assert!(transcript.contains("workspace saved"));
        let db_len = ui.session().db().len();
        drop(ui);

        // A brand-new UI recovers the whole session from disk.
        let mut ui = Ui::new(Session::odyssey("someone-else"));
        let out = ui
            .execute(&format!("open {}", root.display()))
            .expect("reopens");
        assert!(out.contains("7 journaled operation(s) replayed"), "{out}");
        assert_eq!(ui.session().user(), "jbb");
        assert_eq!(ui.session().db().len(), db_len);
        assert_eq!(ui.session().catalog().names(), vec!["place-flow"]);
        assert!(ui.session().last_report().expect("report").is_complete());
        // And it keeps journaling: later commands land in the journal.
        ui.execute("clear").expect("clears");
        ui.execute("plan place-flow").expect("instantiates");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn cache_commands_attach_report_and_hit_across_sessions() {
        let root = std::env::temp_dir().join(format!("hercules-ui-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let script = "goal Layout\n\
             expand n0\n\
             specialize n2 EditedNetlist\n\
             expand n2\n\
             bind-latest\n\
             run\n";

        let mut ui = Ui::new(Session::odyssey("jbb"));
        let out = ui.execute("cache stats").expect("reports");
        assert!(out.contains("not attached"), "{out}");
        ui.execute(&format!("cache open {}", root.display()))
            .expect("attaches");
        ui.run_script(script).expect("script runs");
        let cold_runs = ui.session().last_report().expect("ran").runs();
        assert!(cold_runs > 0, "cold session invokes tools");
        let out = ui.execute("cache stats").expect("reports");
        assert!(out.contains("disk"), "{out}");
        assert!(out.contains(&format!("inserts={cold_runs}")), "{out}");
        drop(ui);

        // A different user's session with a *fresh* history opens the
        // same cache root: every tool run is served from A's work.
        let mut ui = Ui::new(Session::odyssey("amber"));
        ui.execute(&format!("cache open {}", root.display()))
            .expect("attaches");
        ui.run_script(script).expect("script runs");
        assert_eq!(
            ui.session().last_report().expect("ran").runs(),
            0,
            "warm session replays workspace A's results"
        );
        let out = ui.execute("cache gc").expect("collects");
        assert!(out.contains("cache gc: scanned"), "{out}");
        // The per-tier rates surface in the health report.
        let out = ui.execute("health").expect("reports");
        assert!(out.contains("cache.content.disk"), "{out}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn parse_lint_and_stale_commands() {
        assert_eq!(
            Command::parse("lint").expect("ok"),
            Command::Lint { incremental: false }
        );
        assert_eq!(
            Command::parse("lint --incremental").expect("ok"),
            Command::Lint { incremental: true }
        );
        assert_eq!(Command::parse("stale").expect("ok"), Command::Stale);
        assert!(Command::parse("lint --frobnicate").is_err());
    }

    /// Records a superseding edit of the netlist `v1`, making every
    /// result derived from it stale.
    fn supersede_netlist(session: &mut Session, v1: InstanceId) -> InstanceId {
        let schema = session.schema().clone();
        let editor = schema.require("CircuitEditor").expect("known");
        let edited = schema.require("EditedNetlist").expect("known");
        let editor_inst = session.db().instances_of(editor)[0];
        session
            .db_mut()
            .record_derived(
                edited,
                crate::history::Metadata::by("jbb").named("netlist v2"),
                b"v2",
                crate::history::Derivation::by_tool(editor_inst, [v1]),
            )
            .expect("records")
    }

    #[test]
    fn lint_and_stale_commands_track_an_edit() {
        let mut ui = Ui::new(Session::odyssey("jbb"));
        let out = ui.execute("lint").expect("lints");
        assert!(out.contains("(full)"), "{out}");
        let out = ui.execute("stale").expect("checks");
        assert!(out.contains("everything is current"), "{out}");

        ui.run_script(
            "goal Layout\n\
             expand n0\n\
             specialize n2 EditedNetlist\n\
             expand n2\n\
             bind-latest\n\
             run\n",
        )
        .expect("script runs");
        let report = ui.session().last_report().expect("ran").clone();
        let netlist = report.single(hercules_flow::NodeId::from_index(2));
        supersede_netlist(ui.session_mut(), netlist);

        // The incremental lint only analyzes the edit's cone, yet
        // reports the derived layout as transitively affected.
        let out = ui.execute("lint --incremental").expect("lints");
        assert!(out.contains("HL0501"), "direct staleness: {out}");
        assert!(out.contains("(incremental)"), "{out}");
        let full = {
            let mut out = Diagnostics::new();
            hercules_analyze::lint_history(ui.session().db(), &mut out).expect("lints");
            out.render_text()
        };
        for line in full.lines().filter(|l| l.contains("HL05")) {
            assert!(out.contains(line), "incremental is complete: {line}\n{out}");
        }

        let out = ui.execute("stale").expect("checks");
        assert!(out.contains("stale instance(s):"), "{out}");
        assert!(out.contains("retrace would be"), "{out}");
    }

    #[test]
    fn analysis_sidecar_survives_checkpoint_and_open() {
        let root = std::env::temp_dir().join(format!("hercules-ui-lintsc-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let mut ui = Ui::new(Session::odyssey("jbb"));
        ui.run_script(&format!(
            "save {}\n\
             goal Layout\n\
             expand n0\n\
             specialize n2 EditedNetlist\n\
             expand n2\n\
             bind-latest\n\
             run\n\
             lint\n\
             checkpoint\n",
            root.display()
        ))
        .expect("script runs");
        assert!(root.join(ANALYSIS_SIDECAR).exists(), "sidecar written");
        drop(ui);

        let mut ui = Ui::new(Session::odyssey("jbb"));
        ui.execute(&format!("open {}", root.display()))
            .expect("reopens");
        // The restored index already covers the whole history, so the
        // incremental lint analyzes nothing.
        let out = ui.execute("lint --incremental").expect("lints");
        assert!(out.contains("analyzed 0/"), "restored index: {out}");
        std::fs::remove_dir_all(&root).ok();
    }
}
