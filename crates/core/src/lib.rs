//! **Hercules** — the task manager of the Odyssey CAD framework,
//! reproduced from Sutton, Brockman & Director, *"Design Management
//! Using Dynamically Defined Flows"*, DAC 1993.
//!
//! A [`Session`] owns the pieces the paper describes:
//!
//! * a **task schema** ([`hercules_schema`]) stating which tasks exist
//!   and how entities depend on each other (Fig. 1 + Fig. 2);
//! * **dynamically defined flows** ([`hercules_flow`]) the designer
//!   grows on demand — expand, specialize, unexpand — instead of
//!   picking from fixed flows;
//! * a **design-history database** ([`hercules_history`]) recording
//!   every product with its immediate derivation, queryable by
//!   backward/forward chaining and by flow templates;
//! * an **execution engine** ([`hercules_exec`]) with automatic task
//!   sequencing, parallel disjoint branches, caching and retracing;
//! * the simulated **EDA tools** ([`hercules_eda`]) behind the
//!   [`encaps`] encapsulations.
//!
//! All four §3.4 design approaches share the session API (and the
//! Fig. 9 text UI in [`ui`]): goal-based, tool-based, data-based, and
//! plan-based.
//!
//! # Examples
//!
//! A complete goal-based simulation task against the standard Odyssey
//! environment:
//!
//! ```
//! use hercules::Session;
//!
//! # fn main() -> Result<(), hercules::HerculesError> {
//! let mut session = Session::odyssey("jbb");
//!
//! // Goal: a Performance report. Expand to the simulate task, then
//! // build the circuit from device models and an edited netlist.
//! let perf = session.start_from_goal("Performance")?;
//! let created = session.expand(perf)?;            // simulator, circuit, stimuli
//! let circuit = created[1];
//! let created = session.expand(circuit)?;         // device models, netlist
//! let netlist = created[1];
//! session.specialize(netlist, "EditedNetlist")?;
//! session.expand(netlist)?;                       // circuit editor
//! session.expand(created[0])?;                    // device-model editor
//!
//! // Pick the "CMOS Full adder" editor script, newest everything else.
//! let editor_node = session.flow()?.tool_of(netlist).expect("expanded");
//! let scripts = session.browse(editor_node)?;
//! let adder = scripts
//!     .into_iter()
//!     .find(|&i| session.db().instance(i).map(|x| x.meta().name.contains("Full adder")).unwrap_or(false))
//!     .expect("seeded script");
//! session.select(editor_node, adder);
//! session.bind_latest()?;
//!
//! let report = session.run()?;
//! assert!(report.runs() >= 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod persist;
mod session;

pub mod audit;
pub mod catalog;
pub mod encaps;
pub mod setup;
pub mod store;
pub mod telemetry;
pub mod ui;
pub mod views;

pub use error::HerculesError;
pub use persist::{ExecReportSpec, FlowOp, SessionSpec, TaskActionSpec, TaskRecordSpec};
pub use session::{Approach, ExecEvent, Session};
pub use store::{
    DegradedReason, GroupCommitPolicy, JournalOp, RecoveryReport, ScrubReport, SegmentRecovery,
    SegmentScrub, StoreError, Workspace, WriteState,
};
pub use telemetry::{
    read_postmortem, store_health, PostmortemRecord, PostmortemReport, SessionStamp,
    TelemetryWriter,
};

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use hercules_baseline as baseline;
pub use hercules_cache as cache;
pub use hercules_eda as eda;
pub use hercules_exec as exec;
pub use hercules_flow as flow;
pub use hercules_history as history;
pub use hercules_obs as obs;
pub use hercules_schema as schema;
pub use hercules_sim as sim;
