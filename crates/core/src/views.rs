//! View management as flows (§3.3, Figs. 7–8).
//!
//! "If views of a design are associated with entities in a task schema,
//! flows can be used to represent the transformations between views":
//! the synthesis flow produces the physical view (layout) from the
//! transistor/logic view (netlist), and the verification flow checks
//! their correspondence by extraction and comparison.

use hercules_eda::Verification;
use hercules_flow::fixtures as flow_fixtures;
use hercules_history::InstanceId;

use crate::error::HerculesError;
use crate::session::Session;

/// The result of one synthesis + verification round trip.
#[derive(Debug, Clone)]
pub struct ViewReport {
    /// The synthesized layout instance (physical view).
    pub layout: InstanceId,
    /// The verification instance.
    pub verification: InstanceId,
    /// The decoded verification report.
    pub report: Verification,
}

/// Runs the Fig. 8a synthesis flow: a `Layout` placed from the given
/// netlist instance. Returns the layout instance.
///
/// # Errors
///
/// Propagates flow and execution errors.
pub fn synthesize_physical(
    session: &mut Session,
    netlist: InstanceId,
) -> Result<InstanceId, HerculesError> {
    let schema = session.schema().clone();
    let flow = flow_fixtures::fig8_synthesis(schema.clone())?;
    let layout_node = flow.outputs()[0];
    let netlist_node = flow
        .leaves()
        .into_iter()
        .find(|&l| {
            flow.entity_of(l)
                .map(|e| schema.entity(e).name() == "Netlist")
                .unwrap_or(false)
        })
        .expect("synthesis flow has a netlist leaf");

    session.clear_flow();
    install_flow(session, flow);
    session.select(netlist_node, netlist);
    session.bind_latest()?;
    session.run()?;
    let report = session.last_report().expect("just ran");
    Ok(report.single(layout_node))
}

/// Runs the Fig. 8b verification flow: extract the layout and compare
/// against the reference netlist. Returns the decoded report.
///
/// # Errors
///
/// Propagates flow and execution errors.
pub fn verify_views(
    session: &mut Session,
    netlist: InstanceId,
    layout: InstanceId,
) -> Result<ViewReport, HerculesError> {
    let schema = session.schema().clone();
    let flow = flow_fixtures::fig8_verification(schema.clone())?;
    let verification_node = flow.outputs()[0];
    let find_leaf = |name: &str| {
        flow.leaves()
            .into_iter()
            .find(|&l| {
                flow.entity_of(l)
                    .map(|e| schema.entity(e).name() == name)
                    .unwrap_or(false)
            })
            .expect("verification flow leaf")
    };
    let netlist_node = find_leaf("Netlist");
    let layout_node = find_leaf("Layout");

    session.clear_flow();
    install_flow(session, flow);
    session.select(netlist_node, netlist);
    session.select(layout_node, layout);
    session.bind_latest()?;
    session.run()?;
    let exec_report = session.last_report().expect("just ran");
    let verification = exec_report.single(verification_node);
    let bytes = session
        .db()
        .data_of(verification)?
        .expect("verification has data")
        .to_vec();
    let report = Verification::from_bytes(&bytes)?;
    Ok(ViewReport {
        layout,
        verification,
        report,
    })
}

/// Full Fig. 8 round trip: synthesize the physical view, then verify it
/// against the source netlist.
///
/// # Errors
///
/// Propagates flow and execution errors.
pub fn synthesize_and_verify(
    session: &mut Session,
    netlist: InstanceId,
) -> Result<ViewReport, HerculesError> {
    let layout = synthesize_physical(session, netlist)?;
    verify_views(session, netlist, layout)
}

/// Installs an externally built flow into the session (used by the view
/// flows, which come from the Fig. 8 fixtures rather than interactive
/// expansion).
fn install_flow(session: &mut Session, flow: hercules_flow::TaskGraph) {
    session.install_flow(flow);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_eda::Netlist;
    use hercules_history::{Derivation, Metadata};

    /// Records a full-adder EditedNetlist in the session history.
    fn record_adder(session: &mut Session) -> InstanceId {
        let schema = session.schema().clone();
        let editor = schema.require("CircuitEditor").expect("known");
        let edited = schema.require("EditedNetlist").expect("known");
        let tool = session.db().instances_of(editor)[0];
        let netlist = hercules_eda::cells::full_adder();
        session
            .db_mut()
            .record_derived(
                edited,
                Metadata::by("tester").named("fa"),
                &netlist.to_bytes(),
                Derivation::by_tool(tool, []),
            )
            .expect("records")
    }

    #[test]
    fn synthesis_then_verification_matches() {
        let mut session = Session::odyssey("tester");
        let netlist = record_adder(&mut session);
        let report = synthesize_and_verify(&mut session, netlist).expect("round trip");
        assert!(report.report.matched, "{:?}", report.report.mismatches);

        // The layout is physically a Layout instance derived by the
        // placer.
        let layout = session.db().instance(report.layout).expect("present");
        assert_eq!(
            session.db().schema().entity(layout.entity()).name(),
            "Layout"
        );
        let bytes = session
            .db()
            .data_of(report.layout)
            .expect("ok")
            .expect("data");
        let decoded = hercules_eda::Layout::from_bytes(bytes).expect("layout bytes");
        assert!(!decoded.cells.is_empty());
        let _ = Netlist::new("unused"); // keep import used
    }

    #[test]
    fn corrupted_layout_fails_verification() {
        let mut session = Session::odyssey("tester");
        let netlist = record_adder(&mut session);
        let layout = synthesize_physical(&mut session, netlist).expect("synthesis");

        // Record a tampered layout (one cell kind flipped) as if a
        // manual edit had broken the correspondence.
        let bytes = session
            .db()
            .data_of(layout)
            .expect("ok")
            .expect("data")
            .to_vec();
        let mut decoded = hercules_eda::Layout::from_bytes(&bytes).expect("layout");
        decoded.cells[0].kind = hercules_eda::GateKind::Nor;
        let schema = session.schema().clone();
        let placer = schema.require("Placer").expect("known");
        let layout_entity = schema.require("Layout").expect("known");
        let placer_inst = session.db().instances_of(placer)[0];
        let tampered = session
            .db_mut()
            .record_derived(
                layout_entity,
                Metadata::by("tester").named("tampered"),
                &decoded.to_bytes(),
                Derivation::by_tool(placer_inst, []),
            )
            .expect("records");

        let report = verify_views(&mut session, netlist, tampered).expect("runs");
        assert!(!report.report.matched);
    }
}
