//! Unified error type for the Hercules task manager.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the Hercules task manager.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
#[allow(missing_docs)] // variant payloads are the wrapped errors
pub enum HerculesError {
    /// Schema error.
    Schema(hercules_schema::SchemaError),
    /// Flow construction error.
    Flow(hercules_flow::FlowError),
    /// History database error.
    History(hercules_history::HistoryError),
    /// Execution error.
    Exec(hercules_exec::ExecError),
    /// EDA substrate error (inside an encapsulation).
    Eda(hercules_eda::EdaError),
    /// No flow is under construction in the session.
    NoActiveFlow,
    /// A UI command could not be parsed.
    BadCommand { input: String, reason: String },
    /// Durable-store failure (I/O, corruption beyond recovery, or no
    /// workspace attached).
    Store { message: String },
    /// `resume` was requested but there is no failed execution to pick
    /// up.
    NothingToResume { reason: String },
}

impl fmt::Display for HerculesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HerculesError::Schema(e) => write!(f, "schema: {e}"),
            HerculesError::Flow(e) => write!(f, "flow: {e}"),
            HerculesError::History(e) => write!(f, "history: {e}"),
            HerculesError::Exec(e) => write!(f, "execution: {e}"),
            HerculesError::Eda(e) => write!(f, "tool: {e}"),
            HerculesError::NoActiveFlow => {
                f.write_str("no flow under construction; start one first")
            }
            HerculesError::BadCommand { input, reason } => {
                write!(f, "cannot parse command `{input}`: {reason}")
            }
            HerculesError::Store { message } => write!(f, "store: {message}"),
            HerculesError::NothingToResume { reason } => {
                write!(f, "nothing to resume: {reason}")
            }
        }
    }
}

impl Error for HerculesError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HerculesError::Schema(e) => Some(e),
            HerculesError::Flow(e) => Some(e),
            HerculesError::History(e) => Some(e),
            HerculesError::Exec(e) => Some(e),
            HerculesError::Eda(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hercules_schema::SchemaError> for HerculesError {
    fn from(e: hercules_schema::SchemaError) -> HerculesError {
        HerculesError::Schema(e)
    }
}

impl From<hercules_flow::FlowError> for HerculesError {
    fn from(e: hercules_flow::FlowError) -> HerculesError {
        HerculesError::Flow(e)
    }
}

impl From<hercules_history::HistoryError> for HerculesError {
    fn from(e: hercules_history::HistoryError) -> HerculesError {
        HerculesError::History(e)
    }
}

impl From<hercules_exec::ExecError> for HerculesError {
    fn from(e: hercules_exec::ExecError) -> HerculesError {
        HerculesError::Exec(e)
    }
}

impl From<hercules_eda::EdaError> for HerculesError {
    fn from(e: hercules_eda::EdaError) -> HerculesError {
        HerculesError::Eda(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error as _;
        let e: HerculesError = hercules_flow::FlowError::Cycle.into();
        assert!(e.source().is_some());
        assert!(e.to_string().starts_with("flow:"));
        assert!(HerculesError::NoActiveFlow.source().is_none());
        let bad = HerculesError::BadCommand {
            input: "frobnicate".into(),
            reason: "unknown verb".into(),
        };
        assert!(bad.to_string().contains("frobnicate"));
    }
}
