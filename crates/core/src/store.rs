//! Crash-safe durable workspace: an append-only, checksummed journal of
//! session mutations plus atomic checkpoint snapshots, with torn-write
//! recovery and resumable execution.
//!
//! # On-disk layout
//!
//! A workspace is a directory holding three kinds of files:
//!
//! - `MANIFEST` — a tiny JSON document naming the current generation
//!   and its checkpoint/journal files. Swapped atomically (temp file +
//!   fsync + rename + directory fsync), so it always points at a valid
//!   pair.
//! - `checkpoint-N.json` — a full [`SessionSpec`] snapshot, written
//!   atomically the same way. Never modified after the rename.
//! - `journal-N.log` — an append-only sequence of frames, one per
//!   mutating UI command since checkpoint `N`. Each append is followed
//!   by `fsync` before the command's result is reported, so an
//!   acknowledged command survives power loss.
//!
//! # Frame format
//!
//! ```text
//! [payload length: u32 LE][CRC32(payload): u32 LE][payload: JSON JournalOp]
//! ```
//!
//! The CRC is IEEE 802.3 (the zlib/PNG polynomial). A torn tail — a
//! frame whose length field runs past end-of-file, or whose checksum
//! does not match — ends the journal: recovery truncates the file back
//! to the last valid frame, reports how many bytes were discarded, and
//! never panics or fails on any prefix of a well-formed journal.
//!
//! # Guarantees (and non-guarantees)
//!
//! - Every operation acknowledged before a crash is replayed on open;
//!   an operation interrupted mid-write is discarded cleanly. State
//!   after recovery is always a *prefix* of the acknowledged history.
//! - Instances and execution reports are journaled *extensionally*
//!   (the recorded products, not the tool invocations), so replay
//!   never re-runs tools and cannot diverge on nondeterministic ones.
//! - Only mutations made through [`Ui`](crate::ui::Ui) commands are
//!   journaled. Direct [`Session::db_mut`] edits bypass the journal;
//!   take a [`Workspace::checkpoint`] after making any.
//!
//! After reopening, [`Session::resume`] re-runs only the failed and
//! skipped subtasks of an interrupted partial execution, serving the
//! already committed ones from the design history as cache hits.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use hercules_exec::EncapsulationRegistry;
use hercules_flow::NodeId;
use hercules_history::{InstanceId, InstanceSpec};
use hercules_obs::{names, Metrics};
use hercules_schema::TaskSchema;
use hercules_sim::{Clock, Env, Fs, FsFile};
use serde::{Deserialize, Serialize};

use crate::error::HerculesError;
use crate::persist::{ExecReportSpec, FlowOp, SessionSpec};
use crate::session::{ExecEvent, Session};

// ---------------------------------------------------------------------
// Checksummed frames.
// ---------------------------------------------------------------------

/// CRC32 (IEEE 802.3 polynomial, bit-reflected) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Encodes one journal frame: `[len u32 LE][crc32 u32 LE][payload]`.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The result of scanning a journal buffer for valid frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameScan {
    /// Payloads of the valid frames, in order.
    pub payloads: Vec<Vec<u8>>,
    /// End offset of each valid frame (`offsets[i]` is the byte length
    /// of the journal prefix containing frames `0..=i`).
    pub offsets: Vec<usize>,
    /// Length of the valid prefix; equals the last offset (or 0).
    pub valid_len: usize,
    /// Bytes after the valid prefix — a torn or corrupt tail.
    pub trailing: usize,
}

/// Scans `buf` for consecutive valid frames, stopping at the first
/// torn (length past end-of-buffer) or corrupt (checksum mismatch)
/// frame. Never panics: any byte sequence yields a valid prefix.
pub fn scan_frames(buf: &[u8]) -> FrameScan {
    let mut payloads = Vec::new();
    let mut offsets = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= 8 {
        let len = u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]) as usize;
        let crc = u32::from_le_bytes([buf[pos + 4], buf[pos + 5], buf[pos + 6], buf[pos + 7]]);
        if len > buf.len() - pos - 8 {
            break; // torn: the frame was not fully written
        }
        let payload = &buf[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break; // corrupt: bit rot or a torn overwrite
        }
        payloads.push(payload.to_vec());
        pos += 8 + len;
        offsets.push(pos);
    }
    FrameScan {
        payloads,
        offsets,
        valid_len: pos,
        trailing: buf.len() - pos,
    }
}

// ---------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------

/// Why a workspace refuses mutations while still serving reads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum DegradedReason {
    /// Another writer holds an unexpired lease on the workspace.
    LeaseHeld {
        /// Owner id recorded in the lease file.
        owner: String,
        /// Unix-millisecond expiry of the foreign lease.
        expires_unix_ms: u64,
    },
    /// This handle's fencing token was superseded — a newer writer took
    /// over the lease, and every later write here must be rejected to
    /// keep the journal single-writer.
    Fenced {
        /// The newer writer's fencing token.
        token: u64,
    },
}

impl fmt::Display for DegradedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradedReason::LeaseHeld {
                owner,
                expires_unix_ms,
            } => write!(f, "lease held by `{owner}` until unix-ms {expires_unix_ms}"),
            DegradedReason::Fenced { token } => {
                write!(f, "fenced out by a newer writer (token {token})")
            }
        }
    }
}

/// Whether a workspace handle may mutate the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteState {
    /// This handle holds the lease; mutations are accepted.
    Writable,
    /// Read-only: browsing, queries, and trace replay work, but every
    /// mutation fails with [`StoreError::Degraded`].
    Degraded(DegradedReason),
}

/// Errors from the durable store.
#[derive(Debug)]
#[allow(missing_docs)] // variant payloads are the wrapped errors
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A file is damaged beyond recovery (manifest or checkpoint — the
    /// journal is always recoverable by truncation).
    Corrupt { detail: String },
    /// A document failed to serialize or deserialize.
    Format(String),
    /// Restoring or replaying into the session failed.
    Session(HerculesError),
    /// The workspace is open read-only; the mutation was rejected.
    Degraded(DegradedReason),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corrupt { detail } => write!(f, "corrupt store: {detail}"),
            StoreError::Format(detail) => write!(f, "bad document: {detail}"),
            StoreError::Session(e) => write!(f, "session error: {e}"),
            StoreError::Degraded(reason) => write!(f, "workspace is read-only: {reason}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> StoreError {
        StoreError::Format(e.to_string())
    }
}

impl From<HerculesError> for StoreError {
    fn from(e: HerculesError) -> StoreError {
        StoreError::Session(e)
    }
}

impl From<StoreError> for HerculesError {
    fn from(e: StoreError) -> HerculesError {
        HerculesError::Store {
            message: e.to_string(),
        }
    }
}

// ---------------------------------------------------------------------
// Journal operations.
// ---------------------------------------------------------------------

/// The extensional record of one execution (`run`, `resume`, or
/// `retrace`): the instances it committed, the report it left behind,
/// and the event it logged. Replay records the products directly —
/// tools are never re-run during recovery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecSpec {
    /// Instances the execution committed, in creation order.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub instances: Vec<InstanceSpec>,
    /// The report, when the operation replaced the session's last
    /// report (`run`/`resume`; `retrace` leaves it untouched).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub report: Option<ExecReportSpec>,
    /// The event the operation appended to the log, if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub event: Option<ExecEvent>,
}

/// One journaled session mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalOp {
    /// A flow-construction step (goal/tool/plan starts, expand,
    /// unexpand, specialize).
    Flow(FlowOp),
    /// A data-based start: seed from an existing instance and bind it.
    DataStart {
        /// Raw id of the seeding instance.
        instance: u64,
    },
    /// Instances selected for a leaf node.
    Select {
        /// Node index.
        node: usize,
        /// Raw instance ids bound to the node.
        instances: Vec<u64>,
    },
    /// Auto-bind every unbound leaf to the newest instance. Safe to
    /// journal intensionally: replay evolves the database identically,
    /// so "newest" resolves to the same instances.
    BindLatest,
    /// The current flow stored into the catalog.
    StoreFlow {
        /// Catalog name.
        name: String,
        /// Catalog description.
        description: String,
    },
    /// The flow under construction abandoned.
    Clear,
    /// An execution's committed effects (extensional).
    Exec(ExecSpec),
}

impl JournalOp {
    /// Replays this operation into `session`.
    ///
    /// # Errors
    ///
    /// Validation errors from the session; on a faithfully journaled
    /// sequence these indicate corruption, and recovery treats the
    /// failing operation as the start of a corrupt tail.
    pub fn replay(&self, session: &mut Session) -> Result<(), HerculesError> {
        match self {
            JournalOp::Flow(op) => op.replay(session)?,
            JournalOp::DataStart { instance } => {
                session.start_from_data(InstanceId::from_raw(*instance))?;
            }
            JournalOp::Select { node, instances } => {
                let ids: Vec<InstanceId> = instances
                    .iter()
                    .map(|&raw| InstanceId::from_raw(raw))
                    .collect();
                session.select_many(NodeId::from_index(*node), &ids);
            }
            JournalOp::BindLatest => {
                session.bind_latest()?;
            }
            JournalOp::StoreFlow { name, description } => {
                session.store_flow(name, description)?;
            }
            JournalOp::Clear => session.clear_flow(),
            JournalOp::Exec(spec) => {
                for instance in &spec.instances {
                    instance.replay(session.db_mut())?;
                }
                if let Some(report) = &spec.report {
                    session.set_last_report(Some(report.restore()));
                }
                if let Some(event) = &spec.event {
                    session.push_event(event.clone());
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Manifest and recovery report.
// ---------------------------------------------------------------------

/// The workspace manifest: which generation is current, its segment
/// chain, and the highest fencing token ever granted. Swapped
/// atomically so it always names a complete checkpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Manifest {
    generation: u64,
    checkpoint: String,
    /// The active (last) journal segment — kept for compatibility with
    /// pre-segment manifests, which name exactly one journal file.
    journal: String,
    /// Every journal segment of this generation, oldest first. Empty in
    /// pre-segment manifests; [`Manifest::effective_segments`] falls
    /// back to `journal` there.
    #[serde(default)]
    segments: Vec<String>,
    /// Monotonic fencing token: bumped every time a writer acquires the
    /// lease. A deposed writer's token is smaller, so its writes are
    /// rejected after takeover.
    #[serde(default)]
    fencing_token: u64,
}

impl Manifest {
    /// The segment chain, oldest first — always at least one entry.
    fn effective_segments(&self) -> Vec<String> {
        if self.segments.is_empty() {
            vec![self.journal.clone()]
        } else {
            self.segments.clone()
        }
    }
}

/// The writer-lease file: who may mutate the workspace, until when.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct LeaseDoc {
    /// Owner id (process, server, or user-chosen tag).
    owner: String,
    /// Unix-millisecond expiry; a lease past this is up for takeover.
    expires_unix_ms: u64,
    /// The fencing token granted with this lease.
    token: u64,
}

/// Per-segment recovery detail: what survived, what was quarantined.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SegmentRecovery {
    /// Segment file name.
    pub name: String,
    /// Frames replayed from this segment.
    pub frames_replayed: usize,
    /// Complete frames found in the damaged region (quarantined, not
    /// replayed — they sit beyond a hole or a failed frame).
    pub frames_quarantined: usize,
    /// Bytes of the valid, replayed prefix.
    pub bytes_kept: u64,
    /// Bytes discarded from this segment (truncated tail or the whole
    /// file when unreadable).
    pub bytes_discarded: u64,
    /// Files the damaged data was preserved under, if any.
    pub quarantined_as: Vec<String>,
}

/// What [`Workspace::open_session`] found and did.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RecoveryReport {
    /// Generation of the checkpoint that was restored.
    pub generation: u64,
    /// Journaled operations replayed on top of the checkpoint.
    pub ops_replayed: usize,
    /// Bytes of torn, corrupt, or unreplayable journal tail discarded
    /// (the journal file was truncated back to the valid prefix).
    pub bytes_discarded: u64,
    /// `true` when a tail was discarded.
    pub truncated: bool,
    /// Per-segment detail, in chain order.
    pub segments: Vec<SegmentRecovery>,
    /// The fencing token this open acquired (or found, when degraded).
    pub fencing_token: u64,
    /// `true` when this open took the lease over from a different
    /// (expired) owner, fencing that writer out.
    pub took_over: bool,
    /// Why the workspace opened read-only, when it did.
    pub degraded: Option<String>,
}

impl RecoveryReport {
    /// The report as a JSON object (for logs and tooling).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }

    /// `true` when any segment lost data to quarantine (as opposed to a
    /// plain torn-tail truncation).
    pub fn quarantined(&self) -> bool {
        self.segments.iter().any(|s| !s.quarantined_as.is_empty())
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "generation {}, {} journaled operation(s) replayed",
            self.generation, self.ops_replayed
        )?;
        if self.truncated {
            write!(
                f,
                "; {} byte(s) of torn tail discarded",
                self.bytes_discarded
            )?;
        }
        for seg in &self.segments {
            if !seg.quarantined_as.is_empty() {
                write!(
                    f,
                    "; segment {}: {} frame(s) quarantined as {}",
                    seg.name,
                    seg.frames_quarantined,
                    seg.quarantined_as.join(", ")
                )?;
            }
        }
        if let Some(reason) = &self.degraded {
            write!(f, "; opened read-only ({reason})")?;
        }
        Ok(())
    }
}

/// Per-segment result of a [`Workspace::scrub`] pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SegmentScrub {
    /// Segment file name.
    pub name: String,
    /// CRC-valid frames found.
    pub frames_ok: usize,
    /// Bytes of the CRC-valid prefix.
    pub bytes_ok: u64,
    /// Damaged bytes past the valid prefix (0 when clean).
    pub damaged_bytes: u64,
    /// `false` when the segment could not be read at all.
    pub readable: bool,
    /// Quarantine files the damage was preserved under, if repaired.
    pub quarantined_as: Vec<String>,
}

/// What a [`Workspace::scrub`] pass verified, found, and repaired.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ScrubReport {
    /// Generation that was scrubbed.
    pub generation: u64,
    /// Whether the checkpoint snapshot parsed cleanly.
    pub checkpoint_ok: bool,
    /// Per-segment verification results, chain order.
    pub segments: Vec<SegmentScrub>,
    /// `true` when any damage was found.
    pub damaged: bool,
    /// `true` when damage was quarantined and the store re-baselined
    /// onto a fresh checkpoint generation.
    pub repaired: bool,
    /// The fencing token the scrub ran under.
    pub fencing_token: u64,
}

impl ScrubReport {
    /// The report as a JSON object (for logs and tooling).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }
}

impl fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let frames: usize = self.segments.iter().map(|s| s.frames_ok).sum();
        write!(
            f,
            "generation {}: {} segment(s), {} frame(s) verified",
            self.generation,
            self.segments.len(),
            frames
        )?;
        if !self.checkpoint_ok {
            write!(f, "; checkpoint damaged")?;
        }
        for seg in &self.segments {
            if !seg.readable {
                write!(f, "; segment {} unreadable", seg.name)?;
            } else if seg.damaged_bytes > 0 {
                write!(
                    f,
                    "; segment {}: {} damaged byte(s)",
                    seg.name, seg.damaged_bytes
                )?;
            }
        }
        if self.repaired {
            write!(f, "; damage quarantined, store re-baselined")?;
        } else if self.damaged {
            write!(f, "; damage found, not repaired (read-only)")?;
        } else {
            write!(f, "; clean")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The workspace.
// ---------------------------------------------------------------------

/// Writes `name` under `dir` atomically: temp file, fsync, rename,
/// directory fsync. Readers see either the old file or the new one,
/// never a torn mixture. All I/O goes through `fs`, so under
/// simulation a crash can land between any two of these steps.
fn write_atomic(fs: &Fs, dir: &Path, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = dir.join(format!("{name}.tmp"));
    {
        let mut f = fs.create_truncate(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs.rename(&tmp, &dir.join(name))?;
    fs.sync_dir(dir)?;
    Ok(())
}

fn checkpoint_name(generation: u64) -> String {
    format!("checkpoint-{generation}.json")
}

fn journal_name(generation: u64) -> String {
    format!("journal-{generation}.log")
}

/// Name of journal segment `seq` of `generation`. Sequence 0 keeps the
/// historical single-file name so pre-segment workspaces open
/// unchanged.
fn segment_name(generation: u64, seq: u64) -> String {
    if seq == 0 {
        journal_name(generation)
    } else {
        format!("journal-{generation}.{seq}.log")
    }
}

/// The writer-lease file name.
const LEASE_FILE: &str = "LEASE";

/// Default segment-roll threshold. Large enough that rotation never
/// triggers unless a caller opts in via
/// [`Workspace::set_segment_max_bytes`].
const DEFAULT_SEGMENT_MAX_BYTES: u64 = 64 * 1024 * 1024;

/// Default writer-lease duration.
const DEFAULT_LEASE_MS: u64 = 30_000;

/// Default owner id for leases taken by direct (non-server) opens.
const DEFAULT_OWNER: &str = "local";

/// Picks an unused quarantine name for `name` under `dir`:
/// `name.quarantined-K` for the smallest free `K`. The suffix keeps the
/// file out of every manifest/journal naming scheme, so nothing ever
/// opens it as live data.
fn quarantine_target(fs: &Fs, dir: &Path, name: &str) -> String {
    for k in 0.. {
        let candidate = format!("{name}.quarantined-{k}");
        if !fs.exists(&dir.join(&candidate)) {
            return candidate;
        }
    }
    unreachable!("some quarantine index is free")
}

/// Preserves `bytes` (a damaged region of `name`) under a fresh
/// quarantine file, durably. Returns the quarantine file name.
fn quarantine_bytes(fs: &Fs, dir: &Path, name: &str, bytes: &[u8]) -> Result<String, StoreError> {
    let target = quarantine_target(fs, dir, name);
    let mut f = fs.create_truncate(&dir.join(&target))?;
    f.write_all(bytes)?;
    f.sync_all()?;
    fs.sync_dir(dir)?;
    Ok(target)
}

/// Renames a whole damaged file aside into quarantine, durably.
/// Returns the quarantine file name, or `None` when the file no longer
/// exists (a crashed earlier repair already moved it).
fn quarantine_rename(fs: &Fs, dir: &Path, name: &str) -> Result<Option<String>, StoreError> {
    if !fs.exists(&dir.join(name)) {
        return Ok(None);
    }
    let target = quarantine_target(fs, dir, name);
    fs.rename(&dir.join(name), &dir.join(&target))?;
    fs.sync_dir(dir)?;
    Ok(Some(target))
}

/// Reads and parses the manifest, if present and well-formed.
fn read_manifest(fs: &Fs, dir: &Path) -> Option<Manifest> {
    let bytes = fs.read(&dir.join("MANIFEST")).ok()?;
    serde_json::from_slice(&bytes).ok()
}

/// Reads and parses the lease file. A missing or unparsable lease is
/// treated as absent — the manifest's fencing token is the durable
/// record takeover arbitration falls back to.
fn read_lease(fs: &Fs, dir: &Path) -> Option<LeaseDoc> {
    let bytes = fs.read(&dir.join(LEASE_FILE)).ok()?;
    serde_json::from_slice(&bytes).ok()
}

/// The error for write paths reached without a journal handle (only
/// possible in degraded mode, which rejects them earlier).
fn journal_missing() -> StoreError {
    StoreError::Io(std::io::Error::other(
        "no journal handle (workspace is read-only)",
    ))
}

/// Writes the lease file atomically.
fn write_lease(
    fs: &Fs,
    dir: &Path,
    owner: &str,
    expires_unix_ms: u64,
    token: u64,
) -> Result<(), StoreError> {
    let doc = LeaseDoc {
        owner: owner.to_owned(),
        expires_unix_ms,
        token,
    };
    write_atomic(fs, dir, LEASE_FILE, serde_json::to_string(&doc)?.as_bytes())
}

/// Counts complete, CRC-valid frames anywhere inside `buf` (a damaged
/// region): used to report how many acknowledged-looking operations a
/// quarantine preserved beyond the recovered prefix.
fn count_resync_frames(buf: &[u8]) -> usize {
    let mut count = 0;
    let mut pos = 0;
    while pos + 8 <= buf.len() {
        let scan = scan_frames(&buf[pos..]);
        if scan.payloads.is_empty() {
            pos += 1;
        } else {
            count += scan.payloads.len();
            pos += scan.valid_len.max(1);
        }
    }
    count
}

/// Looks for a complete, CRC-valid frame starting anywhere inside
/// `buf`. Distinguishes a pure torn tail (no frame can follow a tear —
/// truncation is lossless) from mid-journal rot or a write hole, where
/// valid frames sit beyond the damage and must be quarantined rather
/// than silently truncated away.
fn has_resync_frame(buf: &[u8]) -> bool {
    count_resync_frames(buf) > 0
}

/// Group-commit tuning: when the background flusher turns queued
/// frames into one `write` + `fsync`.
///
/// With group commit enabled, frames appended while an fsync is in
/// flight accumulate and are flushed together, so N concurrent-ish
/// appends cost far fewer than N fsyncs. Per-frame CRC32 framing and
/// the prefix-recovery guarantee are unchanged: the flusher writes
/// whole frames in order, so any crash leaves a journal whose valid
/// prefix is exactly the durable history and whose tail is at most the
/// unacknowledged batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitPolicy {
    /// Flush as soon as this many frames are queued, even if no one is
    /// waiting on durability.
    pub max_batch: usize,
    /// Longest a queued frame may linger before the flusher writes it
    /// out when no [`Workspace::sync`] caller is waiting.
    pub max_delay: Duration,
}

impl Default for GroupCommitPolicy {
    fn default() -> GroupCommitPolicy {
        GroupCommitPolicy {
            max_batch: 64,
            max_delay: Duration::from_millis(1),
        }
    }
}

/// Shared state between appenders, [`Workspace::sync`] waiters, and the
/// flusher thread.
#[derive(Debug, Default)]
struct GroupState {
    /// Encoded frames waiting for the next flush, concatenated.
    queue: Vec<u8>,
    /// Frames currently in `queue`.
    pending_frames: u64,
    /// Sequence number of the last enqueued frame.
    enqueued: u64,
    /// Sequence number of the last frame known durable on disk.
    durable: u64,
    /// `sync` callers currently blocked — a nonzero count makes the
    /// flusher skip its batching linger.
    waiters: usize,
    /// Tells the flusher to drain and exit.
    shutdown: bool,
    /// Sticky first flush failure; surfaced to every later caller.
    error: Option<String>,
}

#[derive(Debug, Default)]
struct GroupShared {
    state: Mutex<GroupState>,
    /// Signaled when frames arrive or shutdown is requested.
    work: Condvar,
    /// Signaled when `durable` advances (or the flusher errors).
    done: Condvar,
}

/// How deferred frames reach the journal.
#[derive(Debug)]
enum GroupCommit {
    /// The background flusher thread (real environment): appenders
    /// enqueue, the thread batches frames into one `write` + `fsync`.
    Threaded {
        shared: Arc<GroupShared>,
        handle: Option<std::thread::JoinHandle<()>>,
        policy: GroupCommitPolicy,
    },
    /// Deterministic in-process batching, used when the workspace runs
    /// on a simulated filesystem: frames queue here and flush on
    /// [`Workspace::sync`] or when the batch fills. Identical
    /// durability semantics — unsynced frames are exactly the
    /// unacknowledged tail — with no thread and no timing, so every
    /// flush is an explicit simulator event.
    Inline {
        queue: Vec<u8>,
        pending_frames: u64,
        policy: GroupCommitPolicy,
    },
}

impl GroupCommit {
    fn policy(&self) -> GroupCommitPolicy {
        match self {
            GroupCommit::Threaded { policy, .. } | GroupCommit::Inline { policy, .. } => *policy,
        }
    }
}

fn lock_state(shared: &GroupShared) -> std::sync::MutexGuard<'_, GroupState> {
    shared.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// The flusher loop: wait for queued frames, optionally linger for a
/// fuller batch, then issue one `write_all` + `sync_data` for the whole
/// batch and publish the new durable sequence number.
///
/// After a flush failure the error is sticky and later batches are
/// **discarded without writing**: the failed write may have left a
/// torn frame mid-journal, and appending after that hole would put
/// acknowledged-looking frames beyond recovery's reach.
fn flusher_loop(
    shared: &GroupShared,
    mut journal: Box<dyn FsFile>,
    policy: GroupCommitPolicy,
    metrics: Metrics,
    clock: Clock,
) {
    loop {
        let (batch, upto, frames, poisoned) = {
            let mut st = lock_state(shared);
            loop {
                if st.queue.is_empty() {
                    if st.shutdown {
                        return;
                    }
                    st = shared.work.wait(st).unwrap_or_else(|e| e.into_inner());
                    continue;
                }
                // Batching window: with no one waiting on durability
                // and headroom in the batch, linger briefly so frames
                // appended while this round was forming ride along.
                if st.waiters == 0 && !st.shutdown && st.pending_frames < policy.max_batch as u64 {
                    let before = st.enqueued;
                    let (guard, _) = shared
                        .work
                        .wait_timeout(st, policy.max_delay)
                        .unwrap_or_else(|e| e.into_inner());
                    st = guard;
                    if st.enqueued > before {
                        // More arrived; re-evaluate (flush at once if a
                        // waiter showed up or the batch filled).
                        continue;
                    }
                }
                break;
            }
            let frames = st.pending_frames;
            st.pending_frames = 0;
            let poisoned = st.error.is_some();
            (std::mem::take(&mut st.queue), st.enqueued, frames, poisoned)
        };
        if poisoned {
            metrics.incr(names::STORE_GROUP_DISCARDED_BATCHES, 1);
            shared.done.notify_all();
            continue;
        }
        let fsync_started = clock.now();
        let result = journal.write_all(&batch).and_then(|()| journal.sync_data());
        metrics.observe_duration("store.fsync_ns", clock.since(fsync_started));
        metrics.incr("store.group_flushes", 1);
        metrics.observe("store.group_batch_frames", frames);
        let mut st = lock_state(shared);
        match result {
            Ok(()) => st.durable = upto,
            Err(e) => {
                if st.error.is_none() {
                    st.error = Some(e.to_string());
                }
            }
        }
        drop(st);
        shared.done.notify_all();
    }
}

/// A durable workspace directory: the current journal handle plus the
/// generation bookkeeping. Create one with [`Workspace::create`], or
/// recover one (plus its session) with [`Workspace::open_session`].
pub struct Workspace {
    root: PathBuf,
    generation: u64,
    /// Append handle to the active segment. `None` only in degraded
    /// mode, where no mutation may touch the disk.
    journal: Option<Box<dyn FsFile>>,
    journal_path: PathBuf,
    /// Journal segments of the current generation, oldest first; the
    /// last one is the active segment `journal` points at.
    segments: Vec<String>,
    /// Bytes appended (or enqueued) to the active segment so far.
    active_len: u64,
    /// Roll the active segment once it reaches this size.
    segment_max_bytes: u64,
    metrics: Metrics,
    group: Option<GroupCommit>,
    env: Env,
    /// Workspace-level sticky poison: once a group flush fails the
    /// journal tail may be torn mid-frame, so every later append or
    /// sync fails with this error instead of writing past the hole.
    flusher_error: Option<String>,
    /// Whether this handle may write; sticky once degraded.
    write_state: WriteState,
    /// Owner id this handle leases (and renews) the store under.
    owner: String,
    /// Lease duration for acquire and renew.
    lease_ms: u64,
    /// This handle's fencing token (0 when degraded at open).
    token: u64,
    /// Cached lease expiry — renewal I/O happens only past this.
    lease_expires_ms: u64,
}

impl fmt::Debug for Workspace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workspace")
            .field("root", &self.root)
            .field("generation", &self.generation)
            .field("journal_path", &self.journal_path)
            .field("segments", &self.segments)
            .field("group_commit", &self.group.is_some())
            .field("flusher_error", &self.flusher_error)
            .field("write_state", &self.write_state)
            .field("token", &self.token)
            .finish_non_exhaustive()
    }
}

impl Workspace {
    /// Creates a fresh workspace at `root` (the directory is created if
    /// missing) holding a generation-0 checkpoint of `session` and an
    /// empty journal, in the real environment.
    ///
    /// # Errors
    ///
    /// I/O and serialization errors.
    pub fn create(root: &Path, session: &Session) -> Result<Workspace, StoreError> {
        Workspace::create_in(root, session, Env::real())
    }

    /// [`Workspace::create`] against an explicit environment — pass a
    /// [`SimEnv`](hercules_sim::SimEnv)'s `env()` to run the store on a
    /// simulated disk and virtual clock.
    ///
    /// # Errors
    ///
    /// I/O and serialization errors.
    pub fn create_in(root: &Path, session: &Session, env: Env) -> Result<Workspace, StoreError> {
        env.fs.create_dir_all(root)?;
        // Respect a live foreign lease even on create: re-initializing
        // a directory out from under its writer is the worst possible
        // split-brain.
        let now_ms = env.clock.wall_unix_ms();
        let prior_lease = read_lease(&env.fs, root);
        if let Some(lease) = &prior_lease {
            if lease.owner != DEFAULT_OWNER && lease.expires_unix_ms > now_ms {
                return Err(StoreError::Degraded(DegradedReason::LeaseHeld {
                    owner: lease.owner.clone(),
                    expires_unix_ms: lease.expires_unix_ms,
                }));
            }
        }
        let prior_token = read_manifest(&env.fs, root)
            .map(|m| m.fencing_token)
            .unwrap_or(0)
            .max(prior_lease.map(|l| l.token).unwrap_or(0));
        let token = prior_token + 1;
        let spec = SessionSpec::from_session(session);
        let json = spec.to_json().map_err(StoreError::from)?;
        write_atomic(&env.fs, root, &checkpoint_name(0), json.as_bytes())?;
        let journal_path = root.join(journal_name(0));
        let mut journal = env.fs.create_truncate(&journal_path)?;
        journal.sync_all()?;
        // The journal's directory entry must be durable *before* the
        // manifest names it — otherwise a crash can keep the manifest
        // swap but lose the journal, leaving a manifest that points at
        // nothing.
        env.fs.sync_dir(root)?;
        let manifest = Manifest {
            generation: 0,
            checkpoint: checkpoint_name(0),
            journal: journal_name(0),
            segments: vec![journal_name(0)],
            fencing_token: token,
        };
        write_atomic(
            &env.fs,
            root,
            "MANIFEST",
            serde_json::to_string(&manifest)?.as_bytes(),
        )?;
        let expires = now_ms + DEFAULT_LEASE_MS;
        write_lease(&env.fs, root, DEFAULT_OWNER, expires, token)?;
        Ok(Workspace {
            root: root.to_owned(),
            generation: 0,
            journal: Some(journal),
            journal_path,
            segments: vec![journal_name(0)],
            active_len: 0,
            segment_max_bytes: DEFAULT_SEGMENT_MAX_BYTES,
            metrics: Metrics::disabled(),
            group: None,
            env,
            flusher_error: None,
            write_state: WriteState::Writable,
            owner: DEFAULT_OWNER.into(),
            lease_ms: DEFAULT_LEASE_MS,
            token,
            lease_expires_ms: expires,
        })
    }

    /// Opens the workspace at `root` and recovers its session:
    /// restores the manifest's checkpoint, replays the journal, and
    /// truncates any torn, corrupt, or unreplayable tail back to the
    /// last valid operation. Recovery never panics and never fails on
    /// a torn journal — only on I/O errors or a damaged
    /// manifest/checkpoint (which are written atomically and therefore
    /// only damaged by media corruption).
    ///
    /// `registry_for` builds the tool registry for the restored schema
    /// (code cannot be persisted); pass
    /// `|s| hercules::encaps::odyssey_registry(s)` for the standard
    /// tool set.
    ///
    /// # Errors
    ///
    /// I/O errors, damaged manifest/checkpoint, or a checkpoint whose
    /// own restore fails.
    pub fn open_session<F>(
        root: &Path,
        registry_for: F,
    ) -> Result<(Workspace, Session, RecoveryReport), StoreError>
    where
        F: FnOnce(&Arc<TaskSchema>) -> EncapsulationRegistry,
    {
        Workspace::open_session_in(root, registry_for, Env::real())
    }

    /// [`Workspace::open_session`] against an explicit environment —
    /// recovery over a simulated crash image runs through exactly this
    /// code path.
    ///
    /// # Errors
    ///
    /// As [`Workspace::open_session`].
    pub fn open_session_in<F>(
        root: &Path,
        registry_for: F,
        env: Env,
    ) -> Result<(Workspace, Session, RecoveryReport), StoreError>
    where
        F: FnOnce(&Arc<TaskSchema>) -> EncapsulationRegistry,
    {
        Workspace::open_session_as(root, registry_for, env, DEFAULT_OWNER, DEFAULT_LEASE_MS)
    }

    /// [`Workspace::open_session_in`] under an explicit lease identity:
    /// `owner` names this writer in the lease file and `lease_ms` sets
    /// the lease duration. When another owner holds an unexpired lease
    /// the workspace opens **degraded** (read-only) instead of failing;
    /// an expired foreign lease is taken over with a bumped fencing
    /// token, permanently fencing out the previous writer.
    ///
    /// # Errors
    ///
    /// As [`Workspace::open_session`].
    pub fn open_session_as<F>(
        root: &Path,
        registry_for: F,
        env: Env,
        owner: &str,
        lease_ms: u64,
    ) -> Result<(Workspace, Session, RecoveryReport), StoreError>
    where
        F: FnOnce(&Arc<TaskSchema>) -> EncapsulationRegistry,
    {
        let manifest_bytes = env.fs.read(&root.join("MANIFEST"))?;
        let manifest: Manifest =
            serde_json::from_slice(&manifest_bytes).map_err(|e| StoreError::Corrupt {
                detail: format!("manifest: {e}"),
            })?;

        // Lease arbitration — pure reads, so a degraded open touches
        // nothing on disk. A lease held by the same owner is always
        // retaken (a crashed process must be able to reopen its own
        // store before the lease runs out).
        let now_ms = env.clock.wall_unix_ms();
        let lease = read_lease(&env.fs, root);
        let degraded_reason = match &lease {
            Some(l) if l.owner != owner && l.expires_unix_ms > now_ms => {
                Some(DegradedReason::LeaseHeld {
                    owner: l.owner.clone(),
                    expires_unix_ms: l.expires_unix_ms,
                })
            }
            _ => None,
        };
        let writable = degraded_reason.is_none();

        let checkpoint_bytes = env.fs.read(&root.join(&manifest.checkpoint))?;
        let spec = serde_json::from_slice::<SessionSpec>(&checkpoint_bytes).map_err(|e| {
            StoreError::Corrupt {
                detail: format!("{}: {e}", manifest.checkpoint),
            }
        })?;
        let mut session = spec.restore_with(registry_for)?;

        // Scan and replay the segment chain in order; the first frame
        // that fails CRC, parse, or replay ends the recovered prefix.
        // The session state is then exactly checkpoint + that prefix —
        // a prefix of the acknowledged history.
        let segments = manifest.effective_segments();
        struct Damage {
            index: usize,
            keep: usize,
            readable: bool,
            buf: Vec<u8>,
        }
        let mut seg_reports: Vec<SegmentRecovery> = Vec::new();
        let mut ops_replayed = 0usize;
        let mut damage: Option<Damage> = None;
        for (i, name) in segments.iter().enumerate() {
            let path = root.join(name);
            let buf = match env.fs.read(&path) {
                Ok(buf) => buf,
                Err(_) => {
                    // Missing, or a latent read error: the whole
                    // segment (and everything after it) is damage.
                    seg_reports.push(SegmentRecovery {
                        name: name.clone(),
                        frames_replayed: 0,
                        frames_quarantined: 0,
                        bytes_kept: 0,
                        bytes_discarded: 0,
                        quarantined_as: Vec::new(),
                    });
                    damage = Some(Damage {
                        index: i,
                        keep: 0,
                        readable: false,
                        buf: Vec::new(),
                    });
                    break;
                }
            };
            let scan = scan_frames(&buf);
            let mut keep = scan.valid_len;
            let mut replayed_here = 0usize;
            for (j, payload) in scan.payloads.iter().enumerate() {
                let parsed: Result<JournalOp, _> = serde_json::from_slice(payload);
                let ok = match parsed {
                    Ok(op) => op.replay(&mut session).is_ok(),
                    Err(_) => false,
                };
                if !ok {
                    keep = if j == 0 { 0 } else { scan.offsets[j - 1] };
                    break;
                }
                replayed_here += 1;
            }
            ops_replayed += replayed_here;
            let trailing = buf.len() - keep;
            seg_reports.push(SegmentRecovery {
                name: name.clone(),
                frames_replayed: replayed_here,
                frames_quarantined: 0,
                bytes_kept: keep as u64,
                bytes_discarded: trailing as u64,
                quarantined_as: Vec::new(),
            });
            if trailing > 0 {
                damage = Some(Damage {
                    index: i,
                    keep,
                    readable: true,
                    buf,
                });
                break;
            }
        }

        // Decide repair strategy. A pure torn tail at the end of the
        // *last* segment (no complete frame beyond the tear) truncates
        // losslessly, exactly as before segments existed. Anything
        // else — damage mid-chain, a hole with valid frames after it,
        // or an unreadable file — quarantines: the damaged bytes and
        // every later segment are preserved aside, never silently
        // dropped.
        let mut kept_segments = segments.clone();
        let mut bytes_discarded: u64 = 0;
        if let Some(dmg) = &damage {
            let is_last = dmg.index + 1 == segments.len();
            let trailing = &dmg.buf[dmg.keep..];
            let needs_quarantine = !dmg.readable || !is_last || has_resync_frame(trailing);
            bytes_discarded += trailing.len() as u64;
            if writable {
                if needs_quarantine {
                    // Later segments first (reverse order), so a crash
                    // mid-repair always leaves a chain whose re-scan
                    // converges on the same prefix.
                    for j in (dmg.index + 1..segments.len()).rev() {
                        let name = &segments[j];
                        let (frames, len) = match env.fs.read(&root.join(name)) {
                            Ok(buf) => (count_resync_frames(&buf), buf.len() as u64),
                            Err(_) => (0, 0),
                        };
                        let quarantined_as = quarantine_rename(&env.fs, root, name)?;
                        bytes_discarded += len;
                        seg_reports.push(SegmentRecovery {
                            name: name.clone(),
                            frames_replayed: 0,
                            frames_quarantined: frames,
                            bytes_kept: 0,
                            bytes_discarded: len,
                            quarantined_as: quarantined_as.into_iter().collect(),
                        });
                    }
                    let rep = &mut seg_reports[dmg.index];
                    if dmg.readable {
                        rep.frames_quarantined = count_resync_frames(trailing);
                        let q = quarantine_bytes(&env.fs, root, &segments[dmg.index], trailing)?;
                        rep.quarantined_as.push(q);
                        let mut f = env.fs.open_write(&root.join(&segments[dmg.index]))?;
                        f.set_len(dmg.keep as u64)?;
                        f.sync_all()?;
                        kept_segments.truncate(dmg.index + 1);
                    } else {
                        if let Some(q) = quarantine_rename(&env.fs, root, &segments[dmg.index])? {
                            rep.quarantined_as.push(q);
                        }
                        kept_segments.truncate(dmg.index);
                        if kept_segments.is_empty() {
                            // The whole chain is gone; restart it with
                            // a fresh empty head segment.
                            let head = segment_name(manifest.generation, 0);
                            let mut f = env.fs.create_truncate(&root.join(&head))?;
                            f.sync_all()?;
                            env.fs.sync_dir(root)?;
                            kept_segments.push(head);
                        }
                    }
                } else {
                    // Lossless torn-tail truncation.
                    let mut f = env.fs.open_write(&root.join(&segments[dmg.index]))?;
                    f.set_len(dmg.keep as u64)?;
                    f.sync_all()?;
                }
            }
        }

        let mut token = manifest.fencing_token;
        if writable {
            // Acquire the lease: bump the fencing token past everything
            // ever granted, persist it in the manifest (along with any
            // repairs), then publish the lease. A deposed writer
            // re-reading the lease sees a larger token and fences
            // itself.
            token = manifest
                .fencing_token
                .max(lease.as_ref().map(|l| l.token).unwrap_or(0))
                + 1;
            let active = kept_segments.last().expect("chain is never empty").clone();
            let new_manifest = Manifest {
                generation: manifest.generation,
                checkpoint: manifest.checkpoint.clone(),
                journal: active,
                segments: kept_segments.clone(),
                fencing_token: token,
            };
            write_atomic(
                &env.fs,
                root,
                "MANIFEST",
                serde_json::to_string(&new_manifest)?.as_bytes(),
            )?;
            write_lease(&env.fs, root, owner, now_ms + lease_ms, token)?;
        }

        let active_name = kept_segments.last().expect("chain is never empty").clone();
        let journal_path = root.join(&active_name);
        let (journal, active_len) = if writable {
            let handle = env.fs.open_append(&journal_path)?;
            let len = seg_reports
                .iter()
                .find(|s| s.name == active_name)
                .map(|s| s.bytes_kept)
                .unwrap_or(0);
            (Some(handle), len)
        } else {
            (None, 0)
        };

        // A writable open over a foreign lease means that lease had
        // expired — this open fenced the previous writer out.
        let took_over = writable && lease.as_ref().map(|l| l.owner != owner).unwrap_or(false);
        let report = RecoveryReport {
            generation: manifest.generation,
            ops_replayed,
            bytes_discarded,
            truncated: bytes_discarded > 0,
            segments: seg_reports,
            fencing_token: token,
            took_over,
            degraded: degraded_reason.as_ref().map(|r| r.to_string()),
        };
        let workspace = Workspace {
            root: root.to_owned(),
            generation: manifest.generation,
            journal,
            journal_path,
            segments: kept_segments,
            active_len,
            segment_max_bytes: DEFAULT_SEGMENT_MAX_BYTES,
            metrics: Metrics::disabled(),
            group: None,
            env,
            flusher_error: None,
            write_state: match degraded_reason {
                None => WriteState::Writable,
                Some(reason) => WriteState::Degraded(reason),
            },
            owner: owner.to_owned(),
            lease_ms,
            token,
            lease_expires_ms: if writable { now_ms + lease_ms } else { 0 },
        };
        Ok((workspace, session, report))
    }

    /// Returns the workspace directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Returns the current checkpoint generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether this handle may mutate the store, and if not, why.
    pub fn write_state(&self) -> &WriteState {
        &self.write_state
    }

    /// `true` when mutations are accepted (the handle holds the lease).
    pub fn is_writable(&self) -> bool {
        matches!(self.write_state, WriteState::Writable)
    }

    /// The fencing token this handle writes under.
    pub fn fencing_token(&self) -> u64 {
        self.token
    }

    /// The owner id this handle leases the store as.
    pub fn owner(&self) -> &str {
        &self.owner
    }

    /// Milliseconds until this handle's lease expires — negative once
    /// it is already past — or `None` when the handle never acquired
    /// a lease (degraded open). Renewals on the write path push the
    /// expiry forward.
    pub fn lease_remaining_ms(&self) -> Option<i64> {
        if self.lease_expires_ms == 0 {
            return None;
        }
        Some(self.lease_expires_ms as i64 - self.env.clock.wall_unix_ms() as i64)
    }

    /// The journal segment chain of the current generation, oldest
    /// first; the last entry is the active segment.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// Sets the size at which the active journal segment rolls into a
    /// new one. The default is large enough that rotation is effectively
    /// off; long-running servers set this to bound per-file size so
    /// scrub and quarantine operate on bounded units.
    pub fn set_segment_max_bytes(&mut self, max_bytes: u64) {
        self.segment_max_bytes = max_bytes.max(1);
    }

    /// Swaps the journal handle for a mock — lets tests inject I/O
    /// failures on the real (threaded) group-commit path.
    #[cfg(test)]
    fn set_journal_for_tests(&mut self, journal: Box<dyn FsFile>) {
        self.journal = Some(journal);
    }

    /// Installs a metrics registry; subsequent [`append`] and
    /// [`checkpoint`] calls record durability metrics into it
    /// (`store.append_bytes`, `store.fsync_ns`, `store.checkpoint_bytes`,
    /// `store.checkpoints`). Pass [`Session::metrics`]'s handle to share
    /// one registry across execution and storage.
    ///
    /// [`append`]: Workspace::append
    /// [`checkpoint`]: Workspace::checkpoint
    /// [`Session::metrics`]: crate::session::Session::metrics
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// Appends one operation to the journal, durably — once this
    /// returns, the operation survives a crash.
    ///
    /// Without group commit this is one `write` + `fsync`. With
    /// [`enable_group_commit`] the frame is handed to the flusher and
    /// this call waits for durability, so frames from interleaved
    /// [`append_deferred`] work share the fsync — same guarantee,
    /// amortized cost.
    ///
    /// [`enable_group_commit`]: Workspace::enable_group_commit
    /// [`append_deferred`]: Workspace::append_deferred
    ///
    /// # Errors
    ///
    /// I/O and serialization errors.
    pub fn append(&mut self, op: &JournalOp) -> Result<(), StoreError> {
        self.check_flusher_error()?;
        self.check_writable()?;
        if self.group.is_some() {
            self.append_deferred(op)?;
            return self.sync();
        }
        let payload = serde_json::to_vec(op)?;
        let frame = encode_frame(&payload);
        let journal = self.journal.as_mut().ok_or_else(journal_missing)?;
        journal.write_all(&frame)?;
        let fsync_started = self.env.clock.now();
        journal.sync_data()?;
        self.metrics
            .observe_duration("store.fsync_ns", self.env.clock.since(fsync_started));
        self.metrics
            .observe("store.append_bytes", frame.len() as u64);
        self.active_len += frame.len() as u64;
        self.maybe_roll()
    }

    /// Fails if a previous group flush left the journal poisoned.
    fn check_flusher_error(&self) -> Result<(), StoreError> {
        match &self.flusher_error {
            Some(error) => Err(StoreError::Io(std::io::Error::other(error.clone()))),
            None => Ok(()),
        }
    }

    /// Fails unless this handle currently holds the writer lease.
    ///
    /// The fast path is pure arithmetic: while the cached lease expiry
    /// is in the future, nothing is read or written. Once it passes,
    /// the lease file is re-read to arbitrate: if our token still
    /// stands the lease is renewed; if a larger token appears (lease or
    /// manifest), another writer took over and this handle fences
    /// itself permanently — its queued work is discarded, never
    /// written.
    fn check_writable(&mut self) -> Result<(), StoreError> {
        if let WriteState::Degraded(reason) = &self.write_state {
            return Err(StoreError::Degraded(reason.clone()));
        }
        let now = self.env.clock.wall_unix_ms();
        if now < self.lease_expires_ms {
            return Ok(());
        }
        let fence = |token: u64| DegradedReason::Fenced { token };
        match read_lease(&self.env.fs, &self.root) {
            Some(lease) if lease.token == self.token => {}
            Some(lease) if lease.token > self.token => {
                let reason = fence(lease.token);
                self.write_state = WriteState::Degraded(reason.clone());
                self.metrics.incr(names::STORE_FENCED_WRITES, 1);
                return Err(StoreError::Degraded(reason));
            }
            _ => {
                // No lease (or an older one): the manifest's token is
                // the durable arbitration record.
                if let Some(manifest) = read_manifest(&self.env.fs, &self.root) {
                    if manifest.fencing_token > self.token {
                        let reason = fence(manifest.fencing_token);
                        self.write_state = WriteState::Degraded(reason.clone());
                        self.metrics.incr(names::STORE_FENCED_WRITES, 1);
                        return Err(StoreError::Degraded(reason));
                    }
                }
            }
        }
        let expires = now + self.lease_ms;
        write_lease(&self.env.fs, &self.root, &self.owner, expires, self.token)?;
        self.lease_expires_ms = expires;
        self.metrics.incr(names::STORE_LEASE_RENEWALS, 1);
        Ok(())
    }

    /// Rolls the active segment once it crosses the size threshold:
    /// drains the group-commit queue, starts `journal-G.K.log`, records
    /// the grown chain in the manifest (new file durable first), and
    /// re-attaches group commit to the new segment.
    fn maybe_roll(&mut self) -> Result<(), StoreError> {
        if self.active_len < self.segment_max_bytes {
            return Ok(());
        }
        self.check_writable()?;
        let group_policy = self.group.as_ref().map(|g| g.policy());
        self.stop_group()?;
        let seq = self.segments.len() as u64;
        let name = segment_name(self.generation, seq);
        let path = self.root.join(&name);
        let mut file = self.env.fs.create_truncate(&path)?;
        file.sync_all()?;
        self.env.fs.sync_dir(&self.root)?;
        let mut segments = self.segments.clone();
        segments.push(name.clone());
        let manifest = Manifest {
            generation: self.generation,
            checkpoint: checkpoint_name(self.generation),
            journal: name,
            segments: segments.clone(),
            fencing_token: self.token,
        };
        write_atomic(
            &self.env.fs,
            &self.root,
            "MANIFEST",
            serde_json::to_string(&manifest)?.as_bytes(),
        )?;
        self.segments = segments;
        self.journal = Some(file);
        self.journal_path = path;
        self.active_len = 0;
        self.metrics.incr(names::STORE_SEGMENT_ROLLS, 1);
        if let Some(policy) = group_policy {
            self.enable_group_commit(policy)?;
        }
        Ok(())
    }

    /// Starts the group-commit flusher: subsequent appends batch frames
    /// accumulated while an fsync is in flight into a single
    /// `write` + `fsync`, per `policy`. Durability semantics are
    /// unchanged — [`append`] still blocks until its frame is on disk,
    /// and [`append_deferred`] + [`sync`] lets callers batch
    /// explicitly. Install metrics ([`set_metrics`]) before enabling so
    /// the flusher reports into the right registry.
    ///
    /// [`append`]: Workspace::append
    /// [`append_deferred`]: Workspace::append_deferred
    /// [`sync`]: Workspace::sync
    /// [`set_metrics`]: Workspace::set_metrics
    ///
    /// # Errors
    ///
    /// I/O errors duplicating the journal handle for the flusher.
    pub fn enable_group_commit(&mut self, policy: GroupCommitPolicy) -> Result<(), StoreError> {
        if self.group.is_some() {
            return Ok(());
        }
        if self.env.fs.is_sim() {
            // Under simulation, batch in-process with no thread: every
            // flush happens inside a deterministic `sync` call.
            self.group = Some(GroupCommit::Inline {
                queue: Vec::new(),
                pending_frames: 0,
                policy,
            });
            return Ok(());
        }
        let journal = self
            .journal
            .as_ref()
            .ok_or_else(journal_missing)?
            .try_clone()?;
        let shared = Arc::new(GroupShared::default());
        let thread_shared = Arc::clone(&shared);
        let metrics = self.metrics.clone();
        let clock = self.env.clock.clone();
        let handle = std::thread::Builder::new()
            .name("journal-flusher".into())
            .spawn(move || flusher_loop(&thread_shared, journal, policy, metrics, clock))?;
        self.group = Some(GroupCommit::Threaded {
            shared,
            handle: Some(handle),
            policy,
        });
        Ok(())
    }

    /// Stops the group-commit flusher after draining every queued
    /// frame; later appends go back to one fsync each.
    ///
    /// # Errors
    ///
    /// A flush failure the flusher hit while draining.
    pub fn disable_group_commit(&mut self) -> Result<(), StoreError> {
        self.stop_group()
    }

    /// Returns `true` while group commit is active.
    pub fn group_commit_enabled(&self) -> bool {
        self.group.is_some()
    }

    /// Enqueues one operation for the flusher without waiting for
    /// durability, returning its journal sequence number. The frame is
    /// on disk only after a later [`sync`] (or [`append`]) returns;
    /// a crash before that loses at most this unacknowledged tail.
    /// Without group commit enabled this is identical to [`append`].
    ///
    /// [`sync`]: Workspace::sync
    /// [`append`]: Workspace::append
    ///
    /// # Errors
    ///
    /// Serialization errors, or a sticky flusher failure.
    pub fn append_deferred(&mut self, op: &JournalOp) -> Result<u64, StoreError> {
        self.check_flusher_error()?;
        self.check_writable()?;
        if self.group.is_none() {
            self.append(op)?;
            return Ok(0);
        }
        let payload = serde_json::to_vec(op)?;
        let frame = encode_frame(&payload);
        let frame_len = frame.len() as u64;
        let (seq, flush_now) = match self.group.as_mut().expect("group checked above") {
            GroupCommit::Threaded { shared, .. } => {
                let mut st = lock_state(shared);
                if let Some(error) = &st.error {
                    // Latch the flusher's sticky failure at enqueue
                    // time: callers find out *now* instead of queuing
                    // doomed work until the next sync/close.
                    let error = error.clone();
                    drop(st);
                    if self.flusher_error.is_none() {
                        self.flusher_error = Some(error.clone());
                    }
                    return Err(StoreError::Io(std::io::Error::other(error)));
                }
                st.queue.extend_from_slice(&frame);
                st.enqueued += 1;
                st.pending_frames += 1;
                let seq = st.enqueued;
                drop(st);
                shared.work.notify_one();
                (seq, false)
            }
            GroupCommit::Inline {
                queue,
                pending_frames,
                policy,
            } => {
                queue.extend_from_slice(&frame);
                *pending_frames += 1;
                (*pending_frames, *pending_frames >= policy.max_batch as u64)
            }
        };
        self.metrics.observe("store.append_bytes", frame_len);
        if flush_now {
            self.flush_inline()?;
        }
        Ok(seq)
    }

    /// Writes and fsyncs the inline queue as one batch.
    fn flush_inline(&mut self) -> Result<(), StoreError> {
        let Some(GroupCommit::Inline {
            queue,
            pending_frames,
            ..
        }) = self.group.as_mut()
        else {
            return Ok(());
        };
        if queue.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(queue);
        let frames = std::mem::take(pending_frames);
        if let WriteState::Degraded(reason) = &self.write_state {
            // Fenced mid-batch: the queued frames must never reach the
            // journal — another writer owns it now. Discard them; the
            // enqueuers were already (or will be) told via the typed
            // error.
            self.metrics.incr(names::STORE_GROUP_DISCARDED_BATCHES, 1);
            return Err(StoreError::Degraded(reason.clone()));
        }
        let journal = self.journal.as_mut().ok_or_else(journal_missing)?;
        let fsync_started = self.env.clock.now();
        let result = journal.write_all(&batch).and_then(|()| journal.sync_data());
        self.metrics
            .observe_duration("store.fsync_ns", self.env.clock.since(fsync_started));
        self.metrics.incr("store.group_flushes", 1);
        self.metrics.observe("store.group_batch_frames", frames);
        if let Err(e) = result {
            let msg = e.to_string();
            if self.flusher_error.is_none() {
                self.flusher_error = Some(msg.clone());
            }
            return Err(StoreError::Io(std::io::Error::other(msg)));
        }
        Ok(())
    }

    /// Blocks until every frame enqueued so far is durable on disk.
    /// A no-op without group commit (plain appends are already
    /// durable).
    ///
    /// # Errors
    ///
    /// The flusher's sticky flush failure, if any.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.check_flusher_error()?;
        self.check_writable()?;
        let shared = match &self.group {
            None => return Ok(()),
            Some(GroupCommit::Inline { .. }) => {
                self.flush_inline()?;
                return self.maybe_roll();
            }
            Some(GroupCommit::Threaded { shared, .. }) => Arc::clone(shared),
        };
        let mut st = lock_state(&shared);
        let target = st.enqueued;
        st.waiters += 1;
        // Wake the flusher out of its batching linger: someone is
        // waiting now.
        shared.work.notify_all();
        while st.durable < target && st.error.is_none() {
            st = shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.waiters -= 1;
        let error = st.error.clone();
        drop(st);
        if let Some(error) = error {
            if self.flusher_error.is_none() {
                self.flusher_error = Some(error.clone());
            }
            return Err(StoreError::Io(std::io::Error::other(error)));
        }
        self.maybe_roll()
    }

    /// Drains and joins (or flushes) the group-commit machinery,
    /// surfacing any flush failure.
    fn stop_group(&mut self) -> Result<(), StoreError> {
        match self.group.take() {
            None => Ok(()),
            Some(inline @ GroupCommit::Inline { .. }) => {
                // Put it back so flush_inline can drain it, then drop.
                self.group = Some(inline);
                let result = self.flush_inline();
                self.group = None;
                result
            }
            Some(GroupCommit::Threaded {
                shared, mut handle, ..
            }) => {
                {
                    let mut st = lock_state(&shared);
                    st.shutdown = true;
                    shared.work.notify_all();
                }
                if let Some(handle) = handle.take() {
                    let _ = handle.join();
                }
                let st = lock_state(&shared);
                if let Some(error) = &st.error {
                    let error = error.clone();
                    drop(st);
                    if self.flusher_error.is_none() {
                        self.flusher_error = Some(error.clone());
                    }
                    return Err(StoreError::Io(std::io::Error::other(error)));
                }
                Ok(())
            }
        }
    }

    /// Shuts the workspace down cleanly: drains and joins the flusher
    /// and surfaces any sticky flush error that would otherwise be
    /// dropped by the best-effort `Drop`. Call this at end of session
    /// when you need a positive durability confirmation.
    ///
    /// # Errors
    ///
    /// Any flush failure hit while draining, or a sticky error from an
    /// earlier failed flush.
    pub fn close(mut self) -> Result<(), StoreError> {
        self.stop_group()?;
        self.check_flusher_error()?;
        self.release_lease();
        Ok(())
    }

    /// Releases the writer lease, if this handle still holds it. A
    /// deposed handle's lease file belongs to the *new* writer (larger
    /// token) and is left untouched. Best-effort: failure to remove an
    /// expired lease only delays the next takeover.
    fn release_lease(&self) {
        if !self.is_writable() {
            return;
        }
        if let Some(lease) = read_lease(&self.env.fs, &self.root) {
            if lease.token == self.token {
                let _ = self.env.fs.remove_file(&self.root.join(LEASE_FILE));
            }
        }
    }

    /// Takes a new checkpoint of `session` and rotates the journal:
    /// writes `checkpoint-(N+1)` atomically, starts an empty
    /// `journal-(N+1)`, swaps the manifest, then deletes the old
    /// generation's files (best-effort — a crash between the manifest
    /// swap and the deletes leaves harmless orphans).
    ///
    /// # Errors
    ///
    /// I/O and serialization errors; on error the old generation is
    /// still intact and current.
    pub fn checkpoint(&mut self, session: &Session) -> Result<(), StoreError> {
        self.check_writable()?;
        // The flusher holds a handle to the *old* journal; drain and
        // stop it before rotating, then re-attach to the new file.
        let group_policy = self.group.as_ref().map(|g| g.policy());
        self.stop_group()?;
        let next = self.generation + 1;
        let spec = SessionSpec::from_session(session);
        let json = spec.to_json().map_err(StoreError::from)?;
        write_atomic(
            &self.env.fs,
            &self.root,
            &checkpoint_name(next),
            json.as_bytes(),
        )?;
        let next_journal_path = self.root.join(journal_name(next));
        let mut next_journal = self.env.fs.create_truncate(&next_journal_path)?;
        next_journal.sync_all()?;
        // Make the new journal's directory entry durable before the
        // manifest swap names it (same ordering rule as `create_in`).
        self.env.fs.sync_dir(&self.root)?;
        let manifest = Manifest {
            generation: next,
            checkpoint: checkpoint_name(next),
            journal: journal_name(next),
            segments: vec![journal_name(next)],
            fencing_token: self.token,
        };
        write_atomic(
            &self.env.fs,
            &self.root,
            "MANIFEST",
            serde_json::to_string(&manifest)?.as_bytes(),
        )?;
        // The swap is durable; retire the previous generation — every
        // segment of it, but never quarantine files.
        let _ = self
            .env
            .fs
            .remove_file(&self.root.join(checkpoint_name(self.generation)));
        for segment in &self.segments {
            let _ = self.env.fs.remove_file(&self.root.join(segment));
        }
        self.generation = next;
        self.journal = Some(next_journal);
        self.journal_path = next_journal_path;
        self.segments = vec![journal_name(next)];
        self.active_len = 0;
        self.metrics.incr("store.checkpoints", 1);
        self.metrics
            .observe("store.checkpoint_bytes", json.len() as u64);
        if let Some(policy) = group_policy {
            self.enable_group_commit(policy)?;
        }
        Ok(())
    }

    /// Verifies every byte of the store — the checkpoint snapshot and
    /// every frame of every journal segment — and, when writable,
    /// repairs any damage found: damaged regions and unreadable
    /// segments are quarantined aside (never silently dropped), then
    /// the live `session` is checkpointed so the store re-baselines
    /// onto known-good files. In degraded mode the scan still runs but
    /// nothing is mutated (`repaired` stays `false`).
    ///
    /// The live session supersedes everything journaled — every
    /// acknowledged operation is already applied to it — so the
    /// re-baseline loses nothing; the quarantine files preserve the
    /// rotted bytes for forensics.
    ///
    /// # Errors
    ///
    /// I/O errors during the scan or repair; a lease loss surfaces as
    /// [`StoreError::Degraded`].
    pub fn scrub(&mut self, session: &Session) -> Result<ScrubReport, StoreError> {
        let generation = self.generation;
        if self.is_writable() {
            // Queued frames must hit the disk before the scan reads it.
            self.sync()?;
        }
        self.metrics.incr(names::STORE_SCRUBS, 1);
        let checkpoint_ok = match self
            .env
            .fs
            .read(&self.root.join(checkpoint_name(generation)))
        {
            Ok(bytes) => {
                self.metrics
                    .incr(names::STORE_SCRUB_BYTES, bytes.len() as u64);
                serde_json::from_slice::<SessionSpec>(&bytes).is_ok()
            }
            Err(_) => false,
        };
        let mut segments = Vec::new();
        let mut damaged = !checkpoint_ok;
        for name in self.segments.clone() {
            match self.env.fs.read(&self.root.join(&name)) {
                Ok(buf) => {
                    self.metrics
                        .incr(names::STORE_SCRUB_BYTES, buf.len() as u64);
                    let scan = scan_frames(&buf);
                    let trailing = (buf.len() - scan.valid_len) as u64;
                    damaged |= trailing > 0;
                    segments.push(SegmentScrub {
                        name,
                        frames_ok: scan.payloads.len(),
                        bytes_ok: scan.valid_len as u64,
                        damaged_bytes: trailing,
                        readable: true,
                        quarantined_as: Vec::new(),
                    });
                }
                Err(_) => {
                    damaged = true;
                    segments.push(SegmentScrub {
                        name,
                        frames_ok: 0,
                        bytes_ok: 0,
                        damaged_bytes: 0,
                        readable: false,
                        quarantined_as: Vec::new(),
                    });
                }
            }
        }
        let mut repaired = false;
        if damaged && self.is_writable() {
            self.check_writable()?;
            // Preserve every damaged byte range aside first; the
            // checkpoint below retires the damaged files only after
            // their evidence is safe.
            for seg in &mut segments {
                if !seg.readable {
                    if let Some(q) = quarantine_rename(&self.env.fs, &self.root, &seg.name)? {
                        seg.quarantined_as.push(q);
                    }
                } else if seg.damaged_bytes > 0 {
                    let buf = self.env.fs.read(&self.root.join(&seg.name))?;
                    let q = quarantine_bytes(
                        &self.env.fs,
                        &self.root,
                        &seg.name,
                        &buf[seg.bytes_ok as usize..],
                    )?;
                    self.metrics
                        .observe(names::STORE_QUARANTINED_BYTES, seg.damaged_bytes);
                    seg.quarantined_as.push(q);
                }
            }
            // The live session holds every acknowledged operation, so a
            // fresh checkpoint re-baselines without loss.
            self.checkpoint(session)?;
            repaired = true;
        }
        if damaged {
            self.metrics.incr(names::STORE_SCRUB_DAMAGE, 1);
        }
        Ok(ScrubReport {
            generation,
            checkpoint_ok,
            segments,
            damaged,
            repaired,
            fencing_token: self.token,
        })
    }
}

impl Drop for Workspace {
    fn drop(&mut self) {
        // Best-effort drain so enqueued-but-unsynced frames reach disk;
        // errors are already sticky and were surfaced to sync callers.
        let _ = self.stop_group();
        self.release_lease();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_root(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("hercules-store-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn crc32_matches_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_and_scan() {
        let mut buf = Vec::new();
        for payload in [b"alpha".as_slice(), b"".as_slice(), b"gamma!".as_slice()] {
            buf.extend_from_slice(&encode_frame(payload));
        }
        let scan = scan_frames(&buf);
        assert_eq!(
            scan.payloads,
            vec![b"alpha".to_vec(), Vec::new(), b"gamma!".to_vec()]
        );
        assert_eq!(scan.valid_len, buf.len());
        assert_eq!(scan.trailing, 0);
        assert_eq!(scan.offsets.last(), Some(&buf.len()));
    }

    #[test]
    fn torn_and_corrupt_tails_stop_the_scan() {
        let mut buf = encode_frame(b"keep me");
        let keep = buf.len();
        buf.extend_from_slice(&encode_frame(b"torn"));
        buf.truncate(keep + 5); // mid-header tear
        let scan = scan_frames(&buf);
        assert_eq!(scan.payloads.len(), 1);
        assert_eq!(scan.valid_len, keep);
        assert_eq!(scan.trailing, 5);

        let mut buf = encode_frame(b"keep me");
        let mut second = encode_frame(b"rotted");
        let last = second.len() - 1;
        second[last] ^= 0x40; // flip a payload bit
        buf.extend_from_slice(&second);
        let scan = scan_frames(&buf);
        assert_eq!(scan.payloads.len(), 1);
        assert_eq!(scan.valid_len, keep);
    }

    #[test]
    fn every_byte_of_garbage_yields_a_valid_prefix() {
        // scan_frames on arbitrary prefixes/suffixes must never panic.
        let mut buf = encode_frame(b"one");
        buf.extend_from_slice(&encode_frame(b"two"));
        for cut in 0..=buf.len() {
            let _ = scan_frames(&buf[..cut]);
        }
        let _ = scan_frames(&[0xFF; 64]);
    }

    #[test]
    fn workspace_create_append_reopen() {
        let root = temp_root("basic");
        let session = Session::odyssey("jbb");
        let mut ws = Workspace::create(&root, &session).expect("creates");
        ws.append(&JournalOp::Flow(FlowOp::Seed {
            entity: "Layout".into(),
        }))
        .expect("appends");
        ws.append(&JournalOp::Flow(FlowOp::Expand {
            node: 0,
            optional: Vec::new(),
            reuse: Vec::new(),
            reuse_existing: false,
        }))
        .expect("appends");
        drop(ws);

        let (ws, restored, report) =
            Workspace::open_session(&root, |s| crate::encaps::odyssey_registry(s))
                .expect("reopens");
        assert_eq!(report.ops_replayed, 2);
        assert!(!report.truncated);
        assert_eq!(ws.generation(), 0);
        assert_eq!(restored.flow().expect("flow").len(), 4);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn torn_journal_tail_is_truncated_on_open() {
        let root = temp_root("torn");
        let session = Session::odyssey("jbb");
        let mut ws = Workspace::create(&root, &session).expect("creates");
        ws.append(&JournalOp::Flow(FlowOp::Seed {
            entity: "Layout".into(),
        }))
        .expect("appends");
        let journal_path = ws.journal_path.clone();
        drop(ws);
        // Simulate a crash mid-append: garbage half-frame at the tail.
        let mut bytes = fs::read(&journal_path).expect("reads");
        let valid = bytes.len();
        bytes.extend_from_slice(&[0x12, 0x34, 0x56]);
        fs::write(&journal_path, &bytes).expect("writes");

        let (_ws, restored, report) =
            Workspace::open_session(&root, |s| crate::encaps::odyssey_registry(s))
                .expect("recovers");
        assert_eq!(report.ops_replayed, 1);
        assert!(report.truncated);
        assert_eq!(report.bytes_discarded, 3);
        assert!(restored.flow().is_ok());
        assert_eq!(
            fs::read(&journal_path).expect("reads").len(),
            valid,
            "the torn tail was truncated away"
        );
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn unreplayable_op_becomes_the_corrupt_tail() {
        let root = temp_root("unreplayable");
        let session = Session::odyssey("jbb");
        let mut ws = Workspace::create(&root, &session).expect("creates");
        ws.append(&JournalOp::Flow(FlowOp::Seed {
            entity: "Layout".into(),
        }))
        .expect("appends");
        // CRC-valid but semantically impossible (unknown entity).
        ws.append(&JournalOp::Flow(FlowOp::Seed {
            entity: "Ghost".into(),
        }))
        .expect("appends");
        drop(ws);

        let (_ws, restored, report) =
            Workspace::open_session(&root, |s| crate::encaps::odyssey_registry(s))
                .expect("recovers");
        assert_eq!(report.ops_replayed, 1);
        assert!(report.truncated);
        assert!(restored.flow().is_ok());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn checkpoint_rotates_generations() {
        let root = temp_root("rotate");
        let mut session = Session::odyssey("jbb");
        let mut ws = Workspace::create(&root, &session).expect("creates");
        session.start_from_goal("Layout").expect("starts");
        ws.append(&JournalOp::Flow(FlowOp::Seed {
            entity: "Layout".into(),
        }))
        .expect("appends");
        ws.checkpoint(&session).expect("rotates");
        assert_eq!(ws.generation(), 1);
        assert!(!root.join(checkpoint_name(0)).exists());
        assert!(!root.join(journal_name(0)).exists());
        drop(ws);

        let (ws, restored, report) =
            Workspace::open_session(&root, |s| crate::encaps::odyssey_registry(s))
                .expect("reopens");
        assert_eq!(ws.generation(), 1);
        assert_eq!(report.ops_replayed, 0, "the journal was rotated empty");
        assert!(restored.flow().is_ok(), "the flow came from the checkpoint");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn workspace_records_durability_metrics() {
        let root = temp_root("metrics");
        let session = Session::odyssey("jbb");
        let mut ws = Workspace::create(&root, &session).expect("creates");
        let metrics = Metrics::new();
        ws.set_metrics(metrics.clone());
        ws.append(&JournalOp::Flow(FlowOp::Seed {
            entity: "Layout".into(),
        }))
        .expect("appends");
        ws.checkpoint(&session).expect("rotates");

        let snap = metrics.snapshot();
        let fsync = snap.histograms.get("store.fsync_ns").expect("fsync");
        assert_eq!(fsync.count, 1);
        let bytes = snap.histograms.get("store.append_bytes").expect("bytes");
        assert!(bytes.sum > 8, "a frame is header + payload");
        assert_eq!(snap.counters.get("store.checkpoints"), Some(&1));
        assert!(
            snap.histograms
                .get("store.checkpoint_bytes")
                .expect("checkpoint size")
                .sum
                > 0
        );
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn exec_ops_replay_extensionally() {
        // Journal a run's committed products and replay them into a
        // fresh copy of the pre-run session — the databases must agree
        // without any tool re-running.
        let mut session = Session::odyssey("jbb");
        let layout = session.start_from_goal("Layout").expect("starts");
        session.expand(layout).expect("expands");
        let netlist = session.flow().expect("flow").data_inputs_of(layout)[0];
        session.specialize(netlist, "EditedNetlist").expect("ok");
        session.expand(netlist).expect("expands");
        session.bind_latest().expect("binds");
        let before = SessionSpec::from_session(&session);
        let db_before = session.db().len();
        session.run().expect("runs");

        let spec = ExecSpec {
            instances: (db_before..session.db().len())
                .map(|i| InstanceSpec::capture(session.db(), i))
                .collect(),
            report: session.last_report().map(ExecReportSpec::from_report),
            event: session.events().last().cloned(),
        };
        let mut replayed = before
            .restore(crate::encaps::odyssey_registry(session.schema()))
            .expect("restores");
        JournalOp::Exec(spec)
            .replay(&mut replayed)
            .expect("replays");
        assert_eq!(replayed.db().len(), session.db().len());
        assert_eq!(replayed.events(), session.events());
        assert_eq!(
            SessionSpec::from_session(&replayed),
            SessionSpec::from_session(&session)
        );
    }

    fn seed_op(n: u64) -> JournalOp {
        // Distinct-but-replayable ops: every odyssey entity works as a
        // seed, so cycle through a few to vary frame payloads.
        let entity = ["Layout", "Netlist", "Stimuli"][(n % 3) as usize];
        JournalOp::Flow(FlowOp::Seed {
            entity: entity.into(),
        })
    }

    #[test]
    fn group_commit_appends_survive_reopen_and_checkpoint() {
        let root = temp_root("group-basic");
        let mut session = Session::odyssey("jbb");
        let mut ws = Workspace::create(&root, &session).expect("creates");
        ws.enable_group_commit(GroupCommitPolicy::default())
            .expect("enables");
        assert!(ws.group_commit_enabled());
        for n in 0..5 {
            ws.append_deferred(&seed_op(n)).expect("enqueues");
        }
        ws.sync().expect("flushes");
        // Blocking append under group commit is durable on return too.
        ws.append(&seed_op(5)).expect("appends");
        // Rotation drains the flusher, retargets it at the new journal,
        // and later frames land there.
        session.start_from_goal("Layout").expect("starts");
        ws.checkpoint(&session).expect("rotates");
        assert!(ws.group_commit_enabled(), "survives rotation");
        ws.append(&seed_op(6)).expect("appends post-rotation");
        drop(ws);

        let (_ws, _restored, report) =
            Workspace::open_session(&root, |s| crate::encaps::odyssey_registry(s))
                .expect("reopens");
        assert_eq!(report.ops_replayed, 1, "pre-checkpoint ops are folded in");
        assert!(!report.truncated);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn group_commit_batches_frames_into_shared_fsyncs() {
        let root = temp_root("group-batch");
        let session = Session::odyssey("jbb");
        let mut ws = Workspace::create(&root, &session).expect("creates");
        let metrics = Metrics::new();
        ws.set_metrics(metrics.clone());
        ws.enable_group_commit(GroupCommitPolicy {
            max_batch: 64,
            max_delay: Duration::from_millis(20),
        })
        .expect("enables");
        let frames = 48;
        for n in 0..frames {
            ws.append_deferred(&seed_op(n)).expect("enqueues");
        }
        ws.sync().expect("flushes");
        ws.disable_group_commit().expect("drains");

        let snap = metrics.snapshot();
        let flushes = *snap.counters.get("store.group_flushes").expect("flushes");
        assert!(flushes >= 1);
        assert!(
            flushes < frames,
            "{frames} frames shared {flushes} fsyncs — no batching happened"
        );
        let batch = snap
            .histograms
            .get("store.group_batch_frames")
            .expect("batch sizes");
        assert_eq!(batch.sum, frames, "every frame flushed exactly once");
        let (_ws, _restored, report) =
            Workspace::open_session(&root, |s| crate::encaps::odyssey_registry(s))
                .expect("reopens");
        assert_eq!(report.ops_replayed as u64, frames);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn group_commit_crash_at_every_byte_offset_recovers_a_prefix() {
        // The group-commit guarantee: a crash mid-batch loses at most
        // the unacknowledged tail, and recovery always lands on a clean
        // frame boundary. Simulate by truncating the journal at every
        // byte offset and reopening a copy of the workspace.
        let root = temp_root("group-crash");
        let session = Session::odyssey("jbb");
        let mut ws = Workspace::create(&root, &session).expect("creates");
        ws.enable_group_commit(GroupCommitPolicy::default())
            .expect("enables");
        for n in 0..6 {
            ws.append_deferred(&seed_op(n)).expect("enqueues");
        }
        ws.sync().expect("flushes");
        let journal_path = ws.journal_path.clone();
        drop(ws);
        let bytes = fs::read(&journal_path).expect("reads journal");
        let checkpoint = fs::read(root.join(checkpoint_name(0))).expect("reads checkpoint");
        let manifest = fs::read(root.join("MANIFEST")).expect("reads manifest");

        for cut in 0..=bytes.len() {
            let crashed = temp_root("group-crash-cut");
            fs::create_dir_all(&crashed).expect("mkdir");
            fs::write(crashed.join(checkpoint_name(0)), &checkpoint).expect("copies");
            fs::write(crashed.join("MANIFEST"), &manifest).expect("copies");
            fs::write(crashed.join(journal_name(0)), &bytes[..cut]).expect("truncates");
            let survivors = scan_frames(&bytes[..cut]).payloads.len();
            let (_ws, restored, report) =
                Workspace::open_session(&crashed, |s| crate::encaps::odyssey_registry(s))
                    .unwrap_or_else(|e| panic!("cut at byte {cut} fails recovery: {e}"));
            assert_eq!(
                report.ops_replayed, survivors,
                "cut at byte {cut}: whole frames before the cut replay"
            );
            assert!(restored.flow().is_ok() || survivors == 0);
            fs::remove_dir_all(&crashed).ok();
        }
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn segments_roll_at_threshold_and_reopen_across_boundaries() {
        let root = temp_root("segments");
        let session = Session::odyssey("jbb");
        let mut ws = Workspace::create(&root, &session).expect("creates");
        let metrics = Metrics::new();
        ws.set_metrics(metrics.clone());
        ws.set_segment_max_bytes(1); // every append rolls
        for n in 0..5 {
            ws.append(&seed_op(n)).expect("appends");
        }
        assert_eq!(ws.segments().len(), 6, "five rolls after five appends");
        assert_eq!(
            metrics.snapshot().counters.get("store.segment_rolls"),
            Some(&5)
        );
        assert!(root.join("journal-0.3.log").exists());
        drop(ws);

        let (ws, restored, report) =
            Workspace::open_session(&root, |s| crate::encaps::odyssey_registry(s))
                .expect("reopens");
        assert_eq!(report.ops_replayed, 5, "replay crosses segment boundaries");
        assert!(!report.truncated);
        assert_eq!(report.segments.len(), 6);
        assert_eq!(ws.segments().len(), 6);
        assert!(restored.flow().is_ok());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn checkpoint_retires_every_segment_of_the_old_generation() {
        let root = temp_root("segments-rotate");
        let session = Session::odyssey("jbb");
        let mut ws = Workspace::create(&root, &session).expect("creates");
        ws.set_segment_max_bytes(1);
        for n in 0..3 {
            ws.append(&seed_op(n)).expect("appends");
        }
        let old: Vec<String> = ws.segments().to_vec();
        assert!(old.len() > 1);
        ws.checkpoint(&session).expect("rotates");
        for name in &old {
            assert!(!root.join(name).exists(), "{name} was retired");
        }
        assert_eq!(ws.segments(), [journal_name(1)]);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn foreign_live_lease_opens_degraded_and_rejects_mutations() {
        let root = temp_root("lease");
        let session = Session::odyssey("jbb");
        let ws = Workspace::create(&root, &session).expect("creates");
        // `ws` (owner "local") holds the lease; a different owner gets
        // a read-only open, not a failure.
        let (mut other, other_session, report) = Workspace::open_session_as(
            &root,
            |s| crate::encaps::odyssey_registry(s),
            Env::real(),
            "intruder",
            60_000,
        )
        .expect("opens degraded");
        assert!(report.degraded.is_some());
        assert!(!other.is_writable());
        assert!(matches!(
            other.write_state(),
            WriteState::Degraded(DegradedReason::LeaseHeld { .. })
        ));
        let err = other.append(&seed_op(0)).expect_err("append rejected");
        assert!(matches!(err, StoreError::Degraded(_)), "typed error: {err}");
        let err = other
            .checkpoint(&other_session)
            .expect_err("checkpoint rejected");
        assert!(matches!(err, StoreError::Degraded(_)));
        let scrub = other.scrub(&other_session).expect("scan still runs");
        assert!(!scrub.repaired);
        drop(other);
        // The degraded handle must not have removed the owner's lease.
        assert!(root.join(LEASE_FILE).exists());
        drop(ws);
        assert!(!root.join(LEASE_FILE).exists(), "owner released on drop");
        // Now the other owner can take over cleanly.
        let (other, _, report) = Workspace::open_session_as(
            &root,
            |s| crate::encaps::odyssey_registry(s),
            Env::real(),
            "intruder",
            60_000,
        )
        .expect("opens writable");
        assert!(other.is_writable());
        assert!(report.degraded.is_none());
        drop(other);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn fencing_token_grows_across_reopens() {
        let root = temp_root("token");
        let session = Session::odyssey("jbb");
        let ws = Workspace::create(&root, &session).expect("creates");
        let t0 = ws.fencing_token();
        drop(ws);
        let (ws, _, report) =
            Workspace::open_session(&root, |s| crate::encaps::odyssey_registry(s))
                .expect("reopens");
        assert!(ws.fencing_token() > t0, "every acquire bumps the token");
        assert_eq!(report.fencing_token, ws.fencing_token());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn scrub_clean_store_reports_clean() {
        let root = temp_root("scrub-clean");
        let mut session = Session::odyssey("jbb");
        let mut ws = Workspace::create(&root, &session).expect("creates");
        session.start_from_goal("Layout").expect("starts");
        ws.append(&JournalOp::Flow(FlowOp::Seed {
            entity: "Layout".into(),
        }))
        .expect("appends");
        let report = ws.scrub(&session).expect("scrubs");
        assert!(!report.damaged);
        assert!(!report.repaired);
        assert!(report.checkpoint_ok);
        assert_eq!(report.segments.len(), 1);
        assert_eq!(report.segments[0].frames_ok, 1);
        assert_eq!(ws.generation(), 0, "clean scrub does not re-baseline");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn scrub_quarantines_rot_and_rebaselines() {
        let root = temp_root("scrub-rot");
        let mut session = Session::odyssey("jbb");
        let mut ws = Workspace::create(&root, &session).expect("creates");
        session.start_from_goal("Layout").expect("starts");
        ws.append(&JournalOp::Flow(FlowOp::Seed {
            entity: "Layout".into(),
        }))
        .expect("appends");
        ws.append(&JournalOp::Flow(FlowOp::Seed {
            entity: "Netlist".into(),
        }))
        .expect("appends");
        // Bit-rot the first frame on disk, under the live handle.
        let path = root.join(journal_name(0));
        let mut bytes = fs::read(&path).expect("reads");
        bytes[10] ^= 0x40;
        fs::write(&path, &bytes).expect("rots");

        let report = ws.scrub(&session).expect("scrubs");
        assert!(report.damaged);
        assert!(report.repaired);
        assert!(report.checkpoint_ok);
        assert_eq!(report.segments[0].frames_ok, 0, "rot starts at frame 0");
        assert_eq!(
            report.segments[0].quarantined_as,
            vec![format!("{}.quarantined-0", journal_name(0))]
        );
        let quarantined = fs::read(root.join(&report.segments[0].quarantined_as[0]))
            .expect("quarantine file exists");
        assert_eq!(quarantined, bytes, "every damaged byte was preserved");
        assert_eq!(ws.generation(), 1, "re-baselined onto a new generation");
        drop(ws);

        // The re-baselined store reopens with the full session state.
        let (_ws, restored, report) =
            Workspace::open_session(&root, |s| crate::encaps::odyssey_registry(s))
                .expect("reopens");
        assert_eq!(report.ops_replayed, 0);
        assert!(!report.truncated);
        assert!(restored.flow().is_ok(), "state came from the checkpoint");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn mid_chain_damage_quarantines_later_segments_on_open() {
        let root = temp_root("mid-chain");
        let session = Session::odyssey("jbb");
        let mut ws = Workspace::create(&root, &session).expect("creates");
        ws.set_segment_max_bytes(1);
        for n in 0..4 {
            ws.append(&seed_op(n)).expect("appends");
        }
        let segments: Vec<String> = ws.segments().to_vec();
        drop(ws);
        // Rot a byte inside segment 1; segments 2.. hold valid frames
        // that are now beyond a hole and must be quarantined, not
        // silently truncated away.
        let victim = root.join(&segments[1]);
        let mut bytes = fs::read(&victim).expect("reads");
        bytes[9] ^= 0x01;
        fs::write(&victim, &bytes).expect("rots");

        let (ws, _restored, report) =
            Workspace::open_session(&root, |s| crate::encaps::odyssey_registry(s))
                .expect("recovers");
        assert_eq!(report.ops_replayed, 1, "only segment 0's frame replays");
        assert!(report.truncated);
        assert!(report.quarantined());
        let damaged = &report.segments[1];
        assert_eq!(damaged.frames_replayed, 0);
        assert_eq!(damaged.frames_quarantined, 0, "the rotted frame is gone");
        assert!(!damaged.quarantined_as.is_empty());
        // Later segments were preserved aside with their frame counts.
        let later: usize = report.segments[2..]
            .iter()
            .map(|s| s.frames_quarantined)
            .sum();
        assert_eq!(later, 2, "segments 2 and 3 each held one frame");
        for seg in &report.segments[2..] {
            assert!(!seg.quarantined_as.is_empty());
            assert!(root.join(&seg.quarantined_as[0]).exists());
        }
        assert_eq!(ws.segments().len(), 2, "chain truncated at the damage");
        drop(ws);
        // Recovery converges: a second open finds a clean store.
        let (_ws, _restored, report) =
            Workspace::open_session(&root, |s| crate::encaps::odyssey_registry(s))
                .expect("reopens");
        assert_eq!(report.ops_replayed, 1);
        assert!(!report.truncated, "repair was durable and idempotent");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn recovery_report_serializes_to_json() {
        let root = temp_root("report-json");
        let session = Session::odyssey("jbb");
        let mut ws = Workspace::create(&root, &session).expect("creates");
        ws.append(&seed_op(0)).expect("appends");
        drop(ws);
        let (_ws, _restored, report) =
            Workspace::open_session(&root, |s| crate::encaps::odyssey_registry(s))
                .expect("reopens");
        let json = report.to_json();
        assert!(json.contains("\"ops_replayed\":1"), "json: {json}");
        assert!(
            json.contains(&format!("\"name\":\"{}\"", journal_name(0))),
            "json: {json}"
        );
        assert!(json.contains("\"fencing_token\":"), "json: {json}");
        assert!(json.contains("\"segments\":["), "json: {json}");
        fs::remove_dir_all(&root).ok();
    }

    /// A journal handle whose writes succeed but whose fsyncs always
    /// fail — the flusher's first flush poisons the workspace.
    struct FailingFile;

    impl FsFile for FailingFile {
        fn write_all(&mut self, _buf: &[u8]) -> std::io::Result<()> {
            Ok(())
        }
        fn sync_data(&mut self) -> std::io::Result<()> {
            Err(std::io::Error::other("injected fsync failure"))
        }
        fn sync_all(&mut self) -> std::io::Result<()> {
            Err(std::io::Error::other("injected fsync failure"))
        }
        fn set_len(&mut self, _len: u64) -> std::io::Result<()> {
            Ok(())
        }
        fn try_clone(&self) -> std::io::Result<Box<dyn FsFile>> {
            Ok(Box::new(FailingFile))
        }
    }

    #[test]
    fn sticky_flusher_error_surfaces_at_append_deferred() {
        let root = temp_root("sticky-enqueue");
        let session = Session::odyssey("jbb");
        let mut ws = Workspace::create(&root, &session).expect("creates");
        // Inject before enabling: the flusher clones this handle.
        ws.set_journal_for_tests(Box::new(FailingFile));
        ws.enable_group_commit(GroupCommitPolicy {
            max_batch: 4,
            max_delay: Duration::from_micros(100),
        })
        .expect("enables");
        // The flusher hits the failure on its first flush; soon after,
        // append_deferred itself must return the sticky error rather
        // than queuing doomed work until sync/close.
        let mut surfaced = false;
        for n in 0..1000 {
            match ws.append_deferred(&seed_op(n)) {
                Ok(_) => std::thread::sleep(Duration::from_millis(1)),
                Err(e) => {
                    assert!(
                        e.to_string().contains("injected fsync failure"),
                        "unexpected error: {e}"
                    );
                    surfaced = true;
                    break;
                }
            }
        }
        assert!(surfaced, "the flusher failure never reached enqueue");
        // Latched: the very next enqueue fails without touching the
        // group state, and close surfaces it too.
        let err = ws.append_deferred(&seed_op(0)).expect_err("still sticky");
        assert!(err.to_string().contains("injected fsync failure"));
        let err = ws.close().expect_err("close surfaces the poison");
        assert!(err.to_string().contains("injected fsync failure"));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn group_commit_sync_with_nothing_pending_returns_immediately() {
        let root = temp_root("group-empty");
        let session = Session::odyssey("jbb");
        let mut ws = Workspace::create(&root, &session).expect("creates");
        ws.sync().expect("no-op without group commit");
        ws.enable_group_commit(GroupCommitPolicy::default())
            .expect("enables");
        ws.sync().expect("no-op with an empty queue");
        ws.disable_group_commit().expect("stops");
        assert!(!ws.group_commit_enabled());
        fs::remove_dir_all(&root).ok();
    }
}
