//! The four catalogs of the Hercules task window (§4.1): "the designer
//! may select a predefined flow from the flow-catalog, a design entity
//! type from the entity-catalog, a tool from the tool-catalog, or a
//! piece of data from the data-catalog."

use hercules_history::{HistoryDb, InstanceId};
use hercules_schema::{EntityTypeId, TaskSchema};

/// One entity-catalog row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityEntry {
    /// Entity id.
    pub id: EntityTypeId,
    /// Entity name.
    pub name: String,
    /// `true` for tools.
    pub is_tool: bool,
    /// `true` for abstract entities (must be specialized).
    pub is_abstract: bool,
    /// Free-form description from the schema.
    pub description: String,
}

/// Lists the entity catalog: every declared entity type, in declaration
/// order.
pub fn entity_catalog(schema: &TaskSchema) -> Vec<EntityEntry> {
    schema
        .entities()
        .map(|e| EntityEntry {
            id: e.id(),
            name: e.name().to_owned(),
            is_tool: e.kind().is_tool(),
            is_abstract: schema.is_abstract(e.id()),
            description: e.description().to_owned(),
        })
        .collect()
}

/// Lists the tool catalog: tool entities only.
pub fn tool_catalog(schema: &TaskSchema) -> Vec<EntityEntry> {
    entity_catalog(schema)
        .into_iter()
        .filter(|e| e.is_tool)
        .collect()
}

/// One data-catalog row: an instance with its display name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataEntry {
    /// Instance id.
    pub instance: InstanceId,
    /// Entity name.
    pub entity: String,
    /// Annotation name (or the id when unnamed).
    pub name: String,
    /// Creating user.
    pub user: String,
}

/// Lists the data catalog: every instance in the history, newest first.
pub fn data_catalog(db: &HistoryDb) -> Vec<DataEntry> {
    let mut out: Vec<DataEntry> = db
        .instances()
        .map(|i| DataEntry {
            instance: i.id(),
            entity: db.schema().entity(i.entity()).name().to_owned(),
            name: if i.meta().name.is_empty() {
                i.id().to_string()
            } else {
                i.meta().name.clone()
            },
            user: i.meta().user.clone(),
        })
        .collect();
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;

    #[test]
    fn entity_catalog_lists_everything() {
        let session = Session::odyssey("t");
        let cat = entity_catalog(session.schema());
        assert_eq!(cat.len(), session.schema().len());
        let netlist = cat.iter().find(|e| e.name == "Netlist").expect("listed");
        assert!(netlist.is_abstract);
        assert!(!netlist.is_tool);
    }

    #[test]
    fn tool_catalog_is_tools_only() {
        let session = Session::odyssey("t");
        let tools = tool_catalog(session.schema());
        assert!(tools.iter().all(|e| e.is_tool));
        assert!(tools.iter().any(|e| e.name == "Simulator"));
        assert!(tools.iter().any(|e| e.name == "CompiledSimulator"));
    }

    #[test]
    fn data_catalog_lists_instances_newest_first() {
        let session = Session::odyssey("t");
        let data = data_catalog(session.db());
        assert_eq!(data.len(), session.db().len());
        assert!(data[0].instance > data[data.len() - 1].instance);
        assert!(data.iter().any(|d| d.name.contains("Full adder")));
    }
}
