//! Workspace and session auditing: the `herclint` passes that need the
//! session layer.
//!
//! The pure analyses live in `hercules-analyze` (schema, flow, hazard,
//! and history passes over the substrate crates). This module supplies
//! the passes that must see `hercules` itself:
//!
//! * **workspace lint** (`HL04xx`, [`lint_workspace_in`]) — journal/
//!   manifest invariant checks over a saved durable workspace
//!   (`crates/core/src/store.rs` layout), ending in a full session lint
//!   of the recovered state;
//! * **session lint** ([`lint_session`]) — schema, flow, hazard, and
//!   the `HL05xx` consistency passes over a live [`Session`];
//! * **conflict prediction** (`HL0505`, [`predict_conflicts`]) — given
//!   two saved [`SessionSpec`]s, report the entity families both
//!   sessions' flows touch with at least one writer: the files their
//!   owners will fight over if both sessions run.
//!
//! Everything here reaches time and disk only through the injected
//! [`Env`] capabilities, so audits are reproducible under the
//! deterministic simulation harness; [`lint_workspace`] is the
//! real-environment convenience wrapper.

use std::path::Path;

use hercules_analyze::runner::{lint_flow_timed, lint_history_timed, lint_schema_timed, Clock};
use hercules_analyze::{
    lint_flow, lint_history, lint_schema, Diagnostic, Diagnostics, PassTiming, Severity, Span,
};
use hercules_exec::EncapsulationRegistry;
use hercules_flow::FlowEffects;
use hercules_schema::EntityTypeId;
use hercules_sim::Env;
use serde::Deserialize;

use crate::store::scan_frames;
use crate::{JournalOp, Session, SessionSpec};

/// Lints a live session: its schema, its active flow (if any), and the
/// design history's `HL05xx` consistency findings (staleness, retrace
/// cones, under-keyed derivations, cache-ineligible tools).
pub fn lint_session(session: &Session, out: &mut Diagnostics) {
    lint_schema(session.schema(), out);
    if let Ok(flow) = session.flow() {
        lint_flow(flow, out);
    }
    let _ = lint_history(session.db(), out);
}

/// [`lint_session`] with per-pass wall times, measured by the injected
/// `clock` (a monotonic nanosecond source).
pub fn lint_session_timed(
    session: &Session,
    out: &mut Diagnostics,
    clock: Clock<'_>,
) -> Vec<PassTiming> {
    let mut timings = lint_schema_timed(session.schema(), out, clock);
    if let Ok(flow) = session.flow() {
        timings.extend(lint_flow_timed(flow, out, clock));
    }
    timings.extend(lint_history_timed(session.db(), out, clock));
    timings
}

// ---------------------------------------------------------------------
// HL0505: cross-session conflict prediction.
// ---------------------------------------------------------------------

/// Predicts write conflicts between two saved sessions (`HL0505`).
///
/// Each session's active flow is summarized by [`FlowEffects`] —
/// which entity families it will produce and which it reads — and the
/// overlaps with at least one writer are reported: write/write (both
/// sessions supersede versions in the family; commit order decides
/// whose is "latest") and write/read (the reader binds a version the
/// writer is about to supersede). Sessions without an active flow
/// contribute nothing.
pub fn predict_conflicts(a: &SessionSpec, b: &SessionSpec, out: &mut Diagnostics) {
    let Some(ea) = session_effects(a, out) else {
        return;
    };
    let Some(eb) = session_effects(b, out) else {
        return;
    };
    // Write/write: both flows produce in the family.
    for &f in ea.writes.intersection(&eb.writes) {
        out.push(Diagnostic::new(
            "HL0505",
            Severity::Warn,
            Span::entity(&ea.names[&f]),
            format!(
                "sessions `{}` and `{}` both plan to produce `{}` instances; \
                 whichever commits second supersedes the other's version",
                ea.user, eb.user, ea.names[&f]
            ),
        ));
    }
    // Write/read: one side produces a family the other binds from the
    // history. Must-reads are certain conflicts; declared-but-unexpanded
    // may-reads are reported with the weaker wording.
    for (writer, reader) in [(&ea, &eb), (&eb, &ea)] {
        for &f in writer.writes.intersection(&reader.must_read) {
            if ea.writes.contains(&f) && eb.writes.contains(&f) {
                continue; // already reported as write/write
            }
            out.push(Diagnostic::new(
                "HL0505",
                Severity::Warn,
                Span::entity(&writer.names[&f]),
                format!(
                    "session `{}` plans to produce `{}` while session `{}` reads it; \
                     the read binds a version about to be superseded",
                    writer.user, writer.names[&f], reader.user
                ),
            ));
        }
        for &f in writer.writes.intersection(&reader.may_read) {
            if ea.writes.contains(&f) && eb.writes.contains(&f) {
                continue;
            }
            out.push(Diagnostic::new(
                "HL0505",
                Severity::Info,
                Span::entity(&writer.names[&f]),
                format!(
                    "session `{}` plans to produce `{}`, which session `{}`'s flow \
                     declares as a possible input; expanding that input would read a \
                     version about to be superseded",
                    writer.user, writer.names[&f], reader.user
                ),
            ));
        }
    }
}

/// One session's effect summary, canonicalized to family roots.
struct SessionEffects {
    user: String,
    writes: std::collections::BTreeSet<EntityTypeId>,
    must_read: std::collections::BTreeSet<EntityTypeId>,
    may_read: std::collections::BTreeSet<EntityTypeId>,
    names: std::collections::BTreeMap<EntityTypeId, String>,
}

fn session_effects(spec: &SessionSpec, out: &mut Diagnostics) -> Option<SessionEffects> {
    let session = match spec.restore_with(|_| EncapsulationRegistry::new()) {
        Ok(session) => session,
        Err(e) => {
            out.push(Diagnostic::new(
                "HL0404",
                Severity::Error,
                Span::target(),
                format!(
                    "session of `{}` does not restore from its spec: {e}",
                    spec.user
                ),
            ));
            return None;
        }
    };
    let flow = session.flow().ok()?;
    let schema = session.schema();
    let effects = FlowEffects::of(flow);
    let writes = FlowEffects::families(schema, &effects.writes);
    let must_read = FlowEffects::families(schema, &effects.must_read);
    let may_read: std::collections::BTreeSet<EntityTypeId> =
        FlowEffects::families(schema, &effects.may_read)
            .into_iter()
            .filter(|f| !writes.contains(f) && !must_read.contains(f))
            .collect();
    let names = writes
        .iter()
        .chain(&must_read)
        .chain(&may_read)
        .map(|&f| (f, schema.entity(f).name().to_owned()))
        .collect();
    Some(SessionEffects {
        user: spec.user.clone(),
        writes,
        must_read,
        may_read,
        names,
    })
}

// ---------------------------------------------------------------------
// HL04xx: durable-workspace invariants.
// ---------------------------------------------------------------------

/// Mirror of the store's private manifest document. The store owns the
/// write path; the linter only needs the read shape, so it keeps its
/// own deserializer rather than widening the store's API.
#[derive(Debug, Deserialize)]
struct ManifestDoc {
    generation: u64,
    checkpoint: String,
    journal: String,
    #[serde(default)]
    segments: Vec<String>,
    #[serde(default)]
    fencing_token: u64,
}

impl ManifestDoc {
    /// The segment chain, oldest first. Pre-segment manifests name
    /// only `journal`; treat that as a one-segment chain.
    fn effective_segments(&self) -> Vec<String> {
        if self.segments.is_empty() {
            vec![self.journal.clone()]
        } else {
            self.segments.clone()
        }
    }
}

/// Mirror of the store's lease lock file.
#[derive(Debug, Deserialize)]
struct LeaseDoc {
    owner: String,
    expires_unix_ms: u64,
    token: u64,
}

/// Lints a durable workspace directory in the real environment.
pub fn lint_workspace(root: &Path, out: &mut Diagnostics) {
    lint_workspace_in(root, &Env::real(), out);
}

/// Lints a durable workspace directory through the injected
/// environment. Each invariant violation is one diagnostic; once the
/// checkpoint restores and the journal replays cleanly, the recovered
/// session is linted like a live one (schema, flow, hazard, and
/// consistency passes). The linter never mutates the workspace:
/// recovery *truncates* a torn journal tail and *quarantines* damaged
/// segments, the linter merely reports them.
pub fn lint_workspace_in(root: &Path, env: &Env, out: &mut Diagnostics) {
    let text = match read_utf8(env, &root.join("MANIFEST")) {
        Ok(text) => text,
        Err(e) => {
            out.push(Diagnostic::new(
                "HL0401",
                Severity::Error,
                Span::file("MANIFEST"),
                format!("workspace has no readable MANIFEST: {e}"),
            ));
            return;
        }
    };
    let manifest: ManifestDoc = match serde_json::from_str(&text) {
        Ok(m) => m,
        Err(e) => {
            out.push(Diagnostic::new(
                "HL0402",
                Severity::Error,
                Span::file("MANIFEST"),
                format!("MANIFEST is not a valid manifest document: {e}"),
            ));
            return;
        }
    };

    orphan_generations(root, env, &manifest, out);
    segment_chain(&manifest, out);
    quarantine_files(root, env, out);
    lease_state(root, env, &manifest, out);

    let session = restore_checkpoint(root, env, &manifest, out);
    let replayed = check_journal(root, env, &manifest, session, out);
    if let Some(session) = replayed {
        lint_session(&session, out);
    }
}

fn read_utf8(env: &Env, path: &Path) -> std::io::Result<String> {
    let bytes = env.fs.read(path)?;
    String::from_utf8(bytes)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// File names directly under `root`, sorted.
fn dir_names(root: &Path, env: &Env) -> Vec<String> {
    let Ok(paths) = env.fs.list_dir(root) else {
        return Vec::new();
    };
    paths
        .iter()
        .filter_map(|p| p.file_name().and_then(|n| n.to_str()).map(str::to_owned))
        .collect()
}

/// HL0403/HL0404: the checkpoint named by MANIFEST must exist, parse,
/// and restore. Restoration uses an empty encapsulation registry —
/// journal replay is extensional (recorded instances and reports, no
/// tool execution), so no real tool bindings are needed.
fn restore_checkpoint(
    root: &Path,
    env: &Env,
    manifest: &ManifestDoc,
    out: &mut Diagnostics,
) -> Option<Session> {
    let text = match read_utf8(env, &root.join(&manifest.checkpoint)) {
        Ok(text) => text,
        Err(e) => {
            out.push(Diagnostic::new(
                "HL0403",
                Severity::Error,
                Span::file(&manifest.checkpoint),
                format!(
                    "checkpoint `{}` named by MANIFEST (generation {}) is unreadable: {e}",
                    manifest.checkpoint, manifest.generation
                ),
            ));
            return None;
        }
    };
    let spec = match SessionSpec::from_json(&text) {
        Ok(spec) => spec,
        Err(e) => {
            out.push(Diagnostic::new(
                "HL0404",
                Severity::Error,
                Span::file(&manifest.checkpoint),
                format!("checkpoint does not parse as a session: {e}"),
            ));
            return None;
        }
    };
    match spec.restore_with(|_| EncapsulationRegistry::new()) {
        Ok(session) => Some(session),
        Err(e) => {
            out.push(Diagnostic::new(
                "HL0404",
                Severity::Error,
                Span::file(&manifest.checkpoint),
                format!("checkpoint does not restore to a session: {e}"),
            ));
            None
        }
    }
}

/// HL0405–HL0408: every segment of the journal chain must exist; a
/// tail may be torn (warn — recovery truncates or quarantines it);
/// every checksummed frame must parse as a [`JournalOp`]; every parsed
/// op must replay against the checkpoint. Returns the fully replayed
/// session when everything is clean enough to keep linting.
fn check_journal(
    root: &Path,
    env: &Env,
    manifest: &ManifestDoc,
    session: Option<Session>,
    out: &mut Diagnostics,
) -> Option<Session> {
    let segments = manifest.effective_segments();
    let mut session = session;
    let mut replay_ok = session.is_some();
    let mut frame_base = 0usize;
    for (si, segment) in segments.iter().enumerate() {
        let last = si + 1 == segments.len();
        let buf = match env.fs.read(&root.join(segment)) {
            Ok(buf) => buf,
            Err(e) => {
                out.push(Diagnostic::new(
                    "HL0405",
                    Severity::Error,
                    Span::file(segment),
                    format!(
                        "journal segment `{segment}` named by MANIFEST (generation {}) \
                         is unreadable: {e}",
                        manifest.generation
                    ),
                ));
                return session;
            }
        };
        let scan = scan_frames(&buf);
        if scan.trailing > 0 {
            let consequence = if last {
                "recovery will truncate it"
            } else {
                "recovery will quarantine the damage and every later segment"
            };
            out.push(Diagnostic::new(
                "HL0406",
                Severity::Warn,
                Span::file(segment),
                format!(
                    "journal segment ends in a torn or corrupt tail of {} byte(s) after \
                     {} valid frame(s); {consequence}",
                    scan.trailing,
                    scan.payloads.len()
                ),
            ));
        }
        for (i, payload) in scan.payloads.iter().enumerate() {
            let frame = frame_base + i;
            let op: JournalOp = match serde_json::from_slice(payload) {
                Ok(op) => op,
                Err(e) => {
                    out.push(Diagnostic::new(
                        "HL0407",
                        Severity::Error,
                        Span::frame(frame),
                        format!("checksummed journal frame does not parse as an operation: {e}"),
                    ));
                    replay_ok = false;
                    continue;
                }
            };
            if !replay_ok {
                continue; // one failure poisons everything downstream
            }
            if let Some(s) = session.as_mut() {
                if let Err(e) = op.replay(s) {
                    out.push(Diagnostic::new(
                        "HL0408",
                        Severity::Error,
                        Span::frame(frame),
                        format!("journaled operation does not replay against the checkpoint: {e}"),
                    ));
                    replay_ok = false;
                }
            }
        }
        frame_base += scan.payloads.len();
    }
    if replay_ok {
        session
    } else {
        None
    }
}

/// Parses `journal-<gen>.log` / `journal-<gen>.<seq>.log` into
/// `(generation, sequence)`.
fn parse_segment_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("journal-")?.strip_suffix(".log")?;
    match rest.split_once('.') {
        None => rest.parse().ok().map(|generation| (generation, 0)),
        Some((generation, seq)) => Some((generation.parse().ok()?, seq.parse().ok()?)),
    }
}

/// HL0410: the MANIFEST segment chain must be well-formed — every name
/// parseable, every segment in the manifest's generation, sequence
/// numbers exactly 0..n in order, and the `journal` field naming the
/// last (active) segment. A gap or disorder means recovery would
/// replay operations out of order or skip committed work.
fn segment_chain(manifest: &ManifestDoc, out: &mut Diagnostics) {
    let segments = manifest.effective_segments();
    for (i, name) in segments.iter().enumerate() {
        let Some((generation, seq)) = parse_segment_name(name) else {
            out.push(Diagnostic::new(
                "HL0410",
                Severity::Error,
                Span::file(name),
                format!(
                    "segment `{name}` does not match `journal-<gen>[.<seq>].log`; \
                     the chain cannot be ordered"
                ),
            ));
            continue;
        };
        if generation != manifest.generation {
            out.push(Diagnostic::new(
                "HL0410",
                Severity::Error,
                Span::file(name),
                format!(
                    "segment `{name}` belongs to generation {generation} but MANIFEST \
                     is at generation {}",
                    manifest.generation
                ),
            ));
        }
        if seq != i as u64 {
            out.push(Diagnostic::new(
                "HL0410",
                Severity::Error,
                Span::file(name),
                format!(
                    "segment chain position {i} holds sequence {seq}: the chain has a \
                     gap, duplicate, or misordered segment"
                ),
            ));
        }
    }
    if let Some(active) = segments.last() {
        if *active != manifest.journal {
            out.push(Diagnostic::new(
                "HL0410",
                Severity::Error,
                Span::file("MANIFEST"),
                format!(
                    "MANIFEST names `{}` as the active journal but the segment chain \
                     ends at `{active}`",
                    manifest.journal
                ),
            ));
        }
    }
}

/// HL0411: quarantine files (`*.quarantined-<k>`) left behind by scrub
/// or recovery. Each one holds data the store could not replay —
/// worth a human look before archiving or deleting.
fn quarantine_files(root: &Path, env: &Env, out: &mut Diagnostics) {
    for name in dir_names(root, env)
        .into_iter()
        .filter(|name| name.contains(".quarantined-"))
    {
        out.push(Diagnostic::new(
            "HL0411",
            Severity::Info,
            Span::file(&name),
            format!(
                "`{name}` is quarantined journal data a past recovery or scrub set \
                 aside; review it before archiving or deleting"
            ),
        ));
    }
}

/// HL0412: the LEASE lock file, when present, should be live and
/// should match the fencing token MANIFEST records. An expired lease
/// means the writer died (or forgot to close); a token behind the
/// manifest's means the lease was superseded by a takeover.
fn lease_state(root: &Path, env: &Env, manifest: &ManifestDoc, out: &mut Diagnostics) {
    let text = match read_utf8(env, &root.join("LEASE")) {
        Ok(text) => text,
        Err(_) => return, // no lease: the workspace is simply closed
    };
    let lease: LeaseDoc = match serde_json::from_str(&text) {
        Ok(lease) => lease,
        Err(e) => {
            out.push(Diagnostic::new(
                "HL0412",
                Severity::Warn,
                Span::file("LEASE"),
                format!("LEASE does not parse as a lease document: {e}"),
            ));
            return;
        }
    };
    let now_ms = env.clock.wall_unix_ms();
    if lease.token < manifest.fencing_token {
        out.push(Diagnostic::new(
            "HL0412",
            Severity::Warn,
            Span::file("LEASE"),
            format!(
                "lease held by `{}` carries fencing token {} but MANIFEST is at {}: \
                 the writer was deposed by a takeover",
                lease.owner, lease.token, manifest.fencing_token
            ),
        ));
    } else if lease.expires_unix_ms < now_ms {
        out.push(Diagnostic::new(
            "HL0412",
            Severity::Warn,
            Span::file("LEASE"),
            format!(
                "lease held by `{}` expired at unix-ms {} (now {now_ms}): the writer \
                 died or forgot to close; the next open will take over",
                lease.owner, lease.expires_unix_ms
            ),
        ));
    }
}

/// HL0409: generation files present on disk but not named by MANIFEST.
/// Harmless (checkpointing leaves the previous generation behind until
/// the next rotation) but worth knowing about when auditing disk use.
fn orphan_generations(root: &Path, env: &Env, manifest: &ManifestDoc, out: &mut Diagnostics) {
    let segments = manifest.effective_segments();
    for name in dir_names(root, env).into_iter().filter(|name| {
        let generation_file = (name.starts_with("checkpoint-") && name.ends_with(".json"))
            || (name.starts_with("journal-") && name.ends_with(".log"));
        generation_file
            && *name != manifest.checkpoint
            && *name != manifest.journal
            && !segments.contains(name)
    }) {
        out.push(Diagnostic::new(
            "HL0409",
            Severity::Info,
            Span::file(&name),
            format!(
                "`{name}` belongs to a generation MANIFEST does not reference \
                 (current generation is {})",
                manifest.generation
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;

    /// Builds a saved session whose flow produces a Performance (and
    /// everything under it) — a heavy writer.
    fn writer_spec(user: &str) -> SessionSpec {
        let mut session = Session::odyssey(user);
        let perf = session.start_from_goal("Performance").expect("seed");
        session.expand(perf).expect("expand");
        SessionSpec::from_session(&session)
    }

    /// Builds a saved session that only reads: a flow seeded at a leaf
    /// with no expansion.
    fn reader_spec(user: &str) -> SessionSpec {
        let mut session = Session::odyssey(user);
        let perf = session.start_from_goal("Performance").expect("seed");
        let created = session.expand(perf).expect("expand");
        // Expand the circuit too so Netlist becomes a consumed leaf.
        let _ = session.expand(created[1]);
        SessionSpec::from_session(&session)
    }

    #[test]
    fn two_writers_conflict() {
        let a = writer_spec("alice");
        let b = writer_spec("bob");
        let mut out = Diagnostics::new();
        predict_conflicts(&a, &b, &mut out);
        assert!(
            out.iter()
                .any(|d| d.code == "HL0505" && d.message.contains("both plan to produce")),
            "got:\n{}",
            out.render_text()
        );
        // Deterministic: the same pair reports the same findings.
        let mut again = Diagnostics::new();
        predict_conflicts(&a, &b, &mut again);
        assert_eq!(out.render_text(), again.render_text());
    }

    #[test]
    fn disjoint_sessions_are_clean() {
        let a = writer_spec("alice");
        // A session with no flow at all cannot conflict.
        let empty = SessionSpec::from_session(&Session::odyssey("carol"));
        let mut out = Diagnostics::new();
        predict_conflicts(&a, &empty, &mut out);
        assert!(out.is_empty(), "got:\n{}", out.render_text());
    }

    #[test]
    fn writer_vs_reader_names_both_users() {
        let a = writer_spec("alice");
        let b = reader_spec("bob");
        let mut out = Diagnostics::new();
        predict_conflicts(&a, &b, &mut out);
        let hit = out
            .iter()
            .find(|d| d.code == "HL0505")
            .expect("a conflict finding");
        assert!(
            hit.message.contains("alice") && hit.message.contains("bob"),
            "got: {}",
            hit.message
        );
    }
}
