//! A Hercules design session: one designer, one schema, one history
//! database, one flow under construction.

use std::sync::Arc;

use hercules_exec::{Binding, EncapsulationRegistry, ExecReport, Executor, TaskAction};
use hercules_flow::{Expansion, FlowCatalog, FlowSpec, NodeId, TaskGraph};
use hercules_history::{DerivationTree, HistoryDb, InstanceId};
use hercules_obs::{
    Collector, Metrics, MultiCollector, RealTime, RingBuffer, TimeSource, TraceEvent, Tracer,
};
use hercules_schema::{EntityTypeId, TaskSchema};
use hercules_sim::{Clock, Interleaver};
use serde::{Deserialize, Serialize};

use crate::error::HerculesError;
use crate::persist::FlowOp;

/// One entry in the session's execution event log: what an execution
/// (run, subflow run, retrace, or resume) did, including failures and
/// skips — the audit trail of the fault-tolerant engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecEvent {
    /// What triggered the execution: `run`, `run-subflow`, `retrace`,
    /// or `resume`.
    pub operation: String,
    /// Subtasks the execution touched (including failed and skipped).
    pub tasks: usize,
    /// Tool invocations that ran to completion.
    pub runs: usize,
    /// Subtasks served entirely from cache.
    pub cache_hits: usize,
    /// Subtasks that failed permanently.
    pub failed: usize,
    /// Subtasks skipped because something upstream failed.
    pub skipped: usize,
    /// Rendered error of each permanently failed subtask, in execution
    /// order.
    pub failures: Vec<String>,
    /// The error that aborted the execution, when it returned `Err`.
    pub error: Option<String>,
    /// Wall-clock milliseconds since the Unix epoch when the event was
    /// recorded. Defaults to 0 when loading journals written before
    /// this field existed.
    #[serde(default)]
    pub wall_unix_ms: u64,
    /// Monotonic nanoseconds since the session tracer's epoch —
    /// consistent with the trace's span timestamps. 0 for pre-existing
    /// journals or sessions without tracing.
    #[serde(default)]
    pub mono_ns: u64,
}

/// Both clocks for an event stamp: the tracer's pair when tracing is
/// on (so event and span timestamps line up exactly), the session
/// clock's wall time otherwise — under simulation that is the virtual
/// clock, so event stamps are deterministic per seed.
fn stamp_clocks(tracer: &Tracer, clock: &Clock) -> (u64, u64) {
    if tracer.is_enabled() {
        (tracer.now_ns(), tracer.wall_unix_ms())
    } else {
        (0, clock.wall_unix_ms())
    }
}

impl ExecEvent {
    fn from_report(
        operation: &str,
        report: &ExecReport,
        tracer: &Tracer,
        clock: &Clock,
    ) -> ExecEvent {
        let (mono_ns, wall_unix_ms) = stamp_clocks(tracer, clock);
        ExecEvent {
            operation: operation.to_owned(),
            tasks: report.tasks.len(),
            runs: report.runs(),
            cache_hits: report.cache_hits(),
            failed: report.failed(),
            skipped: report.skipped(),
            failures: report
                .tasks
                .iter()
                .filter_map(|t| match &t.action {
                    TaskAction::Failed { error } => Some(error.to_string()),
                    _ => None,
                })
                .collect(),
            error: None,
            wall_unix_ms,
            mono_ns,
        }
    }

    fn aborted(
        operation: &str,
        error: &HerculesError,
        tracer: &Tracer,
        clock: &Clock,
    ) -> ExecEvent {
        let (mono_ns, wall_unix_ms) = stamp_clocks(tracer, clock);
        ExecEvent {
            operation: operation.to_owned(),
            tasks: 0,
            runs: 0,
            cache_hits: 0,
            failed: 0,
            skipped: 0,
            failures: Vec::new(),
            error: Some(error.to_string()),
            wall_unix_ms,
            mono_ns,
        }
    }

    /// Returns `true` when the execution finished without failures,
    /// skips, or an abort.
    pub fn is_clean(&self) -> bool {
        self.failed == 0 && self.skipped == 0 && self.error.is_none()
    }
}

/// The four §3.4 design approaches: "Any one of four different
/// approaches may be selected."
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Approach {
    /// Goal-based: "designers identify a task by first selecting the
    /// goal entity of the task from the task schema."
    Goal(String),
    /// Tool-based: start from the tool entity to work with.
    Tool(String),
    /// Data-based: start from an existing piece of data.
    Data(InstanceId),
    /// Plan-based: choose a flow from the catalog.
    Plan(String),
}

/// A design session of the Hercules task manager (§4).
///
/// # Examples
///
/// ```
/// use hercules::Session;
///
/// # fn main() -> Result<(), hercules::HerculesError> {
/// let mut session = Session::odyssey("sutton");
/// // Goal-based approach: I want a performance report.
/// let perf = session.start_from_goal("Performance")?;
/// session.expand(perf)?;
/// assert_eq!(session.flow()?.leaves().len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    schema: Arc<TaskSchema>,
    db: HistoryDb,
    executor: Executor,
    catalog: FlowCatalog,
    flow: Option<TaskGraph>,
    /// Flow-construction tape: the operations that built `flow`, in
    /// order. [`FlowSpec`] compacts tombstones away, so the flow under
    /// construction is persisted as this tape instead — replaying it
    /// reproduces the exact node ids (including tombstones) that the
    /// binding and journal refer to.
    tape: Vec<FlowOp>,
    binding: Binding,
    user: String,
    last_report: Option<ExecReport>,
    events: Vec<ExecEvent>,
    /// In-memory trace ring the session tracer feeds; the REPL's
    /// `trace`/`profile` commands read snapshots of it.
    trace_ring: Arc<RingBuffer>,
    tracer: Tracer,
    metrics: Metrics,
    /// Time source for event stamps and (via the executor options)
    /// retry backoff sleeps; [`Clock::real`] unless
    /// [`Session::set_sim`] installed a simulated one.
    clock: Clock,
}

/// Events the session's trace ring retains — enough for several full
/// executions of a realistic flow before old spans age out.
const TRACE_RING_CAPACITY: usize = 8192;

impl Session {
    /// Creates a session over an arbitrary schema and tool registry,
    /// with an empty history database.
    ///
    /// Tracing and metrics are on by default, feeding an in-memory ring
    /// (see [`Session::trace_events`]); use
    /// [`Session::disable_observability`] to run with zero-cost
    /// disabled handles instead.
    pub fn new(schema: Arc<TaskSchema>, registry: EncapsulationRegistry, user: &str) -> Session {
        let db = HistoryDb::new(schema.clone());
        let trace_ring = Arc::new(RingBuffer::new(TRACE_RING_CAPACITY));
        let tracer = Tracer::new(trace_ring.clone());
        let metrics = Metrics::new();
        let mut executor = Executor::new(registry);
        executor.options_mut().user = user.to_owned();
        executor.options_mut().tracer = tracer.clone();
        executor.options_mut().metrics = metrics.clone();
        Session {
            schema,
            db,
            executor,
            catalog: FlowCatalog::new(),
            flow: None,
            tape: Vec::new(),
            binding: Binding::new(),
            user: user.to_owned(),
            last_report: None,
            events: Vec::new(),
            trace_ring,
            tracer,
            metrics,
            clock: Clock::real(),
        }
    }

    /// Runs this session against a simulated environment: event stamps
    /// use the virtual `clock`, retry backoff sleeps advance it instead
    /// of blocking, scheduler picks among ready tasks are delegated to
    /// `interleave`, and retry jitter derives from `jitter_seed` — so
    /// one seed fixes the session's entire schedule.
    pub fn set_sim(&mut self, clock: Clock, interleave: Interleaver, jitter_seed: u64) {
        self.clock = clock.clone();
        // Re-stamp the tracer from the virtual clock too; otherwise
        // trace timestamps (and the exec-event stamps derived from
        // them) leak real time into replays.
        if self.tracer.is_enabled() {
            self.tracer = Tracer::with_time_source(
                self.trace_ring.clone(),
                Arc::new(hercules_sim::ClockTimeSource::new(clock.clone())),
            );
        }
        let options = self.executor.options_mut();
        options.clock = clock;
        options.interleave = interleave;
        options.jitter_seed = jitter_seed;
        options.tracer = self.tracer.clone();
    }

    /// Tees every trace event into `sink` alongside the in-memory
    /// ring (which keeps serving the REPL `trace`/`profile`
    /// commands). The UI uses this to feed the workspace flight
    /// recorder; calling it again replaces the previous sink.
    ///
    /// Event timestamps keep their current source — the session's
    /// simulated clock when [`Session::set_sim`] installed one, real
    /// time otherwise — so the tee never perturbs trace stamps.
    pub fn attach_trace_sink(&mut self, sink: Arc<dyn Collector>) {
        if !self.tracer.is_enabled() {
            return;
        }
        let fanout: Arc<dyn Collector> = Arc::new(MultiCollector::new(vec![
            self.trace_ring.clone() as Arc<dyn Collector>,
            sink,
        ]));
        let time: Arc<dyn TimeSource> = if self.clock.is_sim() {
            Arc::new(hercules_sim::ClockTimeSource::new(self.clock.clone()))
        } else {
            Arc::new(RealTime::new())
        };
        self.tracer = Tracer::with_time_source(fanout, time);
        self.executor.options_mut().tracer = self.tracer.clone();
    }

    /// Creates the standard demonstration session: the Odyssey schema,
    /// the simulated EDA tools, and a seeded standard library (see
    /// [`setup`](crate::setup)).
    pub fn odyssey(user: &str) -> Session {
        crate::setup::odyssey_session(user)
    }

    /// Returns the schema.
    pub fn schema(&self) -> &Arc<TaskSchema> {
        &self.schema
    }

    /// Returns the history database.
    pub fn db(&self) -> &HistoryDb {
        &self.db
    }

    /// Returns mutable access to the history database (for seeding and
    /// annotation).
    pub fn db_mut(&mut self) -> &mut HistoryDb {
        &mut self.db
    }

    /// Returns the user-id of this session.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// Returns the flow catalog.
    pub fn catalog(&self) -> &FlowCatalog {
        &self.catalog
    }

    /// Returns mutable access to the flow catalog.
    pub fn catalog_mut(&mut self) -> &mut FlowCatalog {
        &mut self.catalog
    }

    /// Returns the executor (to adjust options such as parallelism).
    pub fn executor_mut(&mut self) -> &mut Executor {
        &mut self.executor
    }

    /// Attaches a content-addressed result cache: every execution —
    /// `run`, `resume`, `run_subflow` — consults it ahead of tool
    /// dispatch and writes produced results back. Open the cache on a
    /// shared root to reuse results across sessions and workspaces
    /// (see [`hercules_cache::ContentCache::open`]).
    pub fn attach_content_cache(&mut self, cache: hercules_cache::ContentCache) {
        self.executor.options_mut().cache = Some(cache);
    }

    /// The attached content cache, if any.
    pub fn content_cache(&self) -> Option<&hercules_cache::ContentCache> {
        self.executor.options().cache.as_ref()
    }

    /// Returns the session's tracer (shared with the executor).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Returns the session's metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Snapshot of the buffered trace events, oldest first.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace_ring.snapshot()
    }

    /// Empties the trace ring (e.g. to isolate the next run's trace).
    pub fn clear_trace(&self) {
        self.trace_ring.clear();
    }

    /// Turns tracing and metrics off for this session: every
    /// instrumentation point in the executor collapses to a branch.
    /// Used by benchmarks to measure the no-observability baseline.
    pub fn disable_observability(&mut self) {
        self.tracer = Tracer::disabled();
        self.metrics = Metrics::disabled();
        self.executor.options_mut().tracer = Tracer::disabled();
        self.executor.options_mut().metrics = Metrics::disabled();
    }

    /// Returns the flow under construction.
    ///
    /// # Errors
    ///
    /// Returns [`HerculesError::NoActiveFlow`] before any `start_*`.
    pub fn flow(&self) -> Result<&TaskGraph, HerculesError> {
        self.flow.as_ref().ok_or(HerculesError::NoActiveFlow)
    }

    fn flow_mut(&mut self) -> Result<&mut TaskGraph, HerculesError> {
        self.flow.as_mut().ok_or(HerculesError::NoActiveFlow)
    }

    /// Installs an externally built flow (e.g. a recalled trace or a
    /// Fig. 8 fixture), clearing previous bindings.
    ///
    /// Persistence caveat: the construction tape records the installed
    /// flow via [`FlowSpec`], which compacts tombstones — a restored
    /// session renumbers any dead node slots the installed flow carried.
    /// Flows built through the session's own methods are unaffected.
    pub fn install_flow(&mut self, flow: TaskGraph) {
        self.tape = vec![FlowOp::Install {
            spec: FlowSpec::from_task_graph(&flow),
        }];
        self.flow = Some(flow);
        self.binding = Binding::new();
        self.last_report = None;
    }

    /// Returns the current binding.
    pub fn binding(&self) -> &Binding {
        &self.binding
    }

    /// Returns the last execution report, if any.
    pub fn last_report(&self) -> Option<&ExecReport> {
        self.last_report.as_ref()
    }

    /// Returns the execution event log: one entry per `run`,
    /// `run_subflow`, or `retrace` call, oldest first, including
    /// executions that failed or were aborted.
    pub fn events(&self) -> &[ExecEvent] {
        &self.events
    }

    /// Abandons the flow under construction (the `Clear` button of
    /// Fig. 9).
    pub fn clear_flow(&mut self) {
        self.flow = None;
        self.tape.clear();
        self.binding = Binding::new();
        self.last_report = None;
    }

    // ------------------------------------------------------------------
    // Persistence hooks (crate-internal; see `persist` and `store`).
    // ------------------------------------------------------------------

    /// The flow-construction tape since the last clear/install.
    pub(crate) fn flow_ops(&self) -> &[FlowOp] {
        &self.tape
    }

    /// Replaces the binding wholesale (extensional restore).
    pub(crate) fn set_binding(&mut self, binding: Binding) {
        self.binding = binding;
    }

    /// Replaces the event log wholesale.
    pub(crate) fn set_events(&mut self, events: Vec<ExecEvent>) {
        self.events = events;
    }

    /// Appends one replayed event.
    pub(crate) fn push_event(&mut self, event: ExecEvent) {
        self.events.push(event);
    }

    /// Replaces the last execution report (restored extensionally).
    pub(crate) fn set_last_report(&mut self, report: Option<ExecReport>) {
        self.last_report = report;
    }

    // ------------------------------------------------------------------
    // The four design approaches (§3.4).
    // ------------------------------------------------------------------

    /// Starts a flow using any of the four approaches; returns the seed
    /// node for goal/tool/data starts, or the flow's first output node
    /// for plan starts.
    ///
    /// # Errors
    ///
    /// Unknown names and ill-typed starts.
    pub fn start(&mut self, approach: Approach) -> Result<NodeId, HerculesError> {
        match approach {
            Approach::Goal(name) => self.start_from_goal(&name),
            Approach::Tool(name) => self.start_from_tool(&name),
            Approach::Data(instance) => self.start_from_data(instance),
            Approach::Plan(name) => self.start_from_plan(&name),
        }
    }

    /// Goal-based approach: seed the flow with the goal entity.
    ///
    /// # Errors
    ///
    /// Returns a schema error for unknown entity names.
    pub fn start_from_goal(&mut self, entity: &str) -> Result<NodeId, HerculesError> {
        let id = self.schema.require(entity)?;
        self.seed(id)
    }

    /// Tool-based approach: seed the flow with a tool entity.
    ///
    /// # Errors
    ///
    /// Returns a schema error for unknown tool names.
    pub fn start_from_tool(&mut self, tool: &str) -> Result<NodeId, HerculesError> {
        let id = self.schema.require(tool)?;
        self.seed(id)
    }

    /// Data-based approach: seed the flow with the entity of an
    /// existing instance, and bind the node to it immediately.
    ///
    /// # Errors
    ///
    /// Returns a history error for unknown instances.
    pub fn start_from_data(&mut self, instance: InstanceId) -> Result<NodeId, HerculesError> {
        let entity = self.db.instance(instance)?.entity();
        let node = self.seed(entity)?;
        self.binding.bind(node, instance);
        Ok(node)
    }

    /// Plan-based approach: instantiate a stored flow from the catalog.
    /// Returns its first output node.
    ///
    /// # Errors
    ///
    /// Returns a flow error for unknown catalog names.
    pub fn start_from_plan(&mut self, name: &str) -> Result<NodeId, HerculesError> {
        let flow = self.catalog.instantiate(name, self.schema.clone())?;
        let out = flow.outputs().first().copied();
        // Record the instantiated structure, not the name: the catalog
        // entry may be overwritten later, the tape must not change.
        self.install_flow(flow);
        out.ok_or(HerculesError::NoActiveFlow)
    }

    fn seed(&mut self, entity: EntityTypeId) -> Result<NodeId, HerculesError> {
        if self.flow.is_none() {
            self.flow = Some(TaskGraph::new(self.schema.clone()));
        }
        let node = self.flow_mut()?.seed(entity)?;
        self.tape.push(FlowOp::Seed {
            entity: self.schema.entity(entity).name().to_owned(),
        });
        Ok(node)
    }

    // ------------------------------------------------------------------
    // Flow construction (proxied to hercules-flow).
    // ------------------------------------------------------------------

    /// Expands a node (the `Expand` menu entry).
    ///
    /// # Errors
    ///
    /// See [`TaskGraph::expand`].
    pub fn expand(&mut self, node: NodeId) -> Result<Vec<NodeId>, HerculesError> {
        self.expand_with(node, &Expansion::new())
    }

    /// Expands a node with options (optional deps, reuse).
    ///
    /// # Errors
    ///
    /// See [`TaskGraph::expand_with`].
    pub fn expand_with(
        &mut self,
        node: NodeId,
        options: &Expansion,
    ) -> Result<Vec<NodeId>, HerculesError> {
        let created = self.flow_mut()?.expand_with(node, options)?;
        let name = |e: EntityTypeId| self.schema.entity(e).name().to_owned();
        self.tape.push(FlowOp::Expand {
            node: node.index(),
            optional: options.include_optional.iter().map(|&e| name(e)).collect(),
            reuse: options
                .reuse
                .iter()
                .map(|&(e, n)| (name(e), n.index()))
                .collect(),
            reuse_existing: options.reuse_existing,
        });
        Ok(created)
    }

    /// Expands downward towards a consumer entity.
    ///
    /// # Errors
    ///
    /// See [`TaskGraph::expand_down`].
    pub fn expand_down(
        &mut self,
        node: NodeId,
        consumer: &str,
    ) -> Result<(NodeId, Vec<NodeId>), HerculesError> {
        let entity = self.schema.require(consumer)?;
        let created = self
            .flow_mut()?
            .expand_down(node, entity, &Expansion::new())?;
        self.tape.push(FlowOp::ExpandDown {
            node: node.index(),
            consumer: consumer.to_owned(),
        });
        Ok(created)
    }

    /// Specializes an abstract node to a subtype.
    ///
    /// # Errors
    ///
    /// See [`TaskGraph::specialize`].
    pub fn specialize(&mut self, node: NodeId, subtype: &str) -> Result<(), HerculesError> {
        let entity = self.schema.require(subtype)?;
        self.flow_mut()?.specialize(node, entity)?;
        self.tape.push(FlowOp::Specialize {
            node: node.index(),
            subtype: subtype.to_owned(),
        });
        Ok(())
    }

    /// Unexpands a node (the `Unexpand` menu entry).
    ///
    /// # Errors
    ///
    /// See [`TaskGraph::unexpand`].
    pub fn unexpand(&mut self, node: NodeId) -> Result<Vec<NodeId>, HerculesError> {
        let removed = self.flow_mut()?.unexpand(node)?;
        self.tape.push(FlowOp::Unexpand { node: node.index() });
        Ok(removed)
    }

    /// Expands everything reachable from a node down to primary or
    /// abstract leaves.
    ///
    /// # Errors
    ///
    /// See [`TaskGraph::expand_all`].
    pub fn expand_all(&mut self, node: NodeId) -> Result<Vec<NodeId>, HerculesError> {
        let created = self.flow_mut()?.expand_all(node)?;
        self.tape.push(FlowOp::ExpandAll { node: node.index() });
        Ok(created)
    }

    // ------------------------------------------------------------------
    // Browsing, binding, running.
    // ------------------------------------------------------------------

    /// Lists the instances selectable for a node (its entity family),
    /// newest first — the browser of Fig. 9b without filters. Use
    /// [`BrowserQuery`](hercules_history::BrowserQuery) directly for
    /// filtered browsing.
    ///
    /// # Errors
    ///
    /// Returns flow errors for dead nodes.
    pub fn browse(&self, node: NodeId) -> Result<Vec<InstanceId>, HerculesError> {
        let entity = self.flow()?.entity_of(node)?;
        let mut out = self.db.instances_of_family(entity);
        out.reverse();
        Ok(out)
    }

    /// Selects an instance for a leaf node.
    pub fn select(&mut self, node: NodeId, instance: InstanceId) {
        self.binding.bind(node, instance);
    }

    /// Selects several instances for a leaf node (multi-select
    /// fan-out, §4.1).
    pub fn select_many(&mut self, node: NodeId, instances: &[InstanceId]) {
        self.binding.bind_many(node, instances);
    }

    /// Binds every unbound leaf to the newest instance of its family;
    /// returns leaves that stayed unbound.
    ///
    /// # Errors
    ///
    /// Returns [`HerculesError::NoActiveFlow`] with no flow.
    pub fn bind_latest(&mut self) -> Result<Vec<NodeId>, HerculesError> {
        let flow = self.flow.as_ref().ok_or(HerculesError::NoActiveFlow)?;
        Ok(self.binding.bind_latest(flow, &self.db))
    }

    /// Executes the flow; products are recorded in the history.
    ///
    /// # Errors
    ///
    /// See [`Executor::execute`].
    pub fn run(&mut self) -> Result<&ExecReport, HerculesError> {
        let flow = self.flow.as_ref().ok_or(HerculesError::NoActiveFlow)?;
        match self.executor.execute(flow, &self.binding, &mut self.db) {
            Ok(report) => {
                self.events.push(ExecEvent::from_report(
                    "run",
                    &report,
                    &self.tracer,
                    &self.clock,
                ));
                self.last_report = Some(report);
                Ok(self.last_report.as_ref().expect("just set"))
            }
            Err(e) => {
                let e: HerculesError = e.into();
                self.events
                    .push(ExecEvent::aborted("run", &e, &self.tracer, &self.clock));
                Err(e)
            }
        }
    }

    /// Resumes the last partially failed execution: re-runs only the
    /// subtasks that failed or were skipped, serving every already
    /// committed subtask from the design history as a cache hit. This
    /// is how a [`FailurePolicy::ContinueDisjoint`] run (or a restored
    /// session) is completed without repeating finished work.
    ///
    /// [`FailurePolicy::ContinueDisjoint`]:
    /// hercules_exec::FailurePolicy::ContinueDisjoint
    ///
    /// # Errors
    ///
    /// [`HerculesError::NothingToResume`] when there is no last report
    /// or the last execution completed; otherwise as [`Session::run`].
    pub fn resume(&mut self) -> Result<&ExecReport, HerculesError> {
        match self.last_report.as_ref() {
            None => {
                return Err(HerculesError::NothingToResume {
                    reason: "no execution to resume".into(),
                })
            }
            Some(report) if report.is_complete() => {
                return Err(HerculesError::NothingToResume {
                    reason: "last execution completed; nothing failed or was skipped".into(),
                })
            }
            Some(_) => {}
        }
        let flow = self.flow.as_ref().ok_or(HerculesError::NoActiveFlow)?;
        // Committed subtasks must come back as cache hits, whatever the
        // executor's normal caching preference is.
        let prev = self.executor.options().reuse_cached;
        self.executor.options_mut().reuse_cached = true;
        let result = self.executor.execute(flow, &self.binding, &mut self.db);
        self.executor.options_mut().reuse_cached = prev;
        match result {
            Ok(report) => {
                self.events.push(ExecEvent::from_report(
                    "resume",
                    &report,
                    &self.tracer,
                    &self.clock,
                ));
                self.last_report = Some(report);
                Ok(self.last_report.as_ref().expect("just set"))
            }
            Err(e) => {
                let e: HerculesError = e.into();
                self.events
                    .push(ExecEvent::aborted("resume", &e, &self.tracer, &self.clock));
                Err(e)
            }
        }
    }

    /// Executes only the sub-flow rooted at `node` ("a subflow may be
    /// run at any stage as long as its dependencies are satisfied
    /// independently of the remainder of the flow", §4.1).
    ///
    /// # Errors
    ///
    /// See [`Executor::execute`].
    pub fn run_subflow(&mut self, node: NodeId) -> Result<ExecReport, HerculesError> {
        let flow = self.flow.as_ref().ok_or(HerculesError::NoActiveFlow)?;
        let (sub, mapping) = flow.subflow(node)?;
        let mut sub_binding = Binding::new();
        for &(old, new) in &mapping {
            let bound = self.binding.get(old);
            if !bound.is_empty() {
                sub_binding.bind_many(new, bound);
            }
        }
        match self.executor.execute(&sub, &sub_binding, &mut self.db) {
            Ok(report) => {
                self.events.push(ExecEvent::from_report(
                    "run-subflow",
                    &report,
                    &self.tracer,
                    &self.clock,
                ));
                Ok(report)
            }
            Err(e) => {
                let e: HerculesError = e.into();
                self.events.push(ExecEvent::aborted(
                    "run-subflow",
                    &e,
                    &self.tracer,
                    &self.clock,
                ));
                Err(e)
            }
        }
    }

    /// Stores the current flow in the catalog for the plan-based
    /// approach.
    ///
    /// # Errors
    ///
    /// Returns [`HerculesError::NoActiveFlow`] with no flow.
    pub fn store_flow(&mut self, name: &str, description: &str) -> Result<(), HerculesError> {
        let flow = self.flow.as_ref().ok_or(HerculesError::NoActiveFlow)?;
        let user = self.user.clone();
        self.catalog.store(name, flow, description, &user);
        Ok(())
    }

    // ------------------------------------------------------------------
    // History services.
    // ------------------------------------------------------------------

    /// The `History` menu entry of Fig. 10: reveals the instances used
    /// to create `instance`, to the given depth (`None` = all).
    ///
    /// # Errors
    ///
    /// Returns history errors for unknown instances.
    pub fn history_of(
        &self,
        instance: InstanceId,
        depth: Option<usize>,
    ) -> Result<DerivationTree, HerculesError> {
        Ok(self.db.backward_chain(instance, depth)?)
    }

    /// Retraces the flow that produced `instance` against the newest
    /// input versions (design-consistency maintenance, §3.3).
    ///
    /// # Errors
    ///
    /// See [`hercules_exec::retrace`].
    pub fn retrace(
        &mut self,
        instance: InstanceId,
    ) -> Result<hercules_exec::RetraceReport, HerculesError> {
        match hercules_exec::retrace(&self.executor, &mut self.db, instance) {
            Ok(report) => {
                self.events.push(ExecEvent::from_report(
                    "retrace",
                    &report.report,
                    &self.tracer,
                    &self.clock,
                ));
                Ok(report)
            }
            Err(e) => {
                let e: HerculesError = e.into();
                self.events
                    .push(ExecEvent::aborted("retrace", &e, &self.tracer, &self.clock));
                Err(e)
            }
        }
    }
}
