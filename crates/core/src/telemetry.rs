//! Durable flight-recorder sidecar: the workspace `telemetry-N.jsonl`
//! files, their writer, and the crash postmortem reader.
//!
//! Telemetry is the *other* durable stream a workspace carries. The
//! journal is precious — every frame fsynced, torn tails surgically
//! recovered; telemetry is deliberately cheap and lossy in exactly
//! the opposite way:
//!
//! * **Best-effort writes.** Every append is allowed to fail silently
//!   (counted under `telemetry.write_errors`). A dying disk must
//!   never take the session down on the observability path — the next
//!   journal append will surface the real error with full guarantees.
//! * **Crash-safe by construction, not by fsync.** Appends are not
//!   synced; a crash may tear the tail or punch holes where unsynced
//!   extents were lost. The reader therefore treats every line as
//!   independently suspect: valid JSON object lines count, anything
//!   else is damage to step over. One record *is* anchored durably —
//!   the `"S"` session stamp written (and fsynced, directory entry
//!   included) when the sidecar is attached during `save`/`open` — so
//!   a postmortem always finds at least the session provenance.
//! * **Bounded.** The active file rotates at a size bound and only
//!   the newest few files are retained; after a crash the interesting
//!   records are the most recent ones.
//!
//! Record kinds: `"B"`/`"E"`/`"I"` span events ([`TraceEvent`]
//! encoding), `"M"` metric deltas, `"S"` the session stamp — see
//! [`hercules_obs::FlightRecorder`] for the wire format.
//!
//! [`TraceEvent`]: hercules_obs::TraceEvent

use std::path::{Path, PathBuf};

use hercules_obs::{names, Metrics, StoreHealth};
use hercules_sim::{Env, Fs, FsFile};
use serde::Value;

use crate::store::{RecoveryReport, Workspace, WriteState};

/// Sidecar file name prefix; the full name is
/// `telemetry-<seq>.jsonl`.
pub const TELEMETRY_PREFIX: &str = "telemetry-";
/// Sidecar file name suffix.
pub const TELEMETRY_SUFFIX: &str = ".jsonl";

/// Default size at which the active sidecar rotates.
pub const DEFAULT_TELEMETRY_MAX_BYTES: u64 = 1024 * 1024;
/// Default number of rotated sidecar files kept (including the active
/// one).
pub const DEFAULT_TELEMETRY_RETAIN: usize = 4;

/// Parses `telemetry-<seq>.jsonl` back into its sequence number.
fn telemetry_seq(name: &str) -> Option<u64> {
    name.strip_prefix(TELEMETRY_PREFIX)?
        .strip_suffix(TELEMETRY_SUFFIX)?
        .parse()
        .ok()
}

/// The sidecar file name for a sequence number.
fn telemetry_name(seq: u64) -> String {
    format!("{TELEMETRY_PREFIX}{seq}{TELEMETRY_SUFFIX}")
}

/// All telemetry sidecar files under `root`, sorted by sequence
/// number (oldest first).
fn telemetry_files(fs: &Fs, root: &Path) -> Vec<(u64, PathBuf)> {
    let mut files: Vec<(u64, PathBuf)> = fs
        .list_dir(root)
        .unwrap_or_default()
        .into_iter()
        .filter_map(|p| {
            let seq = telemetry_seq(p.file_name()?.to_str()?)?;
            Some((seq, p))
        })
        .collect();
    files.sort();
    files
}

/// Append-only writer for the workspace telemetry sidecar.
///
/// Every method is infallible at the API level: failures increment
/// `telemetry.write_errors` and drop the payload. See the module docs
/// for why that is the correct durability contract here.
pub struct TelemetryWriter {
    root: PathBuf,
    env: Env,
    metrics: Metrics,
    active: Option<Box<dyn FsFile>>,
    active_seq: u64,
    active_len: u64,
    max_bytes: u64,
    retain: usize,
}

impl std::fmt::Debug for TelemetryWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryWriter")
            .field("root", &self.root)
            .field("active_seq", &self.active_seq)
            .field("active_len", &self.active_len)
            .field("max_bytes", &self.max_bytes)
            .field("retain", &self.retain)
            .finish()
    }
}

impl TelemetryWriter {
    /// Opens a fresh sidecar file under `root` (sequence one past the
    /// highest already present — earlier incarnations' files are left
    /// for the postmortem reader until retention trims them) and
    /// durably anchors a `"S"` session stamp in it: file contents and
    /// directory entry are both fsynced, so any later crash leaves at
    /// least this record readable.
    ///
    /// # Errors
    ///
    /// Attach is the one fallible operation: it runs inside `save`/
    /// `open` (which are allowed to fail loudly), and the durability
    /// anchor is worthless if it silently failed to land.
    pub fn attach(
        root: &Path,
        env: Env,
        metrics: Metrics,
        stamp: &SessionStamp,
    ) -> std::io::Result<TelemetryWriter> {
        let next_seq = telemetry_files(&env.fs, root)
            .last()
            .map(|(seq, _)| seq + 1)
            .unwrap_or(0);
        let name = telemetry_name(next_seq);
        let mut file = env.fs.create_truncate(&root.join(&name))?;
        let line = stamp.to_json_line(&env);
        file.write_all(line.as_bytes())?;
        file.sync_data()?;
        env.fs.sync_dir(root)?;
        metrics.incr(names::TELEMETRY_BYTES, line.len() as u64);
        metrics.incr(names::TELEMETRY_RECORDS, 1);
        let mut writer = TelemetryWriter {
            root: root.to_owned(),
            env,
            metrics,
            active_len: line.len() as u64,
            active: Some(file),
            active_seq: next_seq,
            max_bytes: DEFAULT_TELEMETRY_MAX_BYTES,
            retain: DEFAULT_TELEMETRY_RETAIN,
        };
        writer.trim_retained();
        Ok(writer)
    }

    /// Sets the rotation size bound (mostly for tests).
    pub fn set_max_bytes(&mut self, max_bytes: u64) {
        self.max_bytes = max_bytes.max(1);
    }

    /// Sets how many sidecar files are retained.
    pub fn set_retain(&mut self, retain: usize) {
        self.retain = retain.max(1);
    }

    /// The sequence number of the active sidecar file.
    pub fn active_seq(&self) -> u64 {
        self.active_seq
    }

    fn note_error(&self, _err: &std::io::Error) {
        // A simulated crash kills the whole disk; real write errors
        // are counted the same way. Either way the payload is gone
        // and the session carries on.
        self.metrics.incr(names::TELEMETRY_WRITE_ERRORS, 1);
    }

    /// Appends pre-encoded, newline-terminated records. Best-effort.
    pub fn append(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        let Some(file) = self.active.as_mut() else {
            return;
        };
        match file.write_all(bytes) {
            Ok(()) => {
                self.active_len += bytes.len() as u64;
                self.metrics
                    .incr(names::TELEMETRY_BYTES, bytes.len() as u64);
                self.metrics.incr(names::TELEMETRY_FLUSHES, 1);
                if self.active_len >= self.max_bytes {
                    self.rotate();
                }
            }
            Err(e) => self.note_error(&e),
        }
    }

    /// Fsyncs the active sidecar (called on periodic metric exports so
    /// the stream is durable at least once per export interval).
    /// Best-effort.
    pub fn sync(&mut self) {
        if let Some(file) = self.active.as_mut() {
            if let Err(e) = file.sync_data() {
                self.note_error(&e);
            }
        }
    }

    /// Rolls to the next sidecar file. Best-effort: on failure the
    /// writer keeps appending to the old file and retries the roll at
    /// the next size-bound crossing.
    fn rotate(&mut self) {
        let next = self.active_seq + 1;
        match self
            .env
            .fs
            .create_truncate(&self.root.join(telemetry_name(next)))
        {
            Ok(mut file) => {
                // Seal the outgoing file and durably publish the new
                // directory entry; records in the new file are then
                // never reordered before the old file's contents.
                if let Some(old) = self.active.as_mut() {
                    if let Err(e) = old.sync_data() {
                        self.note_error(&e);
                    }
                }
                if let Err(e) = file
                    .sync_all()
                    .and_then(|()| self.env.fs.sync_dir(&self.root))
                {
                    self.note_error(&e);
                }
                self.active = Some(file);
                self.active_seq = next;
                self.active_len = 0;
                self.metrics.incr(names::TELEMETRY_ROTATIONS, 1);
                self.trim_retained();
            }
            Err(e) => self.note_error(&e),
        }
    }

    /// Removes sidecar files beyond the retention count, oldest
    /// first. Best-effort.
    fn trim_retained(&mut self) {
        let files = telemetry_files(&self.env.fs, &self.root);
        if files.len() <= self.retain {
            return;
        }
        let excess = files.len() - self.retain;
        for (_, path) in files.into_iter().take(excess) {
            if let Err(e) = self.env.fs.remove_file(&path) {
                self.note_error(&e);
            }
        }
    }
}

/// Provenance stamped into every sidecar file's first record: which
/// session, which store incarnation, wrote the telemetry that
/// follows.
#[derive(Debug, Clone, Default)]
pub struct SessionStamp {
    /// Session user id.
    pub user: String,
    /// Workspace root (as given to `save`/`open`).
    pub root: String,
    /// Checkpoint generation at attach time.
    pub generation: u64,
    /// Fencing token the writer holds.
    pub fencing_token: u64,
}

impl SessionStamp {
    /// Builds the stamp for an open workspace + session pair.
    pub fn for_workspace(ws: &Workspace, user: &str) -> SessionStamp {
        SessionStamp {
            user: user.to_owned(),
            root: ws.root().display().to_string(),
            generation: ws.generation(),
            fencing_token: ws.fencing_token(),
        }
    }

    fn to_json_line(&self, env: &Env) -> String {
        let mut out = String::from("{\"k\":\"S\",\"w\":");
        out.push_str(&env.clock.wall_unix_ms().to_string());
        out.push_str(",\"user\":");
        push_json_string(&mut out, &self.user);
        out.push_str(",\"root\":");
        push_json_string(&mut out, &self.root);
        out.push_str(&format!(
            ",\"generation\":{},\"fencing_token\":{}}}\n",
            self.generation, self.fencing_token
        ));
        out
    }
}

/// Minimal JSON string escaping (mirrors the obs crate's encoder).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One parsed telemetry record.
#[derive(Debug, Clone)]
pub struct PostmortemRecord {
    /// Record kind (`B`/`E`/`I`/`M`/`S`, or empty if absent).
    pub kind: String,
    /// Wall-clock unix milliseconds, when stamped.
    pub wall_unix_ms: Option<u64>,
    /// The raw JSONL line.
    pub line: String,
}

/// What [`read_postmortem`] reconstructed from the sidecar files of a
/// (possibly crashed) workspace.
#[derive(Debug, Clone, Default)]
pub struct PostmortemReport {
    /// Sidecar files scanned, oldest first.
    pub files: Vec<String>,
    /// Valid records recovered, in stream order.
    pub records: Vec<PostmortemRecord>,
    /// Lines that failed to parse (torn tails, lost-extent holes).
    pub damaged_lines: usize,
    /// `true` when the final line of the newest file was incomplete —
    /// the classic torn tail.
    pub torn_tail: bool,
}

impl PostmortemReport {
    /// The last `n` recovered records — the seconds before death.
    pub fn tail(&self, n: usize) -> &[PostmortemRecord] {
        let start = self.records.len().saturating_sub(n);
        &self.records[start..]
    }

    /// Human-readable rendering for `herctrace --postmortem`.
    pub fn render_text(&self, tail: usize) -> String {
        let mut out = format!(
            "postmortem: {} record(s) across {} file(s), {} damaged line(s){}\n",
            self.records.len(),
            self.files.len(),
            self.damaged_lines,
            if self.torn_tail {
                ", torn tail tolerated"
            } else {
                ""
            }
        );
        let span = self.records.iter().filter_map(|r| r.wall_unix_ms).fold(
            None::<(u64, u64)>,
            |acc, w| match acc {
                None => Some((w, w)),
                Some((lo, hi)) => Some((lo.min(w), hi.max(w))),
            },
        );
        if let Some((lo, hi)) = span {
            out.push_str(&format!(
                "window: {}ms of wall clock ({lo}..{hi})\n",
                hi - lo
            ));
        }
        out.push_str(&format!("last {} record(s):\n", self.tail(tail).len()));
        for r in self.tail(tail) {
            out.push_str("  ");
            out.push_str(&r.line);
            out.push('\n');
        }
        out
    }
}

/// Reads every telemetry sidecar under `root` and reconstructs the
/// stream, tolerating arbitrary damage: a crash can tear the final
/// append (torn tail) *and* lose earlier unsynced extents outright
/// (holes that read back as NUL runs or spliced half-lines). Each
/// line is validated independently — it must parse as a JSON object —
/// and everything else is counted, not fatal.
pub fn read_postmortem(fs: &Fs, root: &Path) -> std::io::Result<PostmortemReport> {
    let files = telemetry_files(fs, root);
    let mut report = PostmortemReport::default();
    let last_index = files.len().saturating_sub(1);
    for (i, (_, path)) in files.iter().enumerate() {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        report.files.push(name);
        let bytes = match fs.read(path) {
            Ok(bytes) => bytes,
            Err(_) => continue, // unreadable file: all damage, keep going
        };
        let text = String::from_utf8_lossy(&bytes);
        let ends_complete = text.ends_with('\n');
        let lines: Vec<&str> = text.split('\n').collect();
        let line_count = lines.len();
        for (j, line) in lines.into_iter().enumerate() {
            let is_final_fragment = j + 1 == line_count && !ends_complete;
            if line.is_empty() || line.bytes().all(|b| b == 0) {
                // Blank separators and pure NUL holes are structure,
                // not records; they carry no partial data to report.
                continue;
            }
            match serde_json::from_str::<Value>(line) {
                Ok(value @ Value::Map(_)) => {
                    let kind = match value.get("k") {
                        Some(Value::Str(k)) => k.clone(),
                        _ => String::new(),
                    };
                    let wall = match value.get("w") {
                        Some(Value::Int(w)) => Some(*w as u64),
                        Some(Value::UInt(w)) => Some(*w),
                        _ => None,
                    };
                    report.records.push(PostmortemRecord {
                        kind,
                        wall_unix_ms: wall,
                        line: line.to_owned(),
                    });
                }
                _ => {
                    report.damaged_lines += 1;
                    if is_final_fragment && i == last_index {
                        report.torn_tail = true;
                    }
                }
            }
        }
    }
    Ok(report)
}

/// Extracts the health-model store inputs from an open workspace and
/// the recovery report its open produced.
pub fn store_health(ws: &Workspace, recovery: Option<&RecoveryReport>) -> StoreHealth {
    let quarantined = recovery
        .map(|r| {
            r.segments
                .iter()
                .map(|s| s.quarantined_as.len())
                .sum::<usize>()
        })
        .unwrap_or(0);
    StoreHealth {
        degraded: match ws.write_state() {
            WriteState::Writable => None,
            WriteState::Degraded(reason) => Some(reason.to_string()),
        },
        owner: ws.owner().to_owned(),
        fencing_token: ws.fencing_token(),
        lease_remaining_ms: ws.lease_remaining_ms(),
        generation: ws.generation(),
        segment_chain_len: ws.segments().len(),
        quarantined,
        recovery_bytes_discarded: recovery.map(|r| r.bytes_discarded).unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_sim::SimEnv;

    fn stamp() -> SessionStamp {
        SessionStamp {
            user: "sutton".into(),
            root: "/ws/alpha".into(),
            generation: 1,
            fencing_token: 2,
        }
    }

    fn sim_writer(sim: &SimEnv) -> TelemetryWriter {
        let env = sim.env();
        env.fs.create_dir_all(Path::new("/ws")).unwrap();
        TelemetryWriter::attach(Path::new("/ws"), env, Metrics::new(), &stamp()).unwrap()
    }

    #[test]
    fn attach_anchors_a_durable_session_stamp() {
        let sim = SimEnv::new(7);
        let _writer = sim_writer(&sim);
        // Crash with nothing else synced: the stamp must survive.
        let rebooted = sim.crash_and_reboot();
        let report = read_postmortem(&rebooted.env().fs, Path::new("/ws")).unwrap();
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.records[0].kind, "S");
        assert!(report.records[0].line.contains("\"user\":\"sutton\""));
        assert!(report.records[0].line.contains("\"fencing_token\":2"));
    }

    #[test]
    fn unsynced_appends_may_tear_but_never_break_the_reader() {
        let sim = SimEnv::new(11);
        let mut writer = sim_writer(&sim);
        for i in 0..20 {
            writer
                .append(format!("{{\"k\":\"I\",\"w\":{},\"n\":\"ev{i}\"}}\n", 1000 + i).as_bytes());
        }
        // No sync: the crash image dices these appends arbitrarily.
        let rebooted = sim.crash_and_reboot();
        let report = read_postmortem(&rebooted.env().fs, Path::new("/ws")).unwrap();
        // The stamp is always there; whatever else survived parses.
        assert!(!report.records.is_empty());
        assert_eq!(report.records[0].kind, "S");
        for r in &report.records {
            assert!(serde_json::from_str::<Value>(&r.line).is_ok());
        }
    }

    #[test]
    fn synced_appends_all_survive() {
        let sim = SimEnv::new(3);
        let mut writer = sim_writer(&sim);
        for i in 0..5 {
            writer.append(format!("{{\"k\":\"I\",\"seq\":{i}}}\n").as_bytes());
        }
        writer.sync();
        let rebooted = sim.crash_and_reboot();
        let report = read_postmortem(&rebooted.env().fs, Path::new("/ws")).unwrap();
        assert_eq!(report.records.len(), 6, "stamp + 5 synced records");
        assert_eq!(report.damaged_lines, 0);
        assert!(!report.torn_tail);
    }

    #[test]
    fn rotation_rolls_files_and_retention_trims() {
        let sim = SimEnv::new(5);
        let mut writer = sim_writer(&sim);
        writer.set_max_bytes(64);
        writer.set_retain(2);
        for i in 0..40 {
            writer.append(
                format!("{{\"k\":\"I\",\"seq\":{i},\"pad\":\"xxxxxxxxxxxx\"}}\n").as_bytes(),
            );
        }
        assert!(writer.active_seq() >= 2, "rotations happened");
        let files = telemetry_files(&sim.env().fs, Path::new("/ws"));
        assert!(files.len() <= 2, "retention trims old files: {files:?}");
        // Rotation syncs sealed files, so a postmortem after a crash
        // recovers the sealed records plus whatever the active file
        // kept.
        let rebooted = sim.crash_and_reboot();
        let report = read_postmortem(&rebooted.env().fs, Path::new("/ws")).unwrap();
        assert!(report.records.len() > 1, "{report:?}");
    }

    #[test]
    fn writes_after_disk_death_are_swallowed_and_counted() {
        let sim = SimEnv::new(9);
        let metrics = Metrics::new();
        let env = sim.env();
        env.fs.create_dir_all(Path::new("/ws")).unwrap();
        let mut writer =
            TelemetryWriter::attach(Path::new("/ws"), env, metrics.clone(), &stamp()).unwrap();
        // Arm a crash on the very next mutating op: the append hits
        // it, dies silently, and every later op fails silently too.
        let ops = sim.fs_state().op_count();
        sim.fs_state().set_crash_at(Some(ops + 1));
        for _ in 0..3 {
            writer.append(b"{\"k\":\"I\"}\n");
        }
        writer.sync();
        let snap = metrics.snapshot();
        assert!(
            snap.counters
                .get("telemetry.write_errors")
                .copied()
                .unwrap_or(0)
                >= 1,
            "errors counted, not raised: {snap:?}"
        );
        // The durable stamp still reads back.
        let rebooted = sim.crash_and_reboot();
        let report = read_postmortem(&rebooted.env().fs, Path::new("/ws")).unwrap();
        assert_eq!(report.records[0].kind, "S");
    }

    #[test]
    fn torn_tail_is_flagged() {
        let sim = SimEnv::new(1);
        let env = sim.env();
        env.fs.create_dir_all(Path::new("/ws")).unwrap();
        let mut f = env
            .fs
            .create_truncate(Path::new("/ws/telemetry-0.jsonl"))
            .unwrap();
        f.write_all(b"{\"k\":\"S\",\"w\":5}\n{\"k\":\"I\",\"w\":6}\n{\"k\":\"E\",\"w\"")
            .unwrap();
        f.sync_all().unwrap();
        env.fs.sync_dir(Path::new("/ws")).unwrap();
        let report = read_postmortem(&env.fs, Path::new("/ws")).unwrap();
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.damaged_lines, 1);
        assert!(report.torn_tail);
        let text = report.render_text(8);
        assert!(text.contains("torn tail tolerated"), "{text}");
        assert!(text.contains("window:"), "{text}");
    }
}
