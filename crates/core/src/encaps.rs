//! Encapsulations of the simulated EDA tools against the Odyssey schema.
//!
//! Each struct here is the glue the paper calls an *encapsulation*: it
//! knows how to turn instance bytes into tool inputs, run the tool, and
//! serialize the products. §3.3's techniques all appear:
//!
//! * tool instances carry scripts/programs as data (`CircuitEditor`
//!   sessions, the `CompiledSimulator` program);
//! * one encapsulation serves several tool instances (the three
//!   optimizers differ only in their instance data);
//! * a tool appears as *data input* to another tool (the optimizer
//!   receives a `Simulator` instance);
//! * one subtask produces multiple outputs (the extractor).

use std::sync::Arc;

use hercules_eda as eda;
use hercules_exec::{Encapsulation, EncapsulationRegistry, ExecError, Invocation, ToolOutput};
use hercules_schema::TaskSchema;

fn fail(schema: &TaskSchema, inv: &Invocation, msg: impl std::fmt::Display) -> ExecError {
    ExecError::ToolFailed {
        tool: schema.entity(inv.tool_entity).name().to_owned(),
        message: msg.to_string(),
    }
}

/// Parses netlist bytes that may be either the canonical text format or
/// an extracted-netlist JSON; returns the netlist and, when extracted,
/// its parasitic delays.
pub fn parse_any_netlist(
    bytes: &[u8],
) -> Result<(eda::Netlist, Option<eda::NetDelays>), eda::EdaError> {
    if let Ok(ex) = eda::ExtractedNetlist::from_bytes(bytes) {
        let parasitics = ex.parasitics(4);
        return Ok((ex.netlist, Some(parasitics)));
    }
    Ok((eda::Netlist::from_bytes(bytes)?, None))
}

/// `DeviceModelEditor` → `DeviceModels`: the tool instance's data is the
/// model deck it "edits" (a scripted session); empty data yields the
/// default 1993 models.
#[derive(Debug, Default)]
pub struct DeviceModelEditor;

impl Encapsulation for DeviceModelEditor {
    fn run(&self, schema: &TaskSchema, inv: &Invocation) -> Result<Vec<ToolOutput>, ExecError> {
        // Tool data is a scripted model deck when it looks like one;
        // otherwise it is just the tool's path and the editor produces
        // the default deck.
        let models = match &inv.tool_data {
            Some(data) if data.starts_with(b".models") => {
                eda::DeviceModels::from_bytes(data).map_err(|e| fail(schema, inv, e))?
            }
            _ => eda::DeviceModels::default_1993(),
        };
        Ok(vec![ToolOutput::named(
            inv.outputs[0],
            models.to_bytes(),
            &models.name,
        )])
    }
}

/// `CircuitEditor` → `EditedNetlist`: the tool instance's data is the
/// netlist the scripted session produces. When the optional prior
/// netlist input is present and the script is empty, the editor passes
/// the prior netlist through (a null edit creating a new version).
#[derive(Debug, Default)]
pub struct CircuitEditor;

impl Encapsulation for CircuitEditor {
    fn run(&self, schema: &TaskSchema, inv: &Invocation) -> Result<Vec<ToolOutput>, ExecError> {
        let script = inv.tool_data.as_deref().unwrap_or(&[]);
        let netlist = if !script.is_empty() && script.starts_with(b".circuit") {
            eda::Netlist::from_bytes(script).map_err(|e| fail(schema, inv, e))?
        } else if let Some(prior) = inv.inputs.first().and_then(|i| i.instances.first()) {
            let (netlist, _) = parse_any_netlist(prior).map_err(|e| fail(schema, inv, e))?;
            netlist
        } else {
            return Err(fail(
                schema,
                inv,
                "editor needs a netlist script or a prior netlist",
            ));
        };
        let name = netlist.name.clone();
        Ok(vec![ToolOutput::named(
            inv.outputs[0],
            netlist.to_bytes(),
            &name,
        )])
    }
}

/// The `Circuit` composite's implicit composition function:
/// `DeviceModels` + `Netlist` → `Circuit`, with the §3.1 consistency
/// check ("can these device models be used with this circuit?").
#[derive(Debug, Default)]
pub struct CircuitComposer;

impl Encapsulation for CircuitComposer {
    fn run(&self, schema: &TaskSchema, inv: &Invocation) -> Result<Vec<ToolOutput>, ExecError> {
        let models_entity = schema
            .entity_id("DeviceModels")
            .ok_or_else(|| fail(schema, inv, "schema lacks DeviceModels"))?;
        let netlist_entity = schema
            .entity_id("Netlist")
            .ok_or_else(|| fail(schema, inv, "schema lacks Netlist"))?;
        let models = eda::DeviceModels::from_bytes(inv.input_of(schema, models_entity)?)
            .map_err(|e| fail(schema, inv, e))?;
        let (netlist, _) = parse_any_netlist(inv.input_of(schema, netlist_entity)?)
            .map_err(|e| fail(schema, inv, e))?;
        let circuit = eda::Circuit::compose(models, netlist).map_err(|e| fail(schema, inv, e))?;
        let name = circuit.netlist.name.clone();
        Ok(vec![ToolOutput::named(
            inv.outputs[0],
            circuit.to_bytes(),
            &name,
        )])
    }
}

/// Simulator options (the "options or arguments themselves as an entity
/// type" of §3.3).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SimOptions {
    /// Apply extracted wire parasitics when the netlist carries them.
    pub use_parasitics: bool,
}

impl Default for SimOptions {
    fn default() -> SimOptions {
        SimOptions {
            use_parasitics: true,
        }
    }
}

impl SimOptions {
    /// Emits the canonical byte form (JSON).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("options serialize")
    }

    /// Parses the canonical byte form.
    ///
    /// # Errors
    ///
    /// Returns a parse error on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<SimOptions, eda::EdaError> {
        serde_json::from_slice(bytes).map_err(|e| eda::EdaError::Parse {
            what: "simulator options".into(),
            detail: e.to_string(),
        })
    }
}

/// `Simulator` → `Performance`: gate-level simulation of a `Circuit`
/// under `Stimuli`, honouring optional `SimulatorOptions`.
#[derive(Debug, Default)]
pub struct Simulator;

impl Encapsulation for Simulator {
    fn run(&self, schema: &TaskSchema, inv: &Invocation) -> Result<Vec<ToolOutput>, ExecError> {
        let circuit_entity = schema
            .entity_id("Circuit")
            .ok_or_else(|| fail(schema, inv, "schema lacks Circuit"))?;
        let stimuli_entity = schema
            .entity_id("Stimuli")
            .ok_or_else(|| fail(schema, inv, "schema lacks Stimuli"))?;
        let circuit = eda::Circuit::from_bytes(inv.input_of(schema, circuit_entity)?)
            .map_err(|e| fail(schema, inv, e))?;
        let stimuli = eda::Stimuli::from_bytes(inv.input_of(schema, stimuli_entity)?)
            .map_err(|e| fail(schema, inv, e))?;
        let options = schema
            .entity_id("SimulatorOptions")
            .and_then(|opt_entity| {
                inv.inputs
                    .iter()
                    .find(|i| i.entity == opt_entity)
                    .and_then(|i| i.instances.first())
            })
            .map(|bytes| SimOptions::from_bytes(bytes))
            .transpose()
            .map_err(|e| fail(schema, inv, e))?
            .unwrap_or_default();

        let parasitics = eda::NetDelays::default();
        let _ = options.use_parasitics; // circuit netlists are ideal here
        let perf =
            eda::Performance::analyze(&circuit.netlist, &stimuli, &circuit.models, &parasitics)
                .map_err(|e| fail(schema, inv, e))?;
        let name = format!("{}·{}", perf.circuit, perf.stimuli);
        Ok(vec![ToolOutput::named(
            inv.outputs[0],
            perf.to_bytes(),
            &name,
        )])
    }
}

/// `Placer` → `Layout`: placement from a netlist and rules.
#[derive(Debug, Default)]
pub struct Placer;

impl Encapsulation for Placer {
    fn run(&self, schema: &TaskSchema, inv: &Invocation) -> Result<Vec<ToolOutput>, ExecError> {
        let netlist_entity = schema
            .entity_id("Netlist")
            .ok_or_else(|| fail(schema, inv, "schema lacks Netlist"))?;
        let rules_entity = schema
            .entity_id("PlacementRules")
            .ok_or_else(|| fail(schema, inv, "schema lacks PlacementRules"))?;
        let (netlist, _) = parse_any_netlist(inv.input_of(schema, netlist_entity)?)
            .map_err(|e| fail(schema, inv, e))?;
        let rules = eda::PlacementRules::from_bytes(inv.input_of(schema, rules_entity)?)
            .map_err(|e| fail(schema, inv, e))?;
        let layout = eda::place(&netlist, &rules).map_err(|e| fail(schema, inv, e))?;
        let name = layout.name.clone();
        Ok(vec![ToolOutput::named(
            inv.outputs[0],
            layout.to_bytes(),
            &name,
        )])
    }
}

/// `Extractor` → `ExtractedNetlist` (+ `ExtractionStatistics`): the
/// multi-output subtask of Fig. 5. One invocation serves both products.
#[derive(Debug, Default)]
pub struct Extractor;

impl Encapsulation for Extractor {
    fn run(&self, schema: &TaskSchema, inv: &Invocation) -> Result<Vec<ToolOutput>, ExecError> {
        let layout_entity = schema
            .entity_id("Layout")
            .ok_or_else(|| fail(schema, inv, "schema lacks Layout"))?;
        let layout = eda::Layout::from_bytes(inv.input_of(schema, layout_entity)?)
            .map_err(|e| fail(schema, inv, e))?;
        let (extracted, stats) = eda::extract(&layout);
        inv.outputs
            .iter()
            .map(|&out| {
                let name = schema.entity(out).name();
                match name {
                    "ExtractedNetlist" => Ok(ToolOutput::named(
                        out,
                        extracted.to_bytes(),
                        &extracted.netlist.name,
                    )),
                    "ExtractionStatistics" => Ok(ToolOutput::named(
                        out,
                        stats.to_bytes(),
                        &format!("{} stats", stats.layout),
                    )),
                    other => Err(fail(
                        schema,
                        inv,
                        format!("extractor cannot produce `{other}`"),
                    )),
                }
            })
            .collect()
    }
}

/// `Verifier` → `Verification`: LVS between the reference netlist and
/// the extracted netlist (the Fig. 8b view-consistency check).
#[derive(Debug, Default)]
pub struct Verifier;

impl Encapsulation for Verifier {
    fn run(&self, schema: &TaskSchema, inv: &Invocation) -> Result<Vec<ToolOutput>, ExecError> {
        let extracted_entity = schema
            .entity_id("ExtractedNetlist")
            .ok_or_else(|| fail(schema, inv, "schema lacks ExtractedNetlist"))?;
        // The reference is the input that is NOT the extracted netlist.
        let mut reference = None;
        let mut compared = None;
        for input in &inv.inputs {
            let bytes = input
                .instances
                .first()
                .ok_or_else(|| fail(schema, inv, "empty verifier input"))?;
            if input.entity == extracted_entity {
                compared = Some(bytes);
            } else {
                reference = Some(bytes);
            }
        }
        let reference = reference.ok_or_else(|| fail(schema, inv, "missing reference"))?;
        let compared = compared.ok_or_else(|| fail(schema, inv, "missing extracted"))?;
        let (ref_netlist, _) = parse_any_netlist(reference).map_err(|e| fail(schema, inv, e))?;
        let (cmp_netlist, _) = parse_any_netlist(compared).map_err(|e| fail(schema, inv, e))?;
        let report = eda::verify(&ref_netlist, &cmp_netlist).map_err(|e| fail(schema, inv, e))?;
        let name = format!(
            "{} vs {}: {}",
            report.reference,
            report.compared,
            if report.matched { "ok" } else { "MISMATCH" }
        );
        Ok(vec![ToolOutput::named(
            inv.outputs[0],
            report.to_bytes(),
            &name,
        )])
    }
}

/// `Plotter` → `PerformancePlot`.
#[derive(Debug, Default)]
pub struct Plotter;

impl Encapsulation for Plotter {
    fn run(&self, schema: &TaskSchema, inv: &Invocation) -> Result<Vec<ToolOutput>, ExecError> {
        let perf_entity = schema
            .entity_id("Performance")
            .ok_or_else(|| fail(schema, inv, "schema lacks Performance"))?;
        let perf = eda::Performance::from_bytes(inv.input_of(schema, perf_entity)?)
            .map_err(|e| fail(schema, inv, e))?;
        let plot = eda::Plot::from_performance(&perf);
        let name = plot.title.clone();
        Ok(vec![ToolOutput::named(
            inv.outputs[0],
            plot.to_bytes(),
            &name,
        )])
    }
}

/// `SimulatorCompiler` → `CompiledSimulator` (Fig. 2): compiles a
/// netlist into a switch-level simulator. Gate-level input is first
/// synthesized to transistors.
#[derive(Debug, Default)]
pub struct SimulatorCompiler;

impl Encapsulation for SimulatorCompiler {
    fn run(&self, schema: &TaskSchema, inv: &Invocation) -> Result<Vec<ToolOutput>, ExecError> {
        let netlist_entity = schema
            .entity_id("Netlist")
            .ok_or_else(|| fail(schema, inv, "schema lacks Netlist"))?;
        let (netlist, _) = parse_any_netlist(inv.input_of(schema, netlist_entity)?)
            .map_err(|e| fail(schema, inv, e))?;
        let transistor = if netlist.is_transistor_level() {
            netlist
        } else {
            eda::to_transistor_level(&netlist).map_err(|e| fail(schema, inv, e))?
        };
        let sim = eda::cosmos::compile(&transistor).map_err(|e| fail(schema, inv, e))?;
        let name = format!("cosmos({})", sim.circuit);
        Ok(vec![ToolOutput::named(
            inv.outputs[0],
            sim.to_bytes(),
            &name,
        )])
    }
}

/// `CompiledSimulator` → `SwitchSimulation`: the created-during-design
/// tool itself. Its *instance data* is the compiled program.
#[derive(Debug, Default)]
pub struct CompiledSimulatorTool;

impl Encapsulation for CompiledSimulatorTool {
    fn run(&self, schema: &TaskSchema, inv: &Invocation) -> Result<Vec<ToolOutput>, ExecError> {
        let program = inv
            .tool_data
            .as_deref()
            .ok_or_else(|| fail(schema, inv, "compiled simulator has no program"))?;
        let sim = eda::CompiledSimulator::from_bytes(program).map_err(|e| fail(schema, inv, e))?;
        let stimuli_entity = schema
            .entity_id("Stimuli")
            .ok_or_else(|| fail(schema, inv, "schema lacks Stimuli"))?;
        let stimuli = eda::Stimuli::from_bytes(inv.input_of(schema, stimuli_entity)?)
            .map_err(|e| fail(schema, inv, e))?;
        let result = sim.run(&stimuli).map_err(|e| fail(schema, inv, e))?;
        let name = format!("{}·{}", result.circuit, result.stimuli);
        Ok(vec![ToolOutput::named(
            inv.outputs[0],
            result.to_bytes(),
            &name,
        )])
    }
}

/// The shared optimizer encapsulation (§3.3): three tool *instances*
/// (`hillclimb`, `anneal`, `random-search` as instance data) share this
/// one implementation. The `Simulator` arrives as a *data input* — a
/// tool passed to another tool.
#[derive(Debug, Default)]
pub struct Optimizer;

impl Encapsulation for Optimizer {
    fn run(&self, schema: &TaskSchema, inv: &Invocation) -> Result<Vec<ToolOutput>, ExecError> {
        let kind = match inv.tool_data.as_deref() {
            Some(b"hillclimb") => eda::OptimizerKind::HillClimb,
            Some(b"anneal") => eda::OptimizerKind::Anneal,
            Some(b"random-search") => eda::OptimizerKind::RandomSearch,
            other => {
                return Err(fail(
                    schema,
                    inv,
                    format!(
                        "unknown optimizer `{}`",
                        String::from_utf8_lossy(other.unwrap_or(b"<none>"))
                    ),
                ))
            }
        };
        let netlist_entity = schema
            .entity_id("Netlist")
            .ok_or_else(|| fail(schema, inv, "schema lacks Netlist"))?;
        let models_entity = schema
            .entity_id("DeviceModels")
            .ok_or_else(|| fail(schema, inv, "schema lacks DeviceModels"))?;
        let simulator_entity = schema
            .entity_id("Simulator")
            .ok_or_else(|| fail(schema, inv, "schema lacks Simulator"))?;
        let (netlist, _) = parse_any_netlist(inv.input_of(schema, netlist_entity)?)
            .map_err(|e| fail(schema, inv, e))?;
        let models = eda::DeviceModels::from_bytes(inv.input_of(schema, models_entity)?)
            .map_err(|e| fail(schema, inv, e))?;
        // The simulator-as-data: its identity seeds the Monte-Carlo
        // evaluation, so different simulators give different (but
        // deterministic) statistical estimates.
        let simulator_bytes = inv.input_of(schema, simulator_entity)?;
        let seed = simulator_bytes
            .iter()
            .fold(0u64, |h, &b| h.wrapping_mul(31).wrapping_add(u64::from(b)));

        let transistor = if netlist.is_transistor_level() {
            netlist
        } else {
            eda::to_transistor_level(&netlist).map_err(|e| fail(schema, inv, e))?
        };
        let (optimized, report) = eda::optimize(kind, &transistor, &models, 400, seed)
            .map_err(|e| fail(schema, inv, e))?;
        let name = format!(
            "{} ({:.1}% better)",
            optimized.name,
            report.improvement() * 100.0
        );
        Ok(vec![ToolOutput::named(
            inv.outputs[0],
            optimized.to_bytes(),
            &name,
        )])
    }
}

/// Builds the full encapsulation registry for the Odyssey schema
/// ([`hercules_schema::fixtures::odyssey`]).
///
/// # Panics
///
/// Panics if `schema` lacks the Odyssey tool entities.
pub fn odyssey_registry(schema: &TaskSchema) -> EncapsulationRegistry {
    let mut reg = EncapsulationRegistry::new();
    let id = |name: &str| {
        schema
            .entity_id(name)
            .unwrap_or_else(|| panic!("odyssey schema declares {name}"))
    };
    reg.register(id("DeviceModelEditor"), Arc::new(DeviceModelEditor));
    reg.register(id("CircuitEditor"), Arc::new(CircuitEditor));
    reg.register(id("Circuit"), Arc::new(CircuitComposer));
    reg.register(id("Simulator"), Arc::new(Simulator));
    reg.register(id("Placer"), Arc::new(Placer));
    reg.register(id("Extractor"), Arc::new(Extractor));
    reg.register(id("Verifier"), Arc::new(Verifier));
    reg.register(id("Plotter"), Arc::new(Plotter));
    if let Some(compiler) = schema.entity_id("SimulatorCompiler") {
        reg.register(compiler, Arc::new(SimulatorCompiler));
    }
    if let Some(compiled) = schema.entity_id("CompiledSimulator") {
        reg.register(compiled, Arc::new(CompiledSimulatorTool));
    }
    if let Some(optimizer) = schema.entity_id("Optimizer") {
        reg.register(optimizer, Arc::new(Optimizer));
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_exec::ToolInput;
    use hercules_schema::fixtures;

    fn schema() -> TaskSchema {
        fixtures::odyssey()
    }

    fn single_input(schema: &TaskSchema, entity: &str, data: &[u8]) -> ToolInput {
        ToolInput {
            entity: schema.entity_id(entity).expect("known"),
            instances: vec![data.to_vec()],
        }
    }

    #[test]
    fn registry_covers_every_odyssey_tool() {
        let schema = schema();
        let reg = odyssey_registry(&schema);
        for tool in schema.tools() {
            assert!(
                reg.lookup(&schema, tool).is_some(),
                "missing encapsulation for {}",
                schema.entity(tool).name()
            );
        }
        // Plus the Circuit composer.
        let circuit = schema.entity_id("Circuit").expect("known");
        assert!(reg.lookup(&schema, circuit).is_some());
    }

    #[test]
    fn parse_any_netlist_accepts_both_forms() {
        let gate = eda::cells::full_adder();
        let (n, parasitics) = parse_any_netlist(&gate.to_bytes()).expect("text form");
        assert_eq!(n, gate);
        assert!(parasitics.is_none());

        let layout = eda::place(&gate, &eda::PlacementRules::default()).expect("places");
        let (ex, _) = eda::extract(&layout);
        let (n, parasitics) = parse_any_netlist(&ex.to_bytes()).expect("json form");
        assert_eq!(n.gate_count(), gate.gate_count());
        assert!(parasitics.is_some());

        assert!(parse_any_netlist(b"garbage").is_err());
    }

    #[test]
    fn circuit_editor_requires_script_or_prior() {
        let schema = schema();
        let edited = schema.entity_id("EditedNetlist").expect("known");
        let editor = schema.entity_id("CircuitEditor").expect("known");
        let inv = Invocation {
            tool_entity: editor,
            tool_data: Some(b"not a script".to_vec()),
            inputs: vec![],
            outputs: vec![edited],
        };
        assert!(matches!(
            CircuitEditor.run(&schema, &inv).unwrap_err(),
            ExecError::ToolFailed { .. }
        ));

        // With a prior netlist it passes through.
        let prior = eda::cells::inverter();
        let netlist_entity = schema.entity_id("Netlist").expect("known");
        let inv = Invocation {
            tool_entity: editor,
            tool_data: Some(b"".to_vec()),
            inputs: vec![ToolInput {
                entity: netlist_entity,
                instances: vec![prior.to_bytes()],
            }],
            outputs: vec![edited],
        };
        let out = CircuitEditor.run(&schema, &inv).expect("passes through");
        assert_eq!(
            eda::Netlist::from_bytes(&out[0].data).expect("netlist"),
            prior
        );
    }

    #[test]
    fn composer_rejects_inconsistent_models() {
        let schema = schema();
        let circuit = schema.entity_id("Circuit").expect("known");
        let mut bad = eda::DeviceModels::default_1993();
        bad.vdd = -1.0;
        let inv = Invocation {
            tool_entity: circuit,
            tool_data: None,
            inputs: vec![
                single_input(&schema, "DeviceModels", &bad.to_bytes()),
                single_input(&schema, "Netlist", &eda::cells::inverter().to_bytes()),
            ],
            outputs: vec![circuit],
        };
        assert!(matches!(
            CircuitComposer.run(&schema, &inv).unwrap_err(),
            ExecError::ToolFailed { .. }
        ));
    }

    #[test]
    fn extractor_produces_only_known_outputs() {
        let schema = schema();
        let layout =
            eda::place(&eda::cells::inverter(), &eda::PlacementRules::default()).expect("places");
        let extractor = schema.entity_id("Extractor").expect("known");
        let perf = schema.entity_id("Performance").expect("known");
        let inv = Invocation {
            tool_entity: extractor,
            tool_data: None,
            inputs: vec![single_input(&schema, "Layout", &layout.to_bytes())],
            outputs: vec![perf], // extractor cannot make a Performance
        };
        assert!(matches!(
            Extractor.run(&schema, &inv).unwrap_err(),
            ExecError::ToolFailed { .. }
        ));
    }

    #[test]
    fn optimizer_rejects_unknown_kind() {
        let schema = schema();
        let optimizer = schema.entity_id("Optimizer").expect("known");
        let optimized = schema.entity_id("OptimizedNetlist").expect("known");
        let inv = Invocation {
            tool_entity: optimizer,
            tool_data: Some(b"gradient-descent".to_vec()),
            inputs: vec![],
            outputs: vec![optimized],
        };
        assert!(matches!(
            Optimizer.run(&schema, &inv).unwrap_err(),
            ExecError::ToolFailed { .. }
        ));
    }

    #[test]
    fn compiled_simulator_needs_its_program() {
        let schema = schema();
        let compiled = schema.entity_id("CompiledSimulator").expect("known");
        let sim = schema.entity_id("SwitchSimulation").expect("known");
        let inv = Invocation {
            tool_entity: compiled,
            tool_data: None,
            inputs: vec![],
            outputs: vec![sim],
        };
        assert!(matches!(
            CompiledSimulatorTool.run(&schema, &inv).unwrap_err(),
            ExecError::ToolFailed { .. }
        ));
    }

    #[test]
    fn sim_options_round_trip() {
        let opts = SimOptions {
            use_parasitics: false,
        };
        let back = SimOptions::from_bytes(&opts.to_bytes()).expect("round trips");
        assert_eq!(back, opts);
        assert!(SimOptions::from_bytes(b"junk").is_err());
    }
}
