//! Error type for flow construction and validation.

use std::error::Error;
use std::fmt;

use hercules_schema::SchemaError;

use crate::node::NodeId;

/// Errors raised while building, editing or validating a task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
#[allow(missing_docs)] // variant fields are self-describing names/ids
pub enum FlowError {
    /// A node id does not refer to a live node of this graph.
    NodeNotFound(NodeId),
    /// An entity name or id is not declared in the schema the flow was
    /// built against.
    Schema(SchemaError),
    /// The node's entity is abstract; it must be specialized to a
    /// subtype before it can be expanded (§3.2: "the circuit in Fig. 4b
    /// was specialized to an ExtractedNetlist before expansion").
    ExpandNeedsSpecialization { entity: String },
    /// The node's entity has no dependencies, so there is nothing to
    /// expand. Primary entities are instantiated, not constructed.
    NothingToExpand { entity: String },
    /// The node already has producer edges; expanding it again would
    /// duplicate its task.
    AlreadyExpanded(NodeId),
    /// Specialization target is not a (transitive) subtype of the node's
    /// current entity.
    NotASubtype { entity: String, requested: String },
    /// The node has already been expanded; its construction method is
    /// fixed, so it can no longer be specialized.
    SpecializeAfterExpand(NodeId),
    /// A reused node's entity is not compatible with the dependency it
    /// was offered for.
    ReuseTypeMismatch { dep_source: String, offered: String },
    /// Downward expansion was requested towards an entity that has no
    /// dependency on the node's entity.
    NoDependencyPath { from: String, to: String },
    /// An edge does not correspond to any dependency arc of the schema.
    EdgeNotInSchema { source: String, target: String },
    /// A node carries two functional (producer-tool) edges.
    DuplicateFunctionalEdge(NodeId),
    /// The same (source, target, kind) edge appears twice.
    DuplicateEdge(NodeId, NodeId),
    /// The graph contains a cycle; task graphs are DAGs (§3.2).
    Cycle,
    /// A required dependency of an expanded node has no incoming edge.
    IncompleteExpansion { entity: String, missing: String },
    /// The flow and an operand (catalog entry, instance binding) were
    /// built against different schemas.
    SchemaMismatch,
    /// The flow catalog has no flow with this name.
    UnknownFlow(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::NodeNotFound(id) => write!(f, "no node {id} in this flow"),
            FlowError::Schema(e) => write!(f, "schema error: {e}"),
            FlowError::ExpandNeedsSpecialization { entity } => write!(
                f,
                "entity `{entity}` is abstract; specialize it to a subtype before expanding"
            ),
            FlowError::NothingToExpand { entity } => write!(
                f,
                "entity `{entity}` is primary and has no construction task to expand"
            ),
            FlowError::AlreadyExpanded(id) => {
                write!(f, "node {id} is already expanded")
            }
            FlowError::NotASubtype { entity, requested } => {
                write!(f, "`{requested}` is not a subtype of `{entity}`")
            }
            FlowError::SpecializeAfterExpand(id) => write!(
                f,
                "node {id} is already expanded and can no longer be specialized"
            ),
            FlowError::ReuseTypeMismatch {
                dep_source,
                offered,
            } => write!(
                f,
                "cannot reuse a `{offered}` node for a dependency on `{dep_source}`"
            ),
            FlowError::NoDependencyPath { from, to } => write!(
                f,
                "`{to}` has no dependency on `{from}`; cannot expand in that direction"
            ),
            FlowError::EdgeNotInSchema { source, target } => write!(
                f,
                "edge `{source}` -> `{target}` matches no dependency in the task schema"
            ),
            FlowError::DuplicateFunctionalEdge(id) => {
                write!(f, "node {id} has two functional (tool) edges")
            }
            FlowError::DuplicateEdge(s, t) => {
                write!(f, "edge {s} -> {t} appears twice")
            }
            FlowError::Cycle => f.write_str("task graphs must be acyclic"),
            FlowError::IncompleteExpansion { entity, missing } => write!(
                f,
                "expanded node `{entity}` is missing its required dependency on `{missing}`"
            ),
            FlowError::SchemaMismatch => {
                f.write_str("operands were built against different task schemas")
            }
            FlowError::UnknownFlow(name) => {
                write!(f, "no flow named `{name}` in the catalog")
            }
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Schema(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchemaError> for FlowError {
    fn from(e: SchemaError) -> FlowError {
        FlowError::Schema(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let errors = vec![
            FlowError::NodeNotFound(NodeId::from_index(3)),
            FlowError::ExpandNeedsSpecialization {
                entity: "Netlist".into(),
            },
            FlowError::Cycle,
            FlowError::SchemaMismatch,
            FlowError::UnknownFlow("synth".into()),
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn schema_error_is_wrapped_with_source() {
        use std::error::Error as _;
        let err: FlowError = SchemaError::UnknownEntity("X".into()).into();
        assert!(err.source().is_some());
    }
}
