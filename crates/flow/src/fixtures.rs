//! Flows reconstructed from the paper's figures, built against the
//! Fig. 1 schema ([`hercules_schema::fixtures::fig1`] or any schema
//! containing its entities, such as
//! [`hercules_schema::fixtures::odyssey`]).

use std::sync::Arc;

use hercules_schema::TaskSchema;

use crate::error::FlowError;
use crate::expand::Expansion;
use crate::graph::TaskGraph;

/// Builds the Fig. 3 flow: `placement = (placer, (circuit_editor,
/// netlist), placement_rules)`.
///
/// The `Layout` goal is expanded; its abstract `Netlist` input is
/// specialized to `EditedNetlist` and expanded with the optional prior
/// netlist included, matching footnote 2's rendering.
///
/// # Errors
///
/// Returns an error if `schema` lacks the Fig. 1 entities.
pub fn fig3(schema: Arc<TaskSchema>) -> Result<TaskGraph, FlowError> {
    let netlist_ty = schema.require("Netlist")?;
    let edited_ty = schema.require("EditedNetlist")?;
    let mut flow = TaskGraph::new(schema.clone());
    let layout = flow.seed(schema.require("Layout")?)?;
    let created = flow.expand(layout)?; // placer, netlist, rules
    let netlist_node = created[1];
    flow.specialize(netlist_node, edited_ty)?;
    flow.expand_with(netlist_node, &Expansion::new().with_optional(netlist_ty))?;
    Ok(flow)
}

/// Builds the Fig. 4a expansion: the Fig. 3 goal with its netlist
/// specialized to `EditedNetlist` and expanded *without* the optional
/// prior netlist (editing from scratch).
///
/// # Errors
///
/// Returns an error if `schema` lacks the Fig. 1 entities.
pub fn fig4_edited(schema: Arc<TaskSchema>) -> Result<TaskGraph, FlowError> {
    let edited_ty = schema.require("EditedNetlist")?;
    let mut flow = TaskGraph::new(schema.clone());
    let layout = flow.seed(schema.require("Layout")?)?;
    let created = flow.expand(layout)?;
    let netlist_node = created[1];
    flow.specialize(netlist_node, edited_ty)?;
    flow.expand(netlist_node)?;
    Ok(flow)
}

/// Builds the Fig. 4b expansion: "the circuit in Fig. 4b was specialized
/// to an ExtractedNetlist before expansion" — the netlist input of the
/// placement task is itself extracted from a previous layout.
///
/// # Errors
///
/// Returns an error if `schema` lacks the Fig. 1 entities.
pub fn fig4_extracted(schema: Arc<TaskSchema>) -> Result<TaskGraph, FlowError> {
    let extracted_ty = schema.require("ExtractedNetlist")?;
    let mut flow = TaskGraph::new(schema.clone());
    let layout = flow.seed(schema.require("Layout")?)?;
    let created = flow.expand(layout)?;
    let netlist_node = created[1];
    flow.specialize(netlist_node, extracted_ty)?;
    flow.expand(netlist_node)?; // extractor + prior layout
    Ok(flow)
}

/// Builds the Fig. 5 complex flow: "the reuse of an entity in several
/// subtasks and the production of multiple outputs, including multiple
/// outputs from the same subtask".
///
/// * the same `Netlist` node feeds both the `Circuit` composite (hence
///   the simulation) and the `Verification` task (entity reuse);
/// * the `Extractor` applied to one `Layout` produces both the
///   `ExtractedNetlist` and the `ExtractionStatistics` (multiple outputs
///   from one subtask);
/// * the flow as a whole has three outputs: `PerformancePlot`,
///   `Verification` and `ExtractionStatistics`.
///
/// # Errors
///
/// Returns an error if `schema` lacks the Fig. 1 entities.
pub fn fig5(schema: Arc<TaskSchema>) -> Result<TaskGraph, FlowError> {
    let netlist_ty = schema.require("Netlist")?;
    let extractor_ty = schema.require("Extractor")?;
    let layout_ty = schema.require("Layout")?;
    let circuit_ty = schema.require("Circuit")?;
    let perf_ty = schema.require("Performance")?;
    let plot_ty = schema.require("PerformancePlot")?;
    let stats_ty = schema.require("ExtractionStatistics")?;

    let mut flow = TaskGraph::new(schema.clone());

    // Verification branch.
    let verification = flow.seed(schema.require("Verification")?)?;
    let created = flow.expand(verification)?; // verifier, netlist, extracted
    let netlist = created[1];
    let extracted = created[2];
    let created = flow.expand(extracted)?; // extractor, layout
    let extractor = created[0];
    let layout = created[1];

    // Second output of the same extraction subtask.
    let stats = flow.seed(stats_ty)?;
    flow.expand_with(
        stats,
        &Expansion::new()
            .reusing(extractor_ty, extractor)
            .reusing(layout_ty, layout),
    )?;

    // Simulation branch reusing the same netlist through the composite.
    let circuit = flow.seed(circuit_ty)?;
    flow.expand_with(circuit, &Expansion::new().reusing(netlist_ty, netlist))?;
    let perf = flow.seed(perf_ty)?;
    flow.expand_with(perf, &Expansion::new().reusing(circuit_ty, circuit))?;
    let (_plot, _) = flow.expand_down(perf, plot_ty, &Expansion::new())?;

    Ok(flow)
}

/// Builds the Fig. 6 flow whose two input branches are disjoint and can
/// therefore execute in parallel, "possibly on different machines".
///
/// The verification task consumes an `EditedNetlist` branch (editor) and
/// an `ExtractedNetlist` branch (extractor over a layout); neither
/// branch shares a node with the other.
///
/// # Errors
///
/// Returns an error if `schema` lacks the Fig. 1 entities.
pub fn fig6(schema: Arc<TaskSchema>) -> Result<TaskGraph, FlowError> {
    let edited_ty = schema.require("EditedNetlist")?;
    let mut flow = TaskGraph::new(schema.clone());
    let verification = flow.seed(schema.require("Verification")?)?;
    let created = flow.expand(verification)?; // verifier, netlist, extracted
    let netlist = created[1];
    let extracted = created[2];
    flow.specialize(netlist, edited_ty)?;
    flow.expand(netlist)?; // circuit editor
    flow.expand(extracted)?; // extractor + layout
    Ok(flow)
}

/// Builds a *wide* flow of `branches` fully disjoint `Layout` chains
/// (each: edit a netlist, place it). No branch shares a node with any
/// other, so the flow's [`max_parallelism`] equals `branches` — the
/// stress fixture for parallel execution, tracing, and the profiler's
/// achieved-vs-maximum comparison.
///
/// [`max_parallelism`]: TaskGraph::max_parallelism
///
/// # Errors
///
/// Returns an error if `schema` lacks the Fig. 1 entities.
pub fn wide_parallel(schema: Arc<TaskSchema>, branches: usize) -> Result<TaskGraph, FlowError> {
    let layout_ty = schema.require("Layout")?;
    let edited_ty = schema.require("EditedNetlist")?;
    let mut flow = TaskGraph::new(schema.clone());
    for _ in 0..branches.max(1) {
        let layout = flow.seed(layout_ty)?;
        let created = flow.expand(layout)?; // placer, netlist
        let netlist = created[1];
        flow.specialize(netlist, edited_ty)?;
        flow.expand(netlist)?; // circuit editor
    }
    Ok(flow)
}

/// Builds a *barrier-limited* flow: `width` disjoint single-task
/// `Layout` branches that all sit in the first wave, next to one
/// netlist-edit chain `depth` versions deep that occupies every later
/// wave alone. The level-set widths are `[width + 1, 1, 1, …]`, so a
/// wave-barrier schedule holds `width + 1` workers for `depth` waves
/// while only the chain makes progress — the shape `herclint`'s
/// `HL0312` (barrier-limited flow) pass exists to flag.
///
/// # Errors
///
/// Returns an error if `schema` lacks the Fig. 1 entities.
pub fn barrier_limited(
    schema: Arc<TaskSchema>,
    width: usize,
    depth: usize,
) -> Result<TaskGraph, FlowError> {
    let netlist_ty = schema.require("Netlist")?;
    let edited_ty = schema.require("EditedNetlist")?;
    let layout_ty = schema.require("Layout")?;
    let mut flow = TaskGraph::new(schema.clone());
    for _ in 0..width.max(1) {
        let layout = flow.seed(layout_ty)?;
        flow.expand(layout)?;
    }
    let mut node = flow.seed(edited_ty)?;
    for _ in 1..depth.max(1) {
        let created = flow.expand_with(node, &Expansion::new().with_optional(netlist_ty))?;
        let prior = created
            .into_iter()
            .find(|&n| flow.entity_of(n) == Ok(netlist_ty))
            .ok_or(FlowError::NodeNotFound(node))?;
        flow.specialize(prior, edited_ty)?;
        node = prior;
    }
    flow.expand(node)?;
    Ok(flow)
}

/// Builds the Fig. 8a synthesis flow: "synthesize the physical view of a
/// circuit from the transistor view" — a `Layout` placed from a
/// `Netlist`.
///
/// # Errors
///
/// Returns an error if `schema` lacks the Fig. 1 entities.
pub fn fig8_synthesis(schema: Arc<TaskSchema>) -> Result<TaskGraph, FlowError> {
    let mut flow = TaskGraph::new(schema.clone());
    let layout = flow.seed(schema.require("Layout")?)?;
    flow.expand(layout)?;
    Ok(flow)
}

/// Builds the Fig. 8b verification flow: "verify that the physical view
/// is consistent with the transistor view" — extract a netlist from the
/// layout and compare it against the transistor-level netlist.
///
/// # Errors
///
/// Returns an error if `schema` lacks the Fig. 1 entities.
pub fn fig8_verification(schema: Arc<TaskSchema>) -> Result<TaskGraph, FlowError> {
    let mut flow = TaskGraph::new(schema.clone());
    let verification = flow.seed(schema.require("Verification")?)?;
    let created = flow.expand(verification)?;
    let extracted = created[2];
    flow.expand(extracted)?;
    Ok(flow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_schema::fixtures as schemas;

    fn schema() -> Arc<TaskSchema> {
        Arc::new(schemas::fig1())
    }

    #[test]
    fn wide_parallel_has_disjoint_branches() {
        let flow = wide_parallel(schema(), 4).expect("fixture");
        flow.validate_for_execution().expect("complete");
        assert_eq!(flow.components().len(), 4, "branches stay disjoint");
        assert_eq!(flow.max_parallelism().expect("acyclic"), 4);
        let waves = flow.parallel_waves().expect("acyclic");
        assert_eq!(waves.len(), 2, "edit wave, then place wave");
        assert!(waves.iter().all(|w| w.len() == 4));
    }

    #[test]
    fn fixture_max_parallelism_matches_figures() {
        // Fig. 6's two branches are explicitly parallel; Fig. 3 is a
        // single chain of width 1.
        assert_eq!(fig6(schema()).expect("fixture").max_parallelism(), Ok(2));
        assert_eq!(fig3(schema()).expect("fixture").max_parallelism(), Ok(1));
    }

    #[test]
    fn fig3_structure() {
        let flow = fig3(schema()).expect("fixture");
        assert_eq!(flow.len(), 6);
        flow.validate_for_execution().expect("complete");
        assert_eq!(flow.outputs().len(), 1);
    }

    #[test]
    fn fig4_variants_differ_in_construction_method() {
        let s = schema();
        let a = fig4_edited(s.clone()).expect("fixture");
        let b = fig4_extracted(s.clone()).expect("fixture");
        a.validate_for_execution().expect("complete");
        b.validate_for_execution().expect("complete");
        let names = |f: &TaskGraph| -> Vec<String> {
            f.nodes()
                .map(|(_, n)| s.entity(n.entity()).name().to_owned())
                .collect()
        };
        assert!(names(&a).contains(&"CircuitEditor".to_owned()));
        assert!(!names(&a).contains(&"Extractor".to_owned()));
        assert!(names(&b).contains(&"Extractor".to_owned()));
        assert!(!names(&b).contains(&"CircuitEditor".to_owned()));
    }

    #[test]
    fn fig5_has_reuse_and_multiple_outputs() {
        let s = schema();
        let flow = fig5(s.clone()).expect("fixture");
        flow.validate_for_execution().expect("complete");

        let outputs = flow.outputs();
        let names: Vec<&str> = outputs
            .iter()
            .map(|&o| s.entity(flow.node(o).expect("live").entity()).name())
            .collect();
        assert_eq!(outputs.len(), 3, "{names:?}");
        for n in ["PerformancePlot", "Verification", "ExtractionStatistics"] {
            assert!(names.contains(&n), "missing output {n}");
        }

        // Entity reuse: the netlist node feeds more than one consumer.
        let netlist = flow
            .nodes()
            .find(|(_, n)| s.entity(n.entity()).name() == "Netlist")
            .map(|(id, _)| id)
            .expect("netlist in flow");
        assert!(flow.consumers_of(netlist).count() >= 2);

        // Multiple outputs from one subtask: extractor feeds two targets.
        let extractor = flow
            .nodes()
            .find(|(_, n)| s.entity(n.entity()).name() == "Extractor")
            .map(|(id, _)| id)
            .expect("extractor in flow");
        assert_eq!(
            flow.consumers_of(extractor)
                .filter(|e| e.is_functional())
                .count(),
            2
        );
    }

    #[test]
    fn fig6_branches_are_disjoint() {
        let s = schema();
        let flow = fig6(s.clone()).expect("fixture");
        flow.validate_for_execution().expect("complete");
        // Remove the verification root conceptually: its two data inputs
        // must have disjoint ancestor sets.
        let verification = flow.outputs()[0];
        let inputs = flow.data_inputs_of(verification);
        assert_eq!(inputs.len(), 2);
        let a = flow.ancestors(inputs[0]);
        let b = flow.ancestors(inputs[1]);
        assert!(a.iter().all(|x| !b.contains(x)), "branches share nodes");
    }

    #[test]
    fn fig8_flows_share_view_entities() {
        let s = schema();
        let synth = fig8_synthesis(s.clone()).expect("fixture");
        let verif = fig8_verification(s.clone()).expect("fixture");
        synth.validate_for_execution().expect("complete");
        verif.validate_for_execution().expect("complete");
        // Synthesis consumes a netlist (transistor view) and produces a
        // layout (physical view); verification consumes both.
        let names = |f: &TaskGraph| -> Vec<String> {
            f.leaves()
                .into_iter()
                .map(|l| {
                    s.entity(f.node(l).expect("live").entity())
                        .name()
                        .to_owned()
                })
                .collect()
        };
        assert!(names(&synth).contains(&"Netlist".to_owned()));
        assert!(names(&verif).contains(&"Netlist".to_owned()));
        assert!(names(&verif).contains(&"Layout".to_owned()));
    }

    #[test]
    fn fixtures_work_on_the_odyssey_superset_schema() {
        let s = Arc::new(schemas::odyssey());
        fig3(s.clone()).expect("fig3");
        fig5(s.clone()).expect("fig5");
        fig6(s.clone()).expect("fig6");
        fig8_synthesis(s.clone()).expect("fig8a");
        fig8_verification(s).expect("fig8b");
    }
}
