//! Validation of task graphs against their schema.
//!
//! Graphs built exclusively through the checked operations
//! ([`TaskGraph::expand`] and friends) are valid by construction; these
//! checks exist for raw-built graphs (deserialization, baselines, the
//! "unchecked build, validate once" ablation) and as the executable-flow
//! gate used by the execution engine.

use std::collections::HashSet;

use hercules_schema::Dependency;

use crate::error::FlowError;
use crate::graph::TaskGraph;
use crate::node::NodeId;

impl TaskGraph {
    /// Structurally validates the flow:
    ///
    /// * the graph is acyclic;
    /// * no node has two functional edges;
    /// * no duplicate `(source, target, kind)` edges;
    /// * every incoming edge set of a node can be matched one-to-one to
    ///   distinct dependency arcs of the node's entity in the schema.
    ///
    /// # Errors
    ///
    /// Returns the first violation found; [`TaskGraph::validate_all`]
    /// collects every violation instead.
    pub fn validate(&self) -> Result<(), FlowError> {
        match self.validate_all().into_iter().next() {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// Runs every structural check of [`TaskGraph::validate`] to
    /// completion and returns *all* violations, in the same order
    /// `validate` would encounter them. An empty vector means the flow
    /// is structurally valid. This is the collector behind both the
    /// pass/fail gate and `herclint`'s exhaustive reporting.
    pub fn validate_all(&self) -> Vec<FlowError> {
        let mut out = Vec::new();
        if let Err(e) = self.topo_order() {
            out.push(e);
        }
        // Duplicate (source, target, kind) triples via a single hash-set
        // sweep: O(E) instead of the quadratic prefix rescans.
        let mut seen = HashSet::with_capacity(self.edge_count());
        for e in self.edges() {
            for end in [e.source(), e.target()] {
                if let Err(err) = self.node(end) {
                    out.push(err);
                }
            }
            if !seen.insert((e.source(), e.target(), e.kind())) {
                out.push(FlowError::DuplicateEdge(e.source(), e.target()));
            }
        }
        for id in self.node_ids() {
            let functional = self.producers_of(id).filter(|e| e.is_functional()).count();
            if functional > 1 {
                out.push(FlowError::DuplicateFunctionalEdge(id));
            }
            if let Err(e) = self.match_edges_to_deps(id) {
                out.push(e);
            }
        }
        out
    }

    /// Validates that the flow is structurally sound *and* ready to run:
    /// every interior (expanded) node must have all its required
    /// dependencies satisfied.
    ///
    /// # Errors
    ///
    /// As [`TaskGraph::validate`], plus
    /// [`FlowError::IncompleteExpansion`].
    pub fn validate_for_execution(&self) -> Result<(), FlowError> {
        match self.validate_for_execution_all().into_iter().next() {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// As [`TaskGraph::validate_all`], plus one
    /// [`FlowError::IncompleteExpansion`] per missing required
    /// dependency of every interior node.
    pub fn validate_for_execution_all(&self) -> Vec<FlowError> {
        let mut out = self.validate_all();
        for id in self.interior() {
            // Nodes whose edges cannot be matched were already reported.
            let Ok(missing) = self.missing_deps(id) else {
                continue;
            };
            let Ok(entity) = self.entity_of(id) else {
                continue;
            };
            for dep in missing {
                out.push(FlowError::IncompleteExpansion {
                    entity: self.schema().entity(entity).name().to_owned(),
                    missing: self.schema().entity(dep.source()).name().to_owned(),
                });
            }
        }
        out
    }

    /// Returns `true` if every required dependency of `id`'s entity has a
    /// matching producer edge.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::NodeNotFound`] for dead ids.
    pub fn is_fully_expanded(&self, id: NodeId) -> Result<bool, FlowError> {
        Ok(self.missing_deps(id)?.is_empty())
    }

    /// Returns the required dependencies of `id`'s entity that have no
    /// matching producer edge, in schema order.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::NodeNotFound`] for dead ids.
    pub fn missing_deps(&self, id: NodeId) -> Result<Vec<Dependency>, FlowError> {
        let entity = self.entity_of(id)?;
        let assignment = self.match_edges_to_deps(id)?;
        let deps = self.schema().deps_of(entity);
        Ok(deps
            .iter()
            .enumerate()
            .filter(|(di, d)| d.is_required() && !assignment.contains(&Some(*di)))
            .map(|(_, d)| **d)
            .collect())
    }

    /// Matches the incoming edges of `id` one-to-one to dependency arcs
    /// of its entity, preferring the most specific arc for each edge.
    /// Returns, per incoming edge (in edge order), the index of the arc
    /// it was assigned (into `deps_of(entity)`).
    ///
    /// Uses augmenting-path bipartite matching; edge and dependency
    /// counts per node are tiny.
    fn match_edges_to_deps(&self, id: NodeId) -> Result<Vec<Option<usize>>, FlowError> {
        let entity = self.entity_of(id)?;
        let schema = self.schema();
        let deps = schema.deps_of(entity);
        let incoming: Vec<_> = self.producers_of(id).collect();
        if incoming.is_empty() {
            return Ok(Vec::new());
        }

        // compat[e][d] = edge e could satisfy dep d.
        let mut compat = vec![Vec::new(); incoming.len()];
        for (ei, edge) in incoming.iter().enumerate() {
            let src_entity = self.entity_of(edge.source())?;
            for (di, dep) in deps.iter().enumerate() {
                if dep.kind() == edge.kind() && schema.is_subtype_of(src_entity, dep.source()) {
                    compat[ei].push(di);
                }
            }
            if compat[ei].is_empty() {
                return Err(FlowError::EdgeNotInSchema {
                    source: schema
                        .entity(self.entity_of(edge.source())?)
                        .name()
                        .to_owned(),
                    target: schema.entity(entity).name().to_owned(),
                });
            }
        }

        let mut dep_owner: Vec<Option<usize>> = vec![None; deps.len()];
        fn try_assign(
            ei: usize,
            compat: &[Vec<usize>],
            dep_owner: &mut [Option<usize>],
            visited: &mut [bool],
        ) -> bool {
            for &di in &compat[ei] {
                if visited[di] {
                    continue;
                }
                visited[di] = true;
                if dep_owner[di].is_none()
                    || try_assign(dep_owner[di].expect("checked"), compat, dep_owner, visited)
                {
                    dep_owner[di] = Some(ei);
                    return true;
                }
            }
            false
        }
        for (ei, edge) in incoming.iter().enumerate() {
            let mut visited = vec![false; deps.len()];
            if !try_assign(ei, &compat, &mut dep_owner, &mut visited) {
                return Err(FlowError::EdgeNotInSchema {
                    source: schema
                        .entity(self.entity_of(edge.source())?)
                        .name()
                        .to_owned(),
                    target: schema.entity(entity).name().to_owned(),
                });
            }
        }
        let mut assignment = vec![None; incoming.len()];
        for (di, owner) in dep_owner.iter().enumerate() {
            if let Some(ei) = owner {
                assignment[*ei] = Some(di);
            }
        }
        // Report which deps are used, indexed by edge: convert to
        // dep-index-per-edge for missing_deps' "used set" check.
        Ok(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::Expansion;
    use hercules_schema::{fixtures, DepKind, TaskSchema};
    use std::sync::Arc;

    fn fig1_arc() -> Arc<TaskSchema> {
        Arc::new(fixtures::fig1())
    }

    #[test]
    fn checked_construction_validates() {
        let schema = fig1_arc();
        let mut flow = TaskGraph::new(schema.clone());
        let plot = flow
            .seed(schema.require("PerformancePlot").expect("known"))
            .expect("ok");
        flow.expand_all(plot).expect("ok");
        flow.validate().expect("valid by construction");
        flow.validate_for_execution().expect("complete");
    }

    #[test]
    fn illegal_edge_is_rejected() {
        let schema = fig1_arc();
        let mut flow = TaskGraph::new(schema.clone());
        let stim = flow
            .add_node_raw(schema.require("Stimuli").expect("known"))
            .expect("ok");
        let plot = flow
            .add_node_raw(schema.require("PerformancePlot").expect("known"))
            .expect("ok");
        flow.add_edge_raw(stim, plot, DepKind::Data)
            .expect("raw ok");
        assert!(matches!(
            flow.validate().unwrap_err(),
            FlowError::EdgeNotInSchema { .. }
        ));
    }

    #[test]
    fn two_functional_edges_are_rejected() {
        let schema = fig1_arc();
        let mut flow = TaskGraph::new(schema.clone());
        let s1 = flow
            .add_node_raw(schema.require("Simulator").expect("known"))
            .expect("ok");
        let s2 = flow
            .add_node_raw(schema.require("Simulator").expect("known"))
            .expect("ok");
        let perf = flow
            .add_node_raw(schema.require("Performance").expect("known"))
            .expect("ok");
        flow.add_edge_raw(s1, perf, DepKind::Functional)
            .expect("ok");
        flow.add_edge_raw(s2, perf, DepKind::Functional)
            .expect("ok");
        assert!(matches!(
            flow.validate().unwrap_err(),
            FlowError::DuplicateFunctionalEdge(_)
        ));
    }

    #[test]
    fn duplicate_edges_are_rejected() {
        let schema = fig1_arc();
        let mut flow = TaskGraph::new(schema.clone());
        let perf = flow
            .add_node_raw(schema.require("Performance").expect("known"))
            .expect("ok");
        let plot = flow
            .add_node_raw(schema.require("PerformancePlot").expect("known"))
            .expect("ok");
        flow.add_edge_raw(perf, plot, DepKind::Data).expect("ok");
        flow.add_edge_raw(perf, plot, DepKind::Data).expect("ok");
        assert!(matches!(
            flow.validate().unwrap_err(),
            FlowError::DuplicateEdge(_, _)
        ));
    }

    #[test]
    fn two_edges_cannot_share_one_dep_slot() {
        // Performance has exactly one Stimuli dependency; two distinct
        // stimuli inputs must be rejected.
        let schema = fig1_arc();
        let mut flow = TaskGraph::new(schema.clone());
        let s1 = flow
            .add_node_raw(schema.require("Stimuli").expect("known"))
            .expect("ok");
        let s2 = flow
            .add_node_raw(schema.require("Stimuli").expect("known"))
            .expect("ok");
        let perf = flow
            .add_node_raw(schema.require("Performance").expect("known"))
            .expect("ok");
        flow.add_edge_raw(s1, perf, DepKind::Data).expect("ok");
        flow.add_edge_raw(s2, perf, DepKind::Data).expect("ok");
        assert!(matches!(
            flow.validate().unwrap_err(),
            FlowError::EdgeNotInSchema { .. }
        ));
    }

    #[test]
    fn matching_assigns_specific_and_general_netlists() {
        // Verification takes a Netlist and an ExtractedNetlist. Feed it
        // two ExtractedNetlist nodes: a perfect matching exists (one to
        // each slot) and validation must find it regardless of edge
        // order.
        let schema = fig1_arc();
        let mut flow = TaskGraph::new(schema.clone());
        let e1 = flow
            .add_node_raw(schema.require("ExtractedNetlist").expect("known"))
            .expect("ok");
        let e2 = flow
            .add_node_raw(schema.require("ExtractedNetlist").expect("known"))
            .expect("ok");
        let v = flow
            .add_node_raw(schema.require("Verification").expect("known"))
            .expect("ok");
        let verifier = flow
            .add_node_raw(schema.require("Verifier").expect("known"))
            .expect("ok");
        flow.add_edge_raw(verifier, v, DepKind::Functional)
            .expect("ok");
        flow.add_edge_raw(e1, v, DepKind::Data).expect("ok");
        flow.add_edge_raw(e2, v, DepKind::Data).expect("ok");
        flow.validate().expect("perfect matching exists");
        flow.validate_for_execution().expect("complete");
    }

    #[test]
    fn incomplete_interior_node_fails_execution_gate() {
        let schema = fig1_arc();
        let mut flow = TaskGraph::new(schema.clone());
        let sim = flow
            .add_node_raw(schema.require("Simulator").expect("known"))
            .expect("ok");
        let perf = flow
            .add_node_raw(schema.require("Performance").expect("known"))
            .expect("ok");
        flow.add_edge_raw(sim, perf, DepKind::Functional)
            .expect("ok");
        flow.validate().expect("structurally fine");
        assert!(matches!(
            flow.validate_for_execution().unwrap_err(),
            FlowError::IncompleteExpansion { .. }
        ));
        assert!(!flow.is_fully_expanded(perf).expect("live"));
        let missing = flow.missing_deps(perf).expect("live");
        assert_eq!(missing.len(), 2, "circuit + stimuli");
    }

    #[test]
    fn validate_all_collects_every_violation() {
        // One duplicate edge AND one illegal edge: the gate stops at the
        // first, the collector reports both.
        let schema = fig1_arc();
        let mut flow = TaskGraph::new(schema.clone());
        let perf = flow
            .add_node_raw(schema.require("Performance").expect("known"))
            .expect("ok");
        let plot = flow
            .add_node_raw(schema.require("PerformancePlot").expect("known"))
            .expect("ok");
        let stim = flow
            .add_node_raw(schema.require("Stimuli").expect("known"))
            .expect("ok");
        flow.add_edge_raw(perf, plot, DepKind::Data).expect("ok");
        flow.add_edge_raw(perf, plot, DepKind::Data).expect("ok");
        flow.add_edge_raw(stim, plot, DepKind::Data).expect("ok");
        let all = flow.validate_all();
        assert!(all
            .iter()
            .any(|e| matches!(e, FlowError::DuplicateEdge(_, _))));
        assert!(all
            .iter()
            .any(|e| matches!(e, FlowError::EdgeNotInSchema { .. })));
        assert_eq!(
            flow.validate().unwrap_err(),
            all[0],
            "gate reports the collector's first finding"
        );
    }

    #[test]
    fn execution_collector_reports_every_missing_dep() {
        let schema = fig1_arc();
        let mut flow = TaskGraph::new(schema.clone());
        let sim = flow
            .add_node_raw(schema.require("Simulator").expect("known"))
            .expect("ok");
        let perf = flow
            .add_node_raw(schema.require("Performance").expect("known"))
            .expect("ok");
        flow.add_edge_raw(sim, perf, DepKind::Functional)
            .expect("ok");
        let all = flow.validate_for_execution_all();
        let missing: Vec<_> = all
            .iter()
            .filter(|e| matches!(e, FlowError::IncompleteExpansion { .. }))
            .collect();
        assert_eq!(missing.len(), 2, "circuit + stimuli both reported");
    }

    #[test]
    fn optional_deps_are_not_required_for_execution() {
        let schema = fig1_arc();
        let mut flow = TaskGraph::new(schema.clone());
        let perf = flow
            .seed(schema.require("Performance").expect("known"))
            .expect("ok");
        flow.expand(perf).expect("ok");
        // SimulatorOptions (optional) was not included; still complete.
        assert!(flow.is_fully_expanded(perf).expect("live"));
        flow.validate_for_execution()
            .expect("complete without optional");
    }

    #[test]
    fn optional_dep_edge_validates_when_present() {
        let schema = fig1_arc();
        let mut flow = TaskGraph::new(schema.clone());
        let opts_ty = schema.require("SimulatorOptions").expect("known");
        let perf = flow
            .seed(schema.require("Performance").expect("known"))
            .expect("ok");
        flow.expand_with(perf, &Expansion::new().with_optional(opts_ty))
            .expect("ok");
        flow.validate_for_execution().expect("valid with optional");
        assert_eq!(flow.data_inputs_of(perf).len(), 3);
    }
}
