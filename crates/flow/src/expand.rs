//! The flow-building operations: seed, expand (up and down),
//! specialize, unexpand.
//!
//! These implement §3.2 of the paper: "Expand operations can be used to
//! incorporate further primitive tasks into a flow … Flows can be
//! expanded in either direction and can be of any depth."

use hercules_schema::{Dependency, EntityTypeId};

use crate::error::FlowError;
use crate::graph::TaskGraph;
use crate::node::{FlowEdge, NodeId};

/// Options controlling one expand operation.
///
/// The defaults reproduce the paper's plain `Expand` menu entry: required
/// dependencies only, every input created as a fresh node.
#[derive(Debug, Clone, Default)]
pub struct Expansion {
    /// Optional (dashed) dependencies to include, named by their source
    /// entity. E.g. include `Netlist` when expanding an `EditedNetlist`
    /// to model editing an *existing* netlist rather than starting fresh.
    pub include_optional: Vec<EntityTypeId>,
    /// Explicit node reuse: satisfy the dependency on the given source
    /// entity with an existing node. This is how Fig. 5's "reuse of an
    /// entity in several subtasks" is built.
    pub reuse: Vec<(EntityTypeId, NodeId)>,
    /// If `true`, any dependency without an explicit `reuse` entry is
    /// satisfied by an existing node of a compatible entity type when one
    /// exists (and creating the edge keeps the graph acyclic).
    pub reuse_existing: bool,
}

impl Expansion {
    /// Creates the default expansion (required deps, all-new nodes).
    pub fn new() -> Expansion {
        Expansion::default()
    }

    /// Includes the optional dependency on `entity`.
    pub fn with_optional(mut self, entity: EntityTypeId) -> Expansion {
        self.include_optional.push(entity);
        self
    }

    /// Reuses `node` for the dependency on `entity`.
    pub fn reusing(mut self, entity: EntityTypeId, node: NodeId) -> Expansion {
        self.reuse.push((entity, node));
        self
    }

    /// Enables opportunistic reuse of compatible existing nodes.
    pub fn reuse_existing(mut self) -> Expansion {
        self.reuse_existing = true;
        self
    }
}

impl TaskGraph {
    /// Starts (or extends) a flow with a single unconnected node of the
    /// given entity.
    ///
    /// This is the common entry point of all four design approaches
    /// (§3.4): the goal entity, a tool entity, a data entity — "an icon
    /// representing this entity then appears on the screen".
    ///
    /// # Errors
    ///
    /// Returns a schema error if `entity` is not declared in this flow's
    /// schema.
    pub fn seed(&mut self, entity: EntityTypeId) -> Result<NodeId, FlowError> {
        self.add_node_raw(entity)
    }

    /// Expands `target` with default options: adds the task that
    /// constructs it (tool node plus one fresh node per required data
    /// dependency).
    ///
    /// Returns the newly created node ids (tool first, then data inputs
    /// in schema order).
    ///
    /// # Errors
    ///
    /// * [`FlowError::AlreadyExpanded`] if the node has producer edges;
    /// * [`FlowError::ExpandNeedsSpecialization`] if its entity is
    ///   abstract (Fig. 4b: specialize `Netlist` first);
    /// * [`FlowError::NothingToExpand`] if its entity is primary.
    pub fn expand(&mut self, target: NodeId) -> Result<Vec<NodeId>, FlowError> {
        self.expand_with(target, &Expansion::default())
    }

    /// Expands `target` with explicit [`Expansion`] options.
    ///
    /// # Errors
    ///
    /// As [`TaskGraph::expand`], plus [`FlowError::ReuseTypeMismatch`]
    /// when a reused node's entity does not satisfy the dependency it was
    /// offered for.
    pub fn expand_with(
        &mut self,
        target: NodeId,
        options: &Expansion,
    ) -> Result<Vec<NodeId>, FlowError> {
        let entity = self.entity_of(target)?;
        if self.is_expanded(target) {
            return Err(FlowError::AlreadyExpanded(target));
        }
        if self.schema.is_abstract(entity) {
            return Err(FlowError::ExpandNeedsSpecialization {
                entity: self.schema.entity(entity).name().to_owned(),
            });
        }
        if self.schema.deps_of(entity).is_empty() {
            return Err(FlowError::NothingToExpand {
                entity: self.schema.entity(entity).name().to_owned(),
            });
        }
        self.satisfy_deps(target, entity, None, options)
    }

    /// Expands the flow *downward* from `source`: adds a new task whose
    /// product is `consumer` and which consumes `source` ("what can I
    /// make from this netlist?"). The consumer's remaining dependencies
    /// are satisfied like a normal expansion.
    ///
    /// Returns `(consumer_node, newly_created_inputs)`.
    ///
    /// # Errors
    ///
    /// * [`FlowError::NoDependencyPath`] if `consumer` has no dependency
    ///   on the source node's entity;
    /// * [`FlowError::ExpandNeedsSpecialization`] if `consumer` is
    ///   abstract.
    pub fn expand_down(
        &mut self,
        source: NodeId,
        consumer: EntityTypeId,
        options: &Expansion,
    ) -> Result<(NodeId, Vec<NodeId>), FlowError> {
        let source_entity = self.entity_of(source)?;
        if self.schema.get(consumer).is_none() {
            return Err(hercules_schema::SchemaError::UnknownEntityId(consumer).into());
        }
        if self.schema.is_abstract(consumer) {
            return Err(FlowError::ExpandNeedsSpecialization {
                entity: self.schema.entity(consumer).name().to_owned(),
            });
        }
        // Find the dependency of `consumer` that `source` satisfies;
        // prefer required arcs over optional ones, and among those the
        // most specific (fewest subtype hops from the source entity).
        let distance = |target: EntityTypeId| -> usize {
            let mut d = 0;
            let mut cur = source_entity;
            while cur != target {
                d += 1;
                cur = self
                    .schema
                    .entity(cur)
                    .supertype()
                    .expect("is_subtype_of checked");
            }
            d
        };
        let deps = self.schema.deps_of(consumer);
        let matched = deps
            .iter()
            .filter(|d| self.schema.is_subtype_of(source_entity, d.source()))
            .min_by_key(|d| (d.is_optional(), distance(d.source())))
            .copied()
            .copied()
            .ok_or_else(|| FlowError::NoDependencyPath {
                from: self.schema.entity(source_entity).name().to_owned(),
                to: self.schema.entity(consumer).name().to_owned(),
            })?;

        let consumer_node = self.add_node_raw(consumer)?;
        self.edges.push(FlowEdge {
            source,
            target: consumer_node,
            kind: matched.kind(),
        });
        let created = self.satisfy_deps(consumer_node, consumer, Some(matched), options)?;
        Ok((consumer_node, created))
    }

    /// Satisfies the dependencies of `target` (entity `entity`),
    /// skipping the already-satisfied `skip` arc if given. Returns newly
    /// created nodes.
    fn satisfy_deps(
        &mut self,
        target: NodeId,
        entity: EntityTypeId,
        skip: Option<Dependency>,
        options: &Expansion,
    ) -> Result<Vec<NodeId>, FlowError> {
        let mut created = Vec::new();
        let deps: Vec<Dependency> = self.schema.deps_of(entity).into_iter().copied().collect();
        let mut skipped = false;
        for dep in deps {
            if let Some(s) = skip {
                if !skipped && s == dep {
                    skipped = true;
                    continue;
                }
            }
            if dep.is_optional() && !options.include_optional.contains(&dep.source()) {
                continue;
            }
            let source_node = self.pick_source(target, &dep, options)?;
            let source_node = match source_node {
                Some(n) => n,
                None => {
                    let n = self.add_node_raw(dep.source())?;
                    self.nodes[n.index()]
                        .as_mut()
                        .expect("just added")
                        .created_by = Some(target);
                    created.push(n);
                    n
                }
            };
            self.edges.push(FlowEdge {
                source: source_node,
                target,
                kind: dep.kind(),
            });
        }
        Ok(created)
    }

    /// Chooses an existing node to satisfy `dep`, or `None` to create a
    /// fresh one.
    fn pick_source(
        &self,
        target: NodeId,
        dep: &Dependency,
        options: &Expansion,
    ) -> Result<Option<NodeId>, FlowError> {
        // Explicit reuse wins.
        for &(entity, node) in &options.reuse {
            if entity == dep.source() {
                let offered = self.entity_of(node)?;
                if !self.schema.is_subtype_of(offered, dep.source()) {
                    return Err(FlowError::ReuseTypeMismatch {
                        dep_source: self.schema.entity(dep.source()).name().to_owned(),
                        offered: self.schema.entity(offered).name().to_owned(),
                    });
                }
                if self.ancestors(node).contains(&target) {
                    return Err(FlowError::Cycle);
                }
                return Ok(Some(node));
            }
        }
        if options.reuse_existing {
            for (id, node) in self.nodes() {
                if id != target
                    && self.schema.is_subtype_of(node.entity(), dep.source())
                    && !self.ancestors(id).contains(&target)
                {
                    return Ok(Some(id));
                }
            }
        }
        Ok(None)
    }

    /// Specializes an unexpanded node to a subtype of its current entity
    /// (§3.2: "Specialization is the selection of an entity subtype so
    /// that an expand operation can be performed").
    ///
    /// # Errors
    ///
    /// * [`FlowError::SpecializeAfterExpand`] if the node already has
    ///   producer edges;
    /// * [`FlowError::NotASubtype`] if `subtype` is not a strict
    ///   transitive subtype of the node's current entity.
    pub fn specialize(&mut self, node: NodeId, subtype: EntityTypeId) -> Result<(), FlowError> {
        let current = self.entity_of(node)?;
        if self.is_expanded(node) {
            return Err(FlowError::SpecializeAfterExpand(node));
        }
        if self.schema.get(subtype).is_none() {
            return Err(hercules_schema::SchemaError::UnknownEntityId(subtype).into());
        }
        if subtype == current || !self.schema.is_subtype_of(subtype, current) {
            return Err(FlowError::NotASubtype {
                entity: self.schema.entity(current).name().to_owned(),
                requested: self.schema.entity(subtype).name().to_owned(),
            });
        }
        let slot = self.nodes[node.index()].as_mut().expect("checked live");
        if slot.declared.is_none() {
            slot.declared = Some(current);
        }
        slot.entity = subtype;
        Ok(())
    }

    /// Reverts a specialization, restoring the node's declared entity.
    ///
    /// # Errors
    ///
    /// * [`FlowError::NodeNotFound`] if the node is dead;
    /// * [`FlowError::SpecializeAfterExpand`] if it is expanded.
    pub fn generalize(&mut self, node: NodeId) -> Result<(), FlowError> {
        self.node(node)?;
        if self.is_expanded(node) {
            return Err(FlowError::SpecializeAfterExpand(node));
        }
        let slot = self.nodes[node.index()].as_mut().expect("checked live");
        if let Some(declared) = slot.declared.take() {
            slot.entity = declared;
        }
        Ok(())
    }

    /// Removes the task that constructs `node` (the `Unexpand` menu entry
    /// of Fig. 9): deletes its producer edges and garbage-collects input
    /// nodes that served no other task. Returns the removed node ids.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::NodeNotFound`] if `node` is dead.
    pub fn unexpand(&mut self, node: NodeId) -> Result<Vec<NodeId>, FlowError> {
        self.node(node)?;
        // Candidates for collection: nodes whose creation provenance
        // chains back to `node`'s expansion (directly or through other
        // candidates). Seeded and reused nodes are never collected.
        let mut candidates: Vec<NodeId> = Vec::new();
        loop {
            let mut changed = false;
            for (id, n) in self.nodes() {
                if candidates.contains(&id) {
                    continue;
                }
                if let Some(creator) = n.created_by() {
                    if creator == node || candidates.contains(&creator) {
                        candidates.push(id);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        self.edges.retain(|e| e.target != node);
        let mut removed = Vec::new();
        loop {
            let mut changed = false;
            for &c in &candidates {
                if self.nodes[c.index()].is_none() {
                    continue;
                }
                if self.consumers_of(c).next().is_none() {
                    self.edges.retain(|e| e.target != c);
                    self.nodes[c.index()] = None;
                    removed.push(c);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        removed.sort();
        Ok(removed)
    }

    /// Repeatedly expands every expandable node until the flow bottoms
    /// out at primary or abstract leaves. Optional dependencies are never
    /// followed, so this always terminates.
    ///
    /// Returns all newly created nodes.
    ///
    /// # Errors
    ///
    /// Propagates errors from the individual expansions; abstract and
    /// primary leaves are skipped rather than reported.
    pub fn expand_all(&mut self, from: NodeId) -> Result<Vec<NodeId>, FlowError> {
        self.node(from)?;
        let mut frontier = vec![from];
        let mut created_all = Vec::new();
        while let Some(next) = frontier.pop() {
            let entity = self.entity_of(next)?;
            if self.is_expanded(next)
                || self.schema.is_abstract(entity)
                || self.schema.deps_of(entity).is_empty()
            {
                continue;
            }
            let created = self.expand(next)?;
            frontier.extend_from_slice(&created);
            created_all.extend_from_slice(&created);
        }
        Ok(created_all)
    }

    /// Looks up an existing live node of exactly the given entity type.
    pub fn find_node(&self, entity: EntityTypeId) -> Option<NodeId> {
        self.nodes()
            .find(|(_, n)| n.entity() == entity)
            .map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_schema::fixtures;
    use std::sync::Arc;

    fn fig1_flow() -> (Arc<hercules_schema::TaskSchema>, TaskGraph) {
        let schema = Arc::new(fixtures::fig1());
        let flow = TaskGraph::new(schema.clone());
        (schema, flow)
    }

    #[test]
    fn expand_layout_creates_placer_task() {
        let (schema, mut flow) = fig1_flow();
        let layout = flow
            .seed(schema.require("Layout").expect("known"))
            .expect("ok");
        let created = flow.expand(layout).expect("expandable");
        assert_eq!(created.len(), 3, "placer + netlist + rules");
        assert_eq!(flow.name_of(flow.tool_of(layout).expect("tool")), "Placer");
        assert_eq!(flow.data_inputs_of(layout).len(), 2);
    }

    #[test]
    fn expanding_twice_fails() {
        let (schema, mut flow) = fig1_flow();
        let layout = flow
            .seed(schema.require("Layout").expect("known"))
            .expect("ok");
        flow.expand(layout).expect("first expand");
        assert_eq!(
            flow.expand(layout).unwrap_err(),
            FlowError::AlreadyExpanded(layout)
        );
    }

    #[test]
    fn abstract_entity_requires_specialization() {
        let (schema, mut flow) = fig1_flow();
        let netlist = flow
            .seed(schema.require("Netlist").expect("known"))
            .expect("ok");
        assert!(matches!(
            flow.expand(netlist).unwrap_err(),
            FlowError::ExpandNeedsSpecialization { .. }
        ));
        let extracted = schema.require("ExtractedNetlist").expect("known");
        flow.specialize(netlist, extracted).expect("subtype");
        let created = flow.expand(netlist).expect("now concrete");
        assert_eq!(created.len(), 2, "extractor + layout");
    }

    #[test]
    fn primary_entity_has_nothing_to_expand() {
        let (schema, mut flow) = fig1_flow();
        let stim = flow
            .seed(schema.require("Stimuli").expect("known"))
            .expect("ok");
        assert!(matches!(
            flow.expand(stim).unwrap_err(),
            FlowError::NothingToExpand { .. }
        ));
    }

    #[test]
    fn optional_dependency_included_on_request() {
        let (schema, mut flow) = fig1_flow();
        let netlist_ty = schema.require("Netlist").expect("known");
        let edited_ty = schema.require("EditedNetlist").expect("known");
        let node = flow.seed(edited_ty).expect("ok");
        // Plain expansion: editor only.
        let created = flow.expand(node).expect("ok");
        assert_eq!(created.len(), 1, "circuit editor only");
        flow.unexpand(node).expect("ok");
        // With the optional arc: editor + prior netlist.
        let created = flow
            .expand_with(node, &Expansion::new().with_optional(netlist_ty))
            .expect("ok");
        assert_eq!(created.len(), 2, "editor + prior netlist");
    }

    #[test]
    fn specialize_rejects_non_subtypes_and_expanded_nodes() {
        let (schema, mut flow) = fig1_flow();
        let netlist = flow
            .seed(schema.require("Netlist").expect("known"))
            .expect("ok");
        let layout_ty = schema.require("Layout").expect("known");
        assert!(matches!(
            flow.specialize(netlist, layout_ty).unwrap_err(),
            FlowError::NotASubtype { .. }
        ));
        // Self-specialization is also rejected.
        let netlist_ty = schema.require("Netlist").expect("known");
        assert!(matches!(
            flow.specialize(netlist, netlist_ty).unwrap_err(),
            FlowError::NotASubtype { .. }
        ));

        let layout = flow.seed(layout_ty).expect("ok");
        flow.expand(layout).expect("ok");
        let edited = schema.require("EditedNetlist").expect("known");
        let err = flow.specialize(layout, edited).unwrap_err();
        assert!(matches!(
            err,
            FlowError::SpecializeAfterExpand(_) | FlowError::NotASubtype { .. }
        ));
    }

    #[test]
    fn generalize_restores_declared_entity() {
        let (schema, mut flow) = fig1_flow();
        let netlist_ty = schema.require("Netlist").expect("known");
        let extracted_ty = schema.require("ExtractedNetlist").expect("known");
        let node = flow.seed(netlist_ty).expect("ok");
        flow.specialize(node, extracted_ty).expect("ok");
        assert_eq!(flow.entity_of(node).expect("live"), extracted_ty);
        assert!(flow.node(node).expect("live").is_specialized());
        flow.generalize(node).expect("ok");
        assert_eq!(flow.entity_of(node).expect("live"), netlist_ty);
        assert!(!flow.node(node).expect("live").is_specialized());
    }

    #[test]
    fn unexpand_garbage_collects_unshared_inputs() {
        let (schema, mut flow) = fig1_flow();
        let layout = flow
            .seed(schema.require("Layout").expect("known"))
            .expect("ok");
        flow.expand(layout).expect("ok");
        assert_eq!(flow.len(), 4);
        let removed = flow.unexpand(layout).expect("ok");
        assert_eq!(removed.len(), 3);
        assert_eq!(flow.len(), 1);
        assert!(!flow.is_expanded(layout));
    }

    #[test]
    fn unexpand_keeps_shared_inputs() {
        let (schema, mut flow) = fig1_flow();
        let perf_ty = schema.require("Performance").expect("known");
        let plot_ty = schema.require("PerformancePlot").expect("known");
        let perf = flow.seed(perf_ty).expect("ok");
        flow.expand(perf).expect("ok");
        // Second consumer of the same Performance node.
        let (plot, _) = flow
            .expand_down(perf, plot_ty, &Expansion::new())
            .expect("ok");
        // Unexpanding the plot must not delete perf (it is an output of
        // its own task and has producer edges).
        let removed = flow.unexpand(plot).expect("ok");
        assert_eq!(removed.len(), 1, "only the plotter tool node");
        assert!(flow.node(perf).is_ok());
    }

    #[test]
    fn expand_down_finds_the_dependency() {
        let (schema, mut flow) = fig1_flow();
        let perf = flow
            .seed(schema.require("Performance").expect("known"))
            .expect("ok");
        let plot_ty = schema.require("PerformancePlot").expect("known");
        let (plot, created) = flow
            .expand_down(perf, plot_ty, &Expansion::new())
            .expect("ok");
        assert_eq!(created.len(), 1, "plotter tool");
        assert_eq!(flow.data_inputs_of(plot), vec![perf]);
        assert_eq!(flow.outputs(), vec![plot]);
    }

    #[test]
    fn expand_down_rejects_unrelated_entities() {
        let (schema, mut flow) = fig1_flow();
        let stim = flow
            .seed(schema.require("Stimuli").expect("known"))
            .expect("ok");
        let plot_ty = schema.require("PerformancePlot").expect("known");
        assert!(matches!(
            flow.expand_down(stim, plot_ty, &Expansion::new())
                .unwrap_err(),
            FlowError::NoDependencyPath { .. }
        ));
    }

    #[test]
    fn expand_down_accepts_subtype_sources() {
        // An ExtractedNetlist node can feed a Verification's plain
        // Netlist dependency slot — but the required ExtractedNetlist arc
        // is matched first because both are required; check that *some*
        // arc matched and the graph is valid.
        let (schema, mut flow) = fig1_flow();
        let ext = flow
            .seed(schema.require("ExtractedNetlist").expect("known"))
            .expect("ok");
        let verif_ty = schema.require("Verification").expect("known");
        let (verif, created) = flow
            .expand_down(ext, verif_ty, &Expansion::new())
            .expect("ok");
        // Created: verifier tool + the remaining netlist input.
        assert_eq!(created.len(), 2);
        assert!(flow.data_inputs_of(verif).contains(&ext));
    }

    #[test]
    fn explicit_reuse_shares_a_node() {
        // Fig. 5: the same Circuit feeds several subtasks.
        let (schema, mut flow) = fig1_flow();
        let circuit_ty = schema.require("Circuit").expect("known");
        let perf_ty = schema.require("Performance").expect("known");
        let cct = flow.seed(circuit_ty).expect("ok");
        let p1 = flow.seed(perf_ty).expect("ok");
        let p2 = flow.seed(perf_ty).expect("ok");
        flow.expand_with(p1, &Expansion::new().reusing(circuit_ty, cct))
            .expect("ok");
        flow.expand_with(p2, &Expansion::new().reusing(circuit_ty, cct))
            .expect("ok");
        assert_eq!(flow.consumers_of(cct).count(), 2, "circuit reused twice");
    }

    #[test]
    fn reuse_type_mismatch_is_rejected() {
        let (schema, mut flow) = fig1_flow();
        let stim_ty = schema.require("Stimuli").expect("known");
        let circuit_ty = schema.require("Circuit").expect("known");
        let perf_ty = schema.require("Performance").expect("known");
        let stim = flow.seed(stim_ty).expect("ok");
        let perf = flow.seed(perf_ty).expect("ok");
        assert!(matches!(
            flow.expand_with(perf, &Expansion::new().reusing(circuit_ty, stim))
                .unwrap_err(),
            FlowError::ReuseTypeMismatch { .. }
        ));
    }

    #[test]
    fn opportunistic_reuse_shares_compatible_nodes() {
        let (schema, mut flow) = fig1_flow();
        let stim_ty = schema.require("Stimuli").expect("known");
        let perf_ty = schema.require("Performance").expect("known");
        let stim = flow.seed(stim_ty).expect("ok");
        let perf = flow.seed(perf_ty).expect("ok");
        let created = flow
            .expand_with(perf, &Expansion::new().reuse_existing())
            .expect("ok");
        // Stimuli was reused; simulator + circuit were created.
        assert!(created.iter().all(|&n| n != stim));
        assert!(flow.data_inputs_of(perf).contains(&stim));
    }

    #[test]
    fn expand_all_reaches_primary_leaves() {
        let (schema, mut flow) = fig1_flow();
        let plot = flow
            .seed(schema.require("PerformancePlot").expect("known"))
            .expect("ok");
        flow.expand_all(plot).expect("ok");
        // Leaves are primaries or abstract entities awaiting
        // specialization.
        for leaf in flow.leaves() {
            let e = flow.entity_of(leaf).expect("live");
            assert!(
                schema.is_primary(e) || schema.is_abstract(e) || schema.deps_of(e).is_empty(),
                "unexpected leaf {}",
                schema.entity(e).name()
            );
        }
        assert!(flow.len() > 5, "deep flow built");
        assert!(flow.topo_order().is_ok());
    }

    #[test]
    fn find_node_locates_exact_entity() {
        let (schema, mut flow) = fig1_flow();
        let stim_ty = schema.require("Stimuli").expect("known");
        assert!(flow.find_node(stim_ty).is_none());
        let stim = flow.seed(stim_ty).expect("ok");
        assert_eq!(flow.find_node(stim_ty), Some(stim));
    }

    #[test]
    fn composite_expansion_adds_components_without_tool() {
        let (schema, mut flow) = fig1_flow();
        let cct = flow
            .seed(schema.require("Circuit").expect("known"))
            .expect("ok");
        let created = flow.expand(cct).expect("composite expands");
        assert_eq!(created.len(), 2, "device models + netlist");
        assert!(flow.tool_of(cct).is_none(), "implicit composition function");
    }
}
