//! Textual renderings of task graphs.
//!
//! Footnote 2 of the paper: "Our representation of a flow is analogous
//! to the Lisp representation of a function, whereas a traditional
//! flowmap is analogous to the C or Pascal representation. For example,
//! we may write Fig. 3b as `placement = (placer, (circuit_editor,
//! circuit), placement_rules)` whereas Fig. 3a may be written as
//! `placement = placer(circuit_editor(circuit), placement_rules)`."
//! [`to_sexpr`] and [`to_call`] produce exactly those two forms.

use std::fmt::Write as _;

use crate::error::FlowError;
use crate::graph::TaskGraph;
use crate::node::NodeId;

fn snake(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Renders the flow rooted at `node` in the paper's Lisp-like task-graph
/// form: `(tool, input…)`, with leaves as bare names.
///
/// # Errors
///
/// Returns [`FlowError::NodeNotFound`] for dead nodes and
/// [`FlowError::Cycle`] if recursion detects a cycle.
///
/// # Examples
///
/// ```
/// use hercules_flow::{fixtures, render};
/// use hercules_schema::fixtures as schemas;
///
/// # fn main() -> Result<(), hercules_flow::FlowError> {
/// let schema = std::sync::Arc::new(schemas::fig1());
/// let flow = fixtures::fig3(schema)?;
/// let root = flow.outputs()[0];
/// assert_eq!(
///     render::to_sexpr(&flow, root)?,
///     "(placer, (circuit_editor, netlist), placement_rules)"
/// );
/// # Ok(())
/// # }
/// ```
pub fn to_sexpr(flow: &TaskGraph, node: NodeId) -> Result<String, FlowError> {
    let mut depth = 0usize;
    sexpr_inner(flow, node, &mut depth)
}

fn sexpr_inner(flow: &TaskGraph, node: NodeId, depth: &mut usize) -> Result<String, FlowError> {
    *depth += 1;
    if *depth > flow.len() + 1 {
        return Err(FlowError::Cycle);
    }
    let name = snake(flow.schema().entity(flow.entity_of(node)?).name());
    if !flow.is_expanded(node) {
        *depth -= 1;
        return Ok(name);
    }
    let mut parts = Vec::new();
    match flow.tool_of(node) {
        Some(t) => parts.push(sexpr_inner(flow, t, depth)?),
        None => parts.push("compose".to_owned()),
    }
    for input in flow.data_inputs_of(node) {
        parts.push(sexpr_inner(flow, input, depth)?);
    }
    *depth -= 1;
    Ok(format!("({})", parts.join(", ")))
}

/// Renders the flow rooted at `node` in the traditional C-like flowmap
/// form: `tool(input…)`. A constructed tool is parenthesized:
/// `(simulator_compiler(netlist))(stimuli)`.
///
/// # Errors
///
/// As [`to_sexpr`].
pub fn to_call(flow: &TaskGraph, node: NodeId) -> Result<String, FlowError> {
    let mut depth = 0usize;
    call_inner(flow, node, &mut depth)
}

fn call_inner(flow: &TaskGraph, node: NodeId, depth: &mut usize) -> Result<String, FlowError> {
    *depth += 1;
    if *depth > flow.len() + 1 {
        return Err(FlowError::Cycle);
    }
    let name = snake(flow.schema().entity(flow.entity_of(node)?).name());
    if !flow.is_expanded(node) {
        *depth -= 1;
        return Ok(name);
    }
    let tool_expr = match flow.tool_of(node) {
        Some(t) => {
            let e = call_inner(flow, t, depth)?;
            if flow.is_expanded(t) {
                format!("({e})")
            } else {
                e
            }
        }
        None => "compose".to_owned(),
    };
    let inputs: Result<Vec<String>, FlowError> = flow
        .data_inputs_of(node)
        .into_iter()
        .map(|i| call_inner(flow, i, depth))
        .collect();
    *depth -= 1;
    Ok(format!("{tool_expr}({})", inputs?.join(", ")))
}

/// Renders the whole flow as an indented text tree, the form the
/// Hercules task window displays (Fig. 9a).
pub fn to_text(flow: &TaskGraph) -> String {
    let mut out = String::new();
    let mut outputs = flow.outputs();
    outputs.sort();
    for root in outputs {
        render_tree(flow, root, 0, &mut out, &mut Vec::new());
    }
    out
}

fn render_tree(
    flow: &TaskGraph,
    node: NodeId,
    indent: usize,
    out: &mut String,
    path: &mut Vec<NodeId>,
) {
    let name = flow
        .node(node)
        .map(|n| flow.schema().entity(n.entity()).name().to_owned())
        .unwrap_or_else(|_| "<dead>".to_owned());
    let marker = if flow.is_expanded(node) { "" } else { " *" };
    let _ = writeln!(out, "{}{name}{marker}", "  ".repeat(indent));
    if path.contains(&node) {
        let _ = writeln!(out, "{}<cycle>", "  ".repeat(indent + 1));
        return;
    }
    path.push(node);
    if let Some(t) = flow.tool_of(node) {
        let _ = write!(out, "{}f: ", "  ".repeat(indent + 1));
        let mut sub = String::new();
        render_tree(flow, t, 0, &mut sub, path);
        out.push_str(&indent_tail(&sub, indent + 1));
    }
    for input in flow.data_inputs_of(node) {
        let _ = write!(out, "{}d: ", "  ".repeat(indent + 1));
        let mut sub = String::new();
        render_tree(flow, input, 0, &mut sub, path);
        out.push_str(&indent_tail(&sub, indent + 1));
    }
    path.pop();
}

fn indent_tail(s: &str, indent: usize) -> String {
    let mut lines = s.lines();
    let mut out = String::new();
    if let Some(first) = lines.next() {
        out.push_str(first);
        out.push('\n');
    }
    for line in lines {
        out.push_str(&"  ".repeat(indent));
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Renders the task graph as a Graphviz digraph (nodes labelled with
/// entity names, `f`/`d` edge labels, leaves drawn dashed to show they
/// await instantiation).
pub fn to_dot(flow: &TaskGraph) -> String {
    let mut out = String::from("digraph task_graph {\n  rankdir=BT;\n");
    for (id, node) in flow.nodes() {
        let name = flow.schema().entity(node.entity()).name();
        let style = if flow.is_expanded(id) {
            "solid"
        } else {
            "dashed"
        };
        let _ = writeln!(out, "  {id} [label=\"{name}\", style={style}];");
    }
    for e in flow.edges() {
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\"];",
            e.source(),
            e.target(),
            e.kind()
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_schema::fixtures as schemas;
    use std::sync::Arc;

    #[test]
    fn snake_case_conversion() {
        assert_eq!(snake("PerformancePlot"), "performance_plot");
        assert_eq!(snake("Netlist"), "netlist");
        assert_eq!(snake("COSMOS"), "c_o_s_m_o_s");
    }

    #[test]
    fn sexpr_and_call_agree_with_footnote_2() {
        let schema = Arc::new(schemas::fig1());
        let flow = crate::fixtures::fig3(schema).expect("fixture");
        let root = flow.outputs()[0];
        assert_eq!(
            to_sexpr(&flow, root).expect("render"),
            "(placer, (circuit_editor, netlist), placement_rules)"
        );
        assert_eq!(
            to_call(&flow, root).expect("render"),
            "placer(circuit_editor(netlist), placement_rules)"
        );
    }

    #[test]
    fn constructed_tool_is_parenthesized_in_call_form() {
        let schema = Arc::new(schemas::fig2());
        let mut flow = TaskGraph::new(schema.clone());
        let sim = flow
            .seed(schema.require("SwitchSimulation").expect("known"))
            .expect("ok");
        flow.expand_all(sim).expect("ok");
        let call = to_call(&flow, sim).expect("render");
        assert_eq!(call, "(simulator_compiler(netlist))(stimuli)");
        let sexpr = to_sexpr(&flow, sim).expect("render");
        assert_eq!(sexpr, "((simulator_compiler, netlist), stimuli)");
    }

    #[test]
    fn text_tree_marks_unexpanded_leaves() {
        let schema = Arc::new(schemas::fig1());
        let mut flow = TaskGraph::new(schema.clone());
        let perf = flow
            .seed(schema.require("Performance").expect("known"))
            .expect("ok");
        flow.expand(perf).expect("ok");
        let text = to_text(&flow);
        assert!(text.contains("Performance\n"));
        assert!(text.contains("Simulator *"), "leaf marked with *");
        assert!(text.contains("f: "));
        assert!(text.contains("d: "));
    }

    #[test]
    fn dot_output_shape() {
        let schema = Arc::new(schemas::fig1());
        let mut flow = TaskGraph::new(schema.clone());
        let perf = flow
            .seed(schema.require("Performance").expect("known"))
            .expect("ok");
        flow.expand(perf).expect("ok");
        let dot = to_dot(&flow);
        assert!(dot.starts_with("digraph task_graph {"));
        assert_eq!(dot.matches("->").count(), flow.edge_count());
        assert!(dot.contains("style=dashed"));
    }
}
