//! Dynamically defined flows: task graphs built on demand.
//!
//! This crate implements §3.2 of Sutton, Brockman & Director, *"Design
//! Management Using Dynamically Defined Flows"* (DAC 1993): a
//! **dynamically defined flow** is "a sequence of primitive tasks
//! (forming a complex task) which is generated, on demand, by the user
//! of the design system", represented as a **task graph** — a DAG whose
//! nodes are occurrences of schema entities and whose edges are
//! dependencies.
//!
//! Rather than selecting from fixed, predefined flows (the "flow
//! straight-jacket" of earlier systems), the designer *grows* a flow:
//!
//! * [`TaskGraph::seed`] places a first entity — a goal, a tool, or a
//!   piece of data, giving the four design approaches of §3.4 one common
//!   structure;
//! * [`TaskGraph::expand`] incorporates the task that constructs a node
//!   (tool + inputs); [`TaskGraph::expand_down`] grows the flow in the
//!   other direction ("what can I make from this?");
//! * [`TaskGraph::specialize`] picks a subtype so an abstract entity can
//!   be expanded (Fig. 4);
//! * [`Expansion`] options include optional (dashed) dependencies and
//!   reuse existing nodes, enabling Fig. 5's entity reuse and
//!   multi-output subtasks;
//! * [`TaskGraph::unexpand`] removes a task again (the `Unexpand` menu of
//!   Fig. 9).
//!
//! The traditional bipartite flow-diagram view (Fig. 3a) is available
//! through [`FlowDiagram`], the Lisp/C textual forms of footnote 2
//! through [`render::to_sexpr`] and [`render::to_call`], and the
//! plan-based flow library through [`FlowCatalog`].
//!
//! # Examples
//!
//! ```
//! use hercules_flow::TaskGraph;
//! use hercules_schema::fixtures;
//!
//! # fn main() -> Result<(), hercules_flow::FlowError> {
//! let schema = std::sync::Arc::new(fixtures::fig1());
//! let mut flow = TaskGraph::new(schema.clone());
//!
//! // Goal-based: start from the Performance we want.
//! let perf = flow.seed(schema.require("Performance")?)?;
//! flow.expand(perf)?; // simulator, circuit, stimuli
//! flow.validate_for_execution()?;
//! assert_eq!(flow.leaves().len(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bipartite;
mod catalog;
mod effects;
mod error;
mod expand;
mod graph;
mod menu;
mod node;
mod spec;
mod validate;

pub mod fixtures;
pub mod render;

pub use bipartite::{Activity, FlowDiagram};
pub use catalog::{CatalogEntry, FlowCatalog};
pub use effects::{declared_reads, FlowEffects, NodeEffects};
pub use error::FlowError;
pub use expand::Expansion;
pub use graph::TaskGraph;
pub use menu::NodeMenu;
pub use node::{FlowEdge, FlowNode, NodeId};
pub use spec::{FlowEdgeSpec, FlowNodeSpec, FlowSpec};
