//! Core storage and structural queries of a task graph.

use std::sync::Arc;

use hercules_schema::{DepKind, EntityTypeId, TaskSchema};

use crate::error::FlowError;
use crate::node::{FlowEdge, FlowNode, NodeId};

/// A dynamically defined flow, represented as a task graph (§3.2).
///
/// "A task graph is a directed acyclic graph, with each node in the graph
/// corresponding to an entity in the task schema, and each edge
/// corresponding to a dependency." The graph is a *temporary* structure
/// the designer builds up on demand, subject to the rules of the schema
/// it was created against.
///
/// # Examples
///
/// Building the Fig. 3b flow `placement = placer(circuit_editor(circuit),
/// placement_rules)`:
///
/// ```
/// use hercules_flow::TaskGraph;
/// use hercules_schema::fixtures;
///
/// # fn main() -> Result<(), hercules_flow::FlowError> {
/// let schema = std::sync::Arc::new(fixtures::fig1());
/// let mut flow = TaskGraph::new(schema.clone());
/// let layout = flow.seed(schema.require("Layout")?)?;
/// let added = flow.expand(layout)?;          // placer, netlist, rules
/// assert_eq!(added.len(), 3);
/// assert_eq!(flow.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TaskGraph {
    pub(crate) schema: Arc<TaskSchema>,
    /// Node slots; `None` is a tombstone left by removal.
    pub(crate) nodes: Vec<Option<FlowNode>>,
    pub(crate) edges: Vec<FlowEdge>,
}

impl TaskGraph {
    /// Creates an empty flow over the given schema.
    pub fn new(schema: Arc<TaskSchema>) -> TaskGraph {
        TaskGraph {
            schema,
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Returns the schema this flow was built against.
    pub fn schema(&self) -> &Arc<TaskSchema> {
        &self.schema
    }

    /// Returns the number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.iter().flatten().count()
    }

    /// Returns `true` if the flow has no live nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns the node with the given id, or an error if it was removed
    /// or never existed.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::NodeNotFound`] for dead or out-of-range ids.
    pub fn node(&self, id: NodeId) -> Result<&FlowNode, FlowError> {
        self.nodes
            .get(id.index())
            .and_then(Option::as_ref)
            .ok_or(FlowError::NodeNotFound(id))
    }

    /// Returns the current entity type of a node.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::NodeNotFound`] for dead or out-of-range ids.
    pub fn entity_of(&self, id: NodeId) -> Result<EntityTypeId, FlowError> {
        Ok(self.node(id)?.entity())
    }

    /// Returns the display name of a node's entity, for rendering.
    #[cfg(test)]
    pub(crate) fn name_of(&self, id: NodeId) -> &str {
        match self.nodes.get(id.index()).and_then(Option::as_ref) {
            Some(n) => self.schema.entity(n.entity()).name(),
            None => "<dead>",
        }
    }

    /// Iterates over live node ids in creation order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|_| NodeId::from_index(i)))
    }

    /// Iterates over live `(id, node)` pairs in creation order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &FlowNode)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|node| (NodeId::from_index(i), node)))
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = &FlowEdge> + '_ {
        self.edges.iter()
    }

    /// Returns the incoming (producer) edges of `id`: the tool and data
    /// inputs of the task that constructs it.
    pub fn producers_of(&self, id: NodeId) -> impl Iterator<Item = &FlowEdge> + '_ {
        self.edges.iter().filter(move |e| e.target == id)
    }

    /// Returns the outgoing (consumer) edges of `id`: the tasks this node
    /// feeds.
    pub fn consumers_of(&self, id: NodeId) -> impl Iterator<Item = &FlowEdge> + '_ {
        self.edges.iter().filter(move |e| e.source == id)
    }

    /// Returns the node supplying the tool for `id`'s task, if expanded.
    pub fn tool_of(&self, id: NodeId) -> Option<NodeId> {
        self.producers_of(id)
            .find(|e| e.is_functional())
            .map(FlowEdge::source)
    }

    /// Returns the data-input nodes of `id`'s task.
    pub fn data_inputs_of(&self, id: NodeId) -> Vec<NodeId> {
        self.producers_of(id)
            .filter(|e| e.is_data())
            .map(FlowEdge::source)
            .collect()
    }

    /// Returns `true` if `id` has at least one producer edge, i.e. the
    /// flow contains the task that constructs it.
    pub fn is_expanded(&self, id: NodeId) -> bool {
        self.producers_of(id).next().is_some()
    }

    /// Returns the *leaf* nodes: nodes with no producer edges. Before a
    /// flow can run, each leaf must be bound to an instance from the
    /// design database (§3.2: "the entities can be instantiated (an
    /// instance selected for each leaf node) and the task executed").
    pub fn leaves(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| !self.is_expanded(id))
            .collect()
    }

    /// Returns the *output* nodes: nodes that feed no other task. A flow
    /// may have several outputs (Fig. 5 shows "the production of multiple
    /// outputs").
    pub fn outputs(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| self.consumers_of(id).next().is_none())
            .collect()
    }

    /// Returns the interior (non-leaf) nodes: those the flow will
    /// construct by executing tasks.
    pub fn interior(&self) -> Vec<NodeId> {
        self.node_ids().filter(|&id| self.is_expanded(id)).collect()
    }

    /// Decomposes the interior nodes into *parallel waves*: level sets
    /// of the task DAG, where every node in wave *k* depends only on
    /// leaves and on nodes of waves `< k`. This is the schedule a
    /// maximally parallel executor follows, and the shape `profile`
    /// compares a measured run against.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Cycle`] if raw edits introduced a cycle.
    pub fn parallel_waves(&self) -> Result<Vec<Vec<NodeId>>, FlowError> {
        let mut level = vec![0usize; self.nodes.len()];
        let mut waves: Vec<Vec<NodeId>> = Vec::new();
        for id in self.topo_order()? {
            if !self.is_expanded(id) {
                continue;
            }
            let wave = self
                .producers_of(id)
                .map(|e| {
                    let src = e.source.index();
                    if self.is_expanded(e.source) {
                        level[src] + 1
                    } else {
                        0
                    }
                })
                .max()
                .unwrap_or(0);
            level[id.index()] = wave;
            if waves.len() <= wave {
                waves.resize(wave + 1, Vec::new());
            }
            waves[wave].push(id);
        }
        for wave in &mut waves {
            wave.sort();
        }
        Ok(waves)
    }

    /// Returns the schema-theoretic maximum parallelism of this flow:
    /// the widest [`parallel_waves`](TaskGraph::parallel_waves) level —
    /// how many constructed nodes could be in flight at once with
    /// unlimited workers. (An executor that groups shared-tool subtasks
    /// may need fewer workers; it can never profitably use more.)
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Cycle`] if raw edits introduced a cycle.
    pub fn max_parallelism(&self) -> Result<usize, FlowError> {
        Ok(self
            .parallel_waves()?
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0))
    }

    /// Returns a topological order of the live nodes (inputs before the
    /// tasks that consume them).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Cycle`] if raw edits introduced a cycle;
    /// graphs built only through the checked operations are always
    /// acyclic.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, FlowError> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut alive = 0usize;
        for id in self.node_ids() {
            alive += 1;
            let _ = id;
        }
        for e in &self.edges {
            indegree[e.target.index()] += 1;
        }
        let mut ready: Vec<NodeId> = self
            .node_ids()
            .filter(|id| indegree[id.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(alive);
        while let Some(id) = ready.pop() {
            order.push(id);
            for e in self.consumers_of(id) {
                let t = e.target.index();
                indegree[t] -= 1;
                if indegree[t] == 0 {
                    ready.push(e.target);
                }
            }
        }
        if order.len() == alive {
            Ok(order)
        } else {
            Err(FlowError::Cycle)
        }
    }

    /// Returns the ancestor closure of `id` (its task and, recursively,
    /// everything those tasks need), including `id` itself.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![id];
        let mut out = Vec::new();
        while let Some(cur) = stack.pop() {
            if seen[cur.index()] {
                continue;
            }
            seen[cur.index()] = true;
            out.push(cur);
            for e in self.producers_of(cur) {
                stack.push(e.source);
            }
        }
        out
    }

    /// Extracts the sub-flow rooted at `id`: a new task graph containing
    /// `id` and its ancestor closure. "A subflow may be run at any stage
    /// as long as its dependencies are satisfied independently of the
    /// remainder of the flow" (§4.1).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::NodeNotFound`] if `id` is dead.
    ///
    /// The returned graph's node ids are fresh; the second return value
    /// maps old ids to new ones.
    pub fn subflow(&self, id: NodeId) -> Result<(TaskGraph, Vec<(NodeId, NodeId)>), FlowError> {
        self.node(id)?;
        let mut keep = self.ancestors(id);
        keep.sort();
        let mut sub = TaskGraph::new(self.schema.clone());
        let mut mapping = Vec::with_capacity(keep.len());
        for &old in &keep {
            let node = self.node(old)?.clone();
            let new = NodeId::from_index(sub.nodes.len());
            sub.nodes.push(Some(node));
            mapping.push((old, new));
        }
        let map = |old: NodeId| mapping.iter().find(|(o, _)| *o == old).map(|(_, n)| *n);
        for e in &self.edges {
            if let (Some(s), Some(t)) = (map(e.source), map(e.target)) {
                sub.edges.push(FlowEdge {
                    source: s,
                    target: t,
                    kind: e.kind,
                });
            }
        }
        Ok((sub, mapping))
    }

    /// Partitions the live nodes into weakly connected components —
    /// the "disjoint branches" that Fig. 6 executes in parallel.
    pub fn components(&self) -> Vec<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut comp = vec![usize::MAX; n];
        let mut next = 0usize;
        for start in self.node_ids() {
            if comp[start.index()] != usize::MAX {
                continue;
            }
            let c = next;
            next += 1;
            let mut stack = vec![start];
            while let Some(cur) = stack.pop() {
                if comp[cur.index()] != usize::MAX {
                    continue;
                }
                comp[cur.index()] = c;
                for e in &self.edges {
                    if e.source == cur {
                        stack.push(e.target);
                    } else if e.target == cur {
                        stack.push(e.source);
                    }
                }
            }
        }
        let mut out = vec![Vec::new(); next];
        for id in self.node_ids() {
            out[comp[id.index()]].push(id);
        }
        out
    }

    // ------------------------------------------------------------------
    // Raw (unchecked) construction, used by deserialization, the
    // baselines and the "unchecked build then validate" ablation.
    // ------------------------------------------------------------------

    /// Adds a node of the given entity without consulting the schema's
    /// expansion rules. The entity id must belong to the flow's schema.
    ///
    /// # Errors
    ///
    /// Returns a schema error if `entity` is out of range.
    pub fn add_node_raw(&mut self, entity: EntityTypeId) -> Result<NodeId, FlowError> {
        if self.schema.get(entity).is_none() {
            return Err(hercules_schema::SchemaError::UnknownEntityId(entity).into());
        }
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Some(FlowNode {
            entity,
            declared: None,
            created_by: None,
        }));
        Ok(id)
    }

    /// Adds an edge without consulting the schema. Dangling endpoints are
    /// still rejected.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::NodeNotFound`] for dead endpoints.
    pub fn add_edge_raw(
        &mut self,
        source: NodeId,
        target: NodeId,
        kind: DepKind,
    ) -> Result<(), FlowError> {
        self.node(source)?;
        self.node(target)?;
        self.edges.push(FlowEdge {
            source,
            target,
            kind,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_schema::fixtures;

    fn fig1_arc() -> Arc<TaskSchema> {
        Arc::new(fixtures::fig1())
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new(fig1_arc());
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.leaves().is_empty());
        assert!(g.topo_order().expect("acyclic").is_empty());
    }

    #[test]
    fn raw_construction_and_queries() {
        let schema = fig1_arc();
        let mut g = TaskGraph::new(schema.clone());
        let sim = g
            .add_node_raw(schema.require("Simulator").expect("known"))
            .expect("valid");
        let cct = g
            .add_node_raw(schema.require("Circuit").expect("known"))
            .expect("valid");
        let stim = g
            .add_node_raw(schema.require("Stimuli").expect("known"))
            .expect("valid");
        let perf = g
            .add_node_raw(schema.require("Performance").expect("known"))
            .expect("valid");
        g.add_edge_raw(sim, perf, DepKind::Functional).expect("ok");
        g.add_edge_raw(cct, perf, DepKind::Data).expect("ok");
        g.add_edge_raw(stim, perf, DepKind::Data).expect("ok");

        assert_eq!(g.len(), 4);
        assert!(g.is_expanded(perf));
        assert!(!g.is_expanded(sim));
        assert_eq!(g.tool_of(perf), Some(sim));
        assert_eq!(g.data_inputs_of(perf), vec![cct, stim]);
        let mut leaves = g.leaves();
        leaves.sort();
        assert_eq!(leaves, vec![sim, cct, stim]);
        assert_eq!(g.outputs(), vec![perf]);
        assert_eq!(g.interior(), vec![perf]);

        let order = g.topo_order().expect("acyclic");
        let pos = |id| order.iter().position(|&x| x == id).expect("in order");
        assert!(pos(sim) < pos(perf));
        assert!(pos(cct) < pos(perf));
    }

    #[test]
    fn cycle_detected_by_topo() {
        let schema = fig1_arc();
        let mut g = TaskGraph::new(schema.clone());
        let a = g
            .add_node_raw(schema.require("Netlist").expect("known"))
            .expect("valid");
        let b = g
            .add_node_raw(schema.require("Layout").expect("known"))
            .expect("valid");
        g.add_edge_raw(a, b, DepKind::Data).expect("ok");
        g.add_edge_raw(b, a, DepKind::Data).expect("ok");
        assert_eq!(g.topo_order().unwrap_err(), FlowError::Cycle);
    }

    #[test]
    fn unknown_entity_rejected_by_raw_add() {
        let mut g = TaskGraph::new(fig1_arc());
        assert!(g.add_node_raw(EntityTypeId::from_index(999)).is_err());
    }

    #[test]
    fn components_separate_disjoint_branches() {
        let schema = fig1_arc();
        let mut g = TaskGraph::new(schema.clone());
        let a = g
            .add_node_raw(schema.require("Netlist").expect("known"))
            .expect("valid");
        let b = g
            .add_node_raw(schema.require("Layout").expect("known"))
            .expect("valid");
        let c = g
            .add_node_raw(schema.require("Stimuli").expect("known"))
            .expect("valid");
        g.add_edge_raw(a, b, DepKind::Data).expect("ok");
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        assert!(comps.iter().any(|c2| c2.contains(&c) && c2.len() == 1));
    }

    #[test]
    fn subflow_extracts_ancestors() {
        let schema = fig1_arc();
        let mut g = TaskGraph::new(schema.clone());
        let sim = g
            .add_node_raw(schema.require("Simulator").expect("known"))
            .expect("valid");
        let cct = g
            .add_node_raw(schema.require("Circuit").expect("known"))
            .expect("valid");
        let perf = g
            .add_node_raw(schema.require("Performance").expect("known"))
            .expect("valid");
        let plt = g
            .add_node_raw(schema.require("Plotter").expect("known"))
            .expect("valid");
        let plot = g
            .add_node_raw(schema.require("PerformancePlot").expect("known"))
            .expect("valid");
        g.add_edge_raw(sim, perf, DepKind::Functional).expect("ok");
        g.add_edge_raw(cct, perf, DepKind::Data).expect("ok");
        g.add_edge_raw(plt, plot, DepKind::Functional).expect("ok");
        g.add_edge_raw(perf, plot, DepKind::Data).expect("ok");

        let (sub, mapping) = g.subflow(perf).expect("live node");
        assert_eq!(sub.len(), 3, "perf + simulator + circuit");
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(mapping.len(), 3);
        // The plot task is not part of the sub-flow.
        assert!(mapping.iter().all(|(old, _)| *old != plot));
    }

    #[test]
    fn dead_node_lookup_fails() {
        let g = TaskGraph::new(fig1_arc());
        assert_eq!(
            g.node(NodeId::from_index(0)).unwrap_err(),
            FlowError::NodeNotFound(NodeId::from_index(0))
        );
    }
}
