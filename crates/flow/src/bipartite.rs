//! The traditional bipartite flow-diagram view of a flow (Fig. 3a).
//!
//! Older flow managers (JESSI [3], NELSIS [5], flowmaps [4]) draw a flow
//! as a bipartite graph of *activities* (tool applications) and *data
//! items*. The paper's task graph (Fig. 3b) carries the same information
//! with tools as first-class nodes; this module converts a task graph
//! into the bipartite form, grouping nodes that share a tool application
//! into one multi-output activity.

use hercules_schema::EntityKind;

use crate::error::FlowError;
use crate::graph::TaskGraph;
use crate::node::NodeId;

/// One activity of a bipartite flow diagram: a tool application with its
/// input and output data items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Activity {
    /// Display name (the tool's entity name, or `compose` for the
    /// implicit composition function of a composite entity).
    pub name: String,
    /// The task-graph tool node, if the activity has one.
    pub tool: Option<NodeId>,
    /// Task-graph nodes consumed.
    pub inputs: Vec<NodeId>,
    /// Task-graph nodes produced. More than one models Fig. 5's
    /// "multiple outputs from the same subtask".
    pub outputs: Vec<NodeId>,
}

/// A bipartite flow diagram derived from a task graph.
///
/// # Examples
///
/// ```
/// use hercules_flow::{fixtures, FlowDiagram};
/// use hercules_schema::fixtures as schemas;
///
/// # fn main() -> Result<(), hercules_flow::FlowError> {
/// let schema = std::sync::Arc::new(schemas::fig1());
/// let flow = fixtures::fig3(schema)?;
/// let diagram = FlowDiagram::from_task_graph(&flow)?;
/// assert_eq!(diagram.activities().len(), 2); // editor, placer
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowDiagram {
    activities: Vec<Activity>,
    items: Vec<NodeId>,
}

impl FlowDiagram {
    /// Converts a task graph into its bipartite view.
    ///
    /// Interior nodes that share the same tool node *and* the same data
    /// input set are merged into a single multi-output activity.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Cycle`] or a dead-node error if the graph is
    /// corrupt; checked-built graphs always convert.
    pub fn from_task_graph(flow: &TaskGraph) -> Result<FlowDiagram, FlowError> {
        let order = flow.topo_order()?;
        let mut activities: Vec<Activity> = Vec::new();
        for &id in &order {
            if !flow.is_expanded(id) {
                continue;
            }
            let tool = flow.tool_of(id);
            let mut inputs = flow.data_inputs_of(id);
            inputs.sort();
            if let Some(existing) = activities
                .iter_mut()
                .find(|a| a.tool == tool && a.tool.is_some() && a.inputs == inputs)
            {
                existing.outputs.push(id);
                continue;
            }
            let name = match tool {
                Some(t) => flow.schema().entity(flow.entity_of(t)?).name().to_owned(),
                None => "compose".to_owned(),
            };
            activities.push(Activity {
                name,
                tool,
                inputs,
                outputs: vec![id],
            });
        }
        // Data items: every node that is not serving purely as a tool.
        let mut items = Vec::new();
        for (id, node) in flow.nodes() {
            let kind = flow.schema().entity(node.entity()).kind();
            let used_as_tool_only = kind == EntityKind::Tool
                && flow.consumers_of(id).all(|e| e.is_functional())
                && flow.consumers_of(id).next().is_some()
                && !flow.is_expanded(id);
            if !used_as_tool_only {
                items.push(id);
            }
        }
        Ok(FlowDiagram { activities, items })
    }

    /// Returns the activities in topological order.
    pub fn activities(&self) -> &[Activity] {
        &self.activities
    }

    /// Returns the data items (task-graph nodes that appear as data in
    /// the diagram).
    pub fn items(&self) -> &[NodeId] {
        &self.items
    }

    /// Renders the diagram as text, one activity per line:
    /// `inputs =[tool]=> outputs`.
    pub fn to_text(&self, flow: &TaskGraph) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for a in &self.activities {
            let name_of = |id: &NodeId| {
                flow.schema()
                    .entity(
                        flow.node(*id)
                            .map(|n| n.entity())
                            .unwrap_or_else(|_| hercules_schema::EntityTypeId::from_index(0)),
                    )
                    .name()
                    .to_owned()
            };
            let ins: Vec<String> = a.inputs.iter().map(&name_of).collect();
            let outs: Vec<String> = a.outputs.iter().map(&name_of).collect();
            let _ = writeln!(
                out,
                "{} =[{}]=> {}",
                if ins.is_empty() {
                    "()".to_owned()
                } else {
                    ins.join(" + ")
                },
                a.name,
                outs.join(" + ")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_schema::fixtures as schemas;
    use std::sync::Arc;

    #[test]
    fn simulate_flow_has_one_activity() {
        let schema = Arc::new(schemas::fig1());
        let mut flow = TaskGraph::new(schema.clone());
        let perf = flow
            .seed(schema.require("Performance").expect("known"))
            .expect("ok");
        flow.expand(perf).expect("ok");
        let d = FlowDiagram::from_task_graph(&flow).expect("acyclic");
        assert_eq!(d.activities().len(), 1);
        let a = &d.activities()[0];
        assert_eq!(a.name, "Simulator");
        assert_eq!(a.inputs.len(), 2);
        assert_eq!(a.outputs, vec![perf]);
        // The simulator node is pure tool, not a data item.
        assert_eq!(d.items().len(), 3, "perf + circuit + stimuli");
    }

    #[test]
    fn shared_tool_application_merges_into_multi_output_activity() {
        // Extractor produces both ExtractedNetlist and
        // ExtractionStatistics from the same Layout: one activity, two
        // outputs (Fig. 5).
        let schema = Arc::new(schemas::fig1());
        let mut flow = TaskGraph::new(schema.clone());
        let ext = flow
            .seed(schema.require("ExtractedNetlist").expect("known"))
            .expect("ok");
        let created = flow.expand(ext).expect("ok");
        let extractor = created[0];
        let layout = created[1];
        let stats_ty = schema.require("ExtractionStatistics").expect("known");
        let extractor_ty = schema.require("Extractor").expect("known");
        let layout_ty = schema.require("Layout").expect("known");
        let stats = flow.seed(stats_ty).expect("ok");
        flow.expand_with(
            stats,
            &crate::Expansion::new()
                .reusing(extractor_ty, extractor)
                .reusing(layout_ty, layout),
        )
        .expect("ok");

        let d = FlowDiagram::from_task_graph(&flow).expect("acyclic");
        assert_eq!(d.activities().len(), 1, "merged into one subtask");
        assert_eq!(d.activities()[0].outputs.len(), 2);
        let text = d.to_text(&flow);
        assert!(text.contains("Extractor"));
        assert!(text.contains(" + "), "two outputs rendered");
    }

    #[test]
    fn composite_activity_is_named_compose() {
        let schema = Arc::new(schemas::fig1());
        let mut flow = TaskGraph::new(schema.clone());
        let cct = flow
            .seed(schema.require("Circuit").expect("known"))
            .expect("ok");
        flow.expand(cct).expect("ok");
        let d = FlowDiagram::from_task_graph(&flow).expect("acyclic");
        assert_eq!(d.activities().len(), 1);
        assert_eq!(d.activities()[0].name, "compose");
        assert!(d.activities()[0].tool.is_none());
    }
}
