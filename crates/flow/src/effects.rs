//! Abstract effect extraction: what a flow reads and writes, at the
//! entity-type level.
//!
//! A task graph fully determines its *abstract effects* before any tool
//! runs: every interior node **writes** an instance of its entity type,
//! every leaf it consumes is a **must-read** from the design history,
//! and every schema-declared dependency that has not been expanded yet
//! is a **may-read** — data the flow will touch if the designer grows
//! it further. The static analyzer propagates these sets over flow
//! graphs (transitive read-sets) and compares them across sessions
//! (write-conflict prediction); the schema's declared reads are also
//! the soundness precondition for content-addressed caching — a tool
//! that reads more than its declaration says defeats the cache key.

use std::collections::BTreeSet;

use hercules_schema::{EntityTypeId, TaskSchema};

use crate::graph::TaskGraph;
use crate::node::NodeId;

/// The abstract effects of one interior (expanded) node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeEffects {
    /// The node these effects describe.
    pub node: NodeId,
    /// The entity type the node's task produces.
    pub writes: EntityTypeId,
    /// The entity type of the tool that runs, if the expansion has one.
    pub tool: Option<EntityTypeId>,
    /// Entity types of the node's actual data inputs (expanded edges).
    pub must_read: Vec<EntityTypeId>,
    /// Schema-declared reads not covered by an expanded edge: required
    /// or optional dependencies the task *may* consume when grown.
    pub may_read: Vec<EntityTypeId>,
}

/// The abstract effects of a whole flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEffects {
    /// Per-interior-node effects, in node-id order.
    pub nodes: Vec<NodeEffects>,
    /// Entity types the flow produces instances of.
    pub writes: BTreeSet<EntityTypeId>,
    /// Entity types the flow binds from the history: every leaf (data
    /// or tool) feeding the flow.
    pub must_read: BTreeSet<EntityTypeId>,
    /// Entity types the flow may additionally read when grown further
    /// (declared but unexpanded dependencies), excluding anything
    /// already written or must-read.
    pub may_read: BTreeSet<EntityTypeId>,
}

/// Returns the schema-declared reads of `entity`: the sources of its
/// data dependencies, unioned over its supertype chain (a subtype
/// inherits its ancestors' tasks) and, for composites, the component
/// entities the implicit composition function consumes.
pub fn declared_reads(schema: &TaskSchema, entity: EntityTypeId) -> Vec<EntityTypeId> {
    let mut out: BTreeSet<EntityTypeId> = BTreeSet::new();
    let mut family = vec![entity];
    family.extend(schema.supertype_chain(entity));
    for e in family {
        out.extend(schema.data_deps(e).map(|d| d.source()));
        out.extend(schema.components_of(e));
    }
    out.into_iter().collect()
}

impl FlowEffects {
    /// Extracts the abstract effects of `flow`.
    pub fn of(flow: &TaskGraph) -> FlowEffects {
        let schema = flow.schema();
        let mut nodes = Vec::new();
        let mut writes: BTreeSet<EntityTypeId> = BTreeSet::new();
        let mut must_read: BTreeSet<EntityTypeId> = BTreeSet::new();
        let mut may_read: BTreeSet<EntityTypeId> = BTreeSet::new();

        for id in flow.interior() {
            let Ok(entity) = flow.entity_of(id) else {
                continue;
            };
            let tool = flow.tool_of(id).and_then(|t| flow.entity_of(t).ok());
            let node_must: Vec<EntityTypeId> = flow
                .data_inputs_of(id)
                .into_iter()
                .filter_map(|n| flow.entity_of(n).ok())
                .collect();
            let covered: BTreeSet<EntityTypeId> = node_must.iter().copied().collect();
            let node_may: Vec<EntityTypeId> = declared_reads(schema, entity)
                .into_iter()
                .filter(|t| !covered.contains(t))
                .collect();
            writes.insert(entity);
            may_read.extend(node_may.iter().copied());
            nodes.push(NodeEffects {
                node: id,
                writes: entity,
                tool,
                must_read: node_must,
                may_read: node_may,
            });
        }
        for leaf in flow.leaves() {
            let Ok(entity) = flow.entity_of(leaf) else {
                continue;
            };
            // Only leaves that feed something are reads; an isolated
            // seed consumes nothing yet.
            if flow.consumers_of(leaf).next().is_some() {
                must_read.insert(entity);
            }
            // A leaf's own declared dependencies are what expanding it
            // would pull in.
            may_read.extend(declared_reads(schema, entity));
        }
        may_read.retain(|t| !writes.contains(t) && !must_read.contains(t));
        FlowEffects {
            nodes,
            writes,
            must_read,
            may_read,
        }
    }

    /// Canonicalizes a set of entity types to their family roots (the
    /// topmost supertypes), the granularity at which version queries —
    /// and therefore cross-session conflicts — operate.
    pub fn families(schema: &TaskSchema, set: &BTreeSet<EntityTypeId>) -> BTreeSet<EntityTypeId> {
        set.iter()
            .map(|&t| schema.supertype_chain(t).last().copied().unwrap_or(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use hercules_schema::fixtures as schema_fixtures;
    use std::sync::Arc;

    #[test]
    fn fig5_effects_cover_both_branches() {
        let schema = Arc::new(schema_fixtures::fig1());
        let flow = fixtures::fig5(schema.clone()).expect("fixture");
        let fx = FlowEffects::of(&flow);
        let t = |n: &str| schema.require(n).expect("known");

        assert!(fx.writes.contains(&t("Verification")));
        assert!(fx.writes.contains(&t("ExtractedNetlist")));
        assert!(fx.writes.contains(&t("Performance")));
        // The layout and the tools are bound from the history.
        assert!(fx.must_read.contains(&t("Layout")));
        assert!(fx.must_read.contains(&t("Extractor")));
        // Nothing both written and may-read.
        assert!(fx.may_read.is_disjoint(&fx.writes));
        assert!(fx.may_read.is_disjoint(&fx.must_read));
        // Per-node effects exist for every interior node.
        assert_eq!(fx.nodes.len(), flow.interior().len());
    }

    #[test]
    fn declared_reads_union_the_supertype_chain() {
        let schema = Arc::new(schema_fixtures::fig1());
        let t = |n: &str| schema.require(n).expect("known");
        // ExtractedNetlist inherits nothing extra but declares Layout.
        let reads = declared_reads(&schema, t("ExtractedNetlist"));
        assert!(reads.contains(&t("Layout")));
        // A composite's components count as reads.
        let circuit = declared_reads(&schema, t("Circuit"));
        assert!(!circuit.is_empty());
    }

    #[test]
    fn families_collapse_subtypes() {
        let schema = Arc::new(schema_fixtures::fig1());
        let t = |n: &str| schema.require(n).expect("known");
        let set: BTreeSet<_> = [t("ExtractedNetlist"), t("EditedNetlist")]
            .into_iter()
            .collect();
        let fams = FlowEffects::families(&schema, &set);
        assert_eq!(fams.len(), 1);
        assert!(fams.contains(&t("Netlist")));
    }
}
