//! The flow catalog: named, stored flows for the plan-based approach.
//!
//! §3.4: "The plan- or flow-based approach allows designers to choose
//! from a set or library of flows that they (or another user) have built
//! up previously. This approach would normally be used when repeating a
//! common design activity."

use std::collections::BTreeMap;
use std::sync::Arc;

use hercules_schema::TaskSchema;
use serde::{Deserialize, Serialize};

use crate::error::FlowError;
use crate::graph::TaskGraph;
use crate::spec::FlowSpec;

/// One stored flow with its provenance metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatalogEntry {
    /// The flow structure.
    pub spec: FlowSpec,
    /// Free-form description shown by the catalog browser.
    pub description: String,
    /// User who stored the flow.
    pub author: String,
}

/// A library of named flows.
///
/// # Examples
///
/// ```
/// use hercules_flow::{fixtures, FlowCatalog};
/// use hercules_schema::fixtures as schemas;
///
/// # fn main() -> Result<(), hercules_flow::FlowError> {
/// let schema = std::sync::Arc::new(schemas::fig1());
/// let flow = fixtures::fig3(schema.clone())?;
/// let mut catalog = FlowCatalog::new();
/// catalog.store("place-edited-netlist", &flow, "synthesize a layout", "sutton");
/// let again = catalog.instantiate("place-edited-netlist", schema)?;
/// assert_eq!(again.len(), flow.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlowCatalog {
    entries: BTreeMap<String, CatalogEntry>,
}

impl FlowCatalog {
    /// Creates an empty catalog.
    pub fn new() -> FlowCatalog {
        FlowCatalog::default()
    }

    /// Stores a flow under `name`, replacing any previous entry. Returns
    /// the previous entry if one existed.
    pub fn store(
        &mut self,
        name: &str,
        flow: &TaskGraph,
        description: &str,
        author: &str,
    ) -> Option<CatalogEntry> {
        self.entries.insert(
            name.to_owned(),
            CatalogEntry {
                spec: FlowSpec::from_task_graph(flow),
                description: description.to_owned(),
                author: author.to_owned(),
            },
        )
    }

    /// Rebuilds the named flow over `schema`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::UnknownFlow`] for unknown names and any
    /// instantiation error from [`FlowSpec::instantiate`].
    pub fn instantiate(&self, name: &str, schema: Arc<TaskSchema>) -> Result<TaskGraph, FlowError> {
        let entry = self
            .entries
            .get(name)
            .ok_or_else(|| FlowError::UnknownFlow(name.to_owned()))?;
        entry.spec.instantiate(schema)
    }

    /// Returns the entry stored under `name`.
    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.get(name)
    }

    /// Removes and returns the entry stored under `name`.
    pub fn remove(&mut self, name: &str) -> Option<CatalogEntry> {
        self.entries.remove(name)
    }

    /// Iterates over `(name, entry)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &CatalogEntry)> + '_ {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Returns the stored flow names in order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Returns the number of stored flows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_schema::fixtures as schemas;

    fn catalog_with_fig3() -> (Arc<TaskSchema>, FlowCatalog) {
        let schema = Arc::new(schemas::fig1());
        let flow = crate::fixtures::fig3(schema.clone()).expect("fixture");
        let mut catalog = FlowCatalog::new();
        catalog.store("fig3", &flow, "the Fig. 3 placement flow", "jbb");
        (schema, catalog)
    }

    #[test]
    fn store_and_instantiate() {
        let (schema, catalog) = catalog_with_fig3();
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog.names(), vec!["fig3"]);
        let flow = catalog.instantiate("fig3", schema).expect("stored");
        assert_eq!(flow.len(), 6);
        assert_eq!(catalog.get("fig3").expect("stored").author, "jbb");
    }

    #[test]
    fn unknown_flow_errors() {
        let (schema, catalog) = catalog_with_fig3();
        assert_eq!(
            catalog.instantiate("nope", schema).unwrap_err(),
            FlowError::UnknownFlow("nope".into())
        );
    }

    #[test]
    fn replace_returns_previous_entry() {
        let (schema, mut catalog) = catalog_with_fig3();
        let flow = crate::fixtures::fig3(schema).expect("fixture");
        let prev = catalog.store("fig3", &flow, "updated", "sutton");
        assert_eq!(prev.expect("replaced").author, "jbb");
        assert_eq!(catalog.get("fig3").expect("stored").author, "sutton");
    }

    #[test]
    fn remove_and_empty() {
        let (_, mut catalog) = catalog_with_fig3();
        assert!(catalog.remove("fig3").is_some());
        assert!(catalog.is_empty());
        assert!(catalog.remove("fig3").is_none());
    }

    #[test]
    fn serde_round_trip() {
        let (_, catalog) = catalog_with_fig3();
        let json = serde_json::to_string(&catalog).expect("serialize");
        let back: FlowCatalog = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, catalog);
    }
}
