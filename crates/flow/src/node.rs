//! Nodes and edges of a task graph.

use std::fmt;

use hercules_schema::{DepKind, EntityTypeId};
use serde::{Deserialize, Serialize};

/// Identifier of a node within one [`TaskGraph`].
///
/// Node ids are stable for the lifetime of the graph: removing a node
/// (e.g. by [`TaskGraph::unexpand`]) leaves a tombstone rather than
/// renumbering.
///
/// [`TaskGraph`]: crate::TaskGraph
/// [`TaskGraph::unexpand`]: crate::TaskGraph::unexpand
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the raw dense index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id from a raw index (for deserialization and tests).
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One node of a task graph: an occurrence of a schema entity type.
///
/// The paper's task-graph representation (Fig. 3b) gives tools and data
/// the same standing — "we are treating the tool as just another
/// parameter" — so a node may be of either kind.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowNode {
    pub(crate) entity: EntityTypeId,
    /// Entity the node was originally created as, before any
    /// specialization. `None` when never specialized.
    pub(crate) declared: Option<EntityTypeId>,
    /// Node whose expansion created this node, or `None` for seeded and
    /// raw-added nodes. Drives [`TaskGraph::unexpand`]'s garbage
    /// collection: only nodes an expansion created may be collected when
    /// that expansion is undone.
    ///
    /// [`TaskGraph::unexpand`]: crate::TaskGraph::unexpand
    pub(crate) created_by: Option<NodeId>,
}

impl FlowNode {
    /// Returns the node's current (possibly specialized) entity type.
    pub fn entity(&self) -> EntityTypeId {
        self.entity
    }

    /// Returns the entity the node had before specialization, if the node
    /// was specialized.
    pub fn declared_entity(&self) -> Option<EntityTypeId> {
        self.declared
    }

    /// Returns `true` if [`specialize`](crate::TaskGraph::specialize) has
    /// been applied to this node.
    pub fn is_specialized(&self) -> bool {
        self.declared.is_some()
    }

    /// Returns the node whose expansion created this one, or `None` for
    /// seeded and raw-added nodes.
    pub fn created_by(&self) -> Option<NodeId> {
        self.created_by
    }
}

/// One edge of a task graph: `target` depends on `source`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowEdge {
    pub(crate) source: NodeId,
    pub(crate) target: NodeId,
    pub(crate) kind: DepKind,
}

impl FlowEdge {
    /// Returns the input (depended-upon) node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Returns the dependent node.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// Returns whether the edge is functional (tool) or data.
    pub fn kind(&self) -> DepKind {
        self.kind
    }

    /// Returns `true` for functional (tool) edges.
    pub fn is_functional(&self) -> bool {
        self.kind == DepKind::Functional
    }

    /// Returns `true` for data edges.
    pub fn is_data(&self) -> bool {
        self.kind == DepKind::Data
    }
}

impl fmt::Display for FlowEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} —{}→ {}", self.source, self.kind, self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips() {
        let id = NodeId::from_index(5);
        assert_eq!(id.index(), 5);
        assert_eq!(id.to_string(), "n5");
    }

    #[test]
    fn edge_accessors() {
        let e = FlowEdge {
            source: NodeId::from_index(0),
            target: NodeId::from_index(1),
            kind: DepKind::Functional,
        };
        assert!(e.is_functional());
        assert!(!e.is_data());
        assert_eq!(e.source().index(), 0);
        assert_eq!(e.target().index(), 1);
    }

    #[test]
    fn unspecialized_node_reports_no_declared_entity() {
        let n = FlowNode {
            entity: EntityTypeId::from_index(2),
            declared: None,
            created_by: None,
        };
        assert!(!n.is_specialized());
        assert_eq!(n.entity().index(), 2);
        assert_eq!(n.declared_entity(), None);
    }
}
