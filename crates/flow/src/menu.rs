//! The pop-up menu model of Fig. 9: what operations are available on a
//! node right now.
//!
//! The Hercules UI attaches a menu to every entity icon (*Unexpand /
//! Expand / Browse / Help* in Fig. 9, plus *Specialize* and the
//! downward expansions). [`TaskGraph::menu_for`] computes exactly which
//! entries apply, so a front end never offers an operation the flow
//! rules would reject.

use hercules_schema::EntityTypeId;

use crate::error::FlowError;
use crate::graph::TaskGraph;
use crate::node::NodeId;

/// The menu state for one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMenu {
    /// The node this menu belongs to.
    pub node: NodeId,
    /// `Expand` applies: the node is unexpanded and its entity is
    /// concrete with at least one dependency.
    pub can_expand: bool,
    /// Optional (dashed) dependencies `Expand…` could include, by
    /// source entity.
    pub optional_inputs: Vec<EntityTypeId>,
    /// `Specialize` choices: concrete subtypes the node can become
    /// (empty when expanded or the entity has no subtypes).
    pub specializations: Vec<EntityTypeId>,
    /// `Unexpand` applies: the node has producer edges.
    pub can_unexpand: bool,
    /// Downward expansions: entities with a dependency on this node's
    /// entity (what the designer could make *from* this node).
    pub consumers: Vec<EntityTypeId>,
    /// `Browse`/`Select` apply: the node is a leaf awaiting an
    /// instance.
    pub needs_instance: bool,
}

impl TaskGraph {
    /// Computes the Fig. 9 pop-up menu for `node`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::NodeNotFound`] for dead nodes.
    ///
    /// # Examples
    ///
    /// ```
    /// use hercules_flow::TaskGraph;
    /// use hercules_schema::fixtures;
    ///
    /// # fn main() -> Result<(), hercules_flow::FlowError> {
    /// let schema = std::sync::Arc::new(fixtures::fig1());
    /// let mut flow = TaskGraph::new(schema.clone());
    /// let netlist = flow.seed(schema.require("Netlist")?)?;
    /// let menu = flow.menu_for(netlist)?;
    /// assert!(!menu.can_expand, "abstract: specialize first");
    /// assert_eq!(menu.specializations.len(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn menu_for(&self, node: NodeId) -> Result<NodeMenu, FlowError> {
        let entity = self.entity_of(node)?;
        let schema = self.schema();
        let expanded = self.is_expanded(node);
        let is_abstract = schema.is_abstract(entity);
        let deps = schema.deps_of(entity);

        let specializations = if expanded {
            Vec::new()
        } else {
            schema
                .all_subtypes(entity)
                .into_iter()
                .filter(|&s| !schema.is_abstract(s))
                .collect()
        };
        let optional_inputs = if expanded || is_abstract {
            Vec::new()
        } else {
            deps.iter()
                .filter(|d| d.is_optional())
                .map(|d| d.source())
                .collect()
        };
        let mut consumers: Vec<EntityTypeId> = Vec::new();
        // Direct consumers of this entity and of every supertype it
        // satisfies.
        let mut sources = vec![entity];
        sources.extend(schema.supertype_chain(entity));
        for src in sources {
            for dep in schema.dependents_of(src) {
                if !schema.is_abstract(dep.target()) && !consumers.contains(&dep.target()) {
                    consumers.push(dep.target());
                }
            }
        }
        consumers.sort();

        Ok(NodeMenu {
            node,
            can_expand: !expanded && !is_abstract && !deps.is_empty(),
            optional_inputs,
            specializations,
            can_unexpand: expanded,
            consumers,
            needs_instance: !expanded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_schema::fixtures;
    use std::sync::Arc;

    fn flow() -> (Arc<hercules_schema::TaskSchema>, TaskGraph) {
        let schema = Arc::new(fixtures::fig1());
        let flow = TaskGraph::new(schema.clone());
        (schema, flow)
    }

    #[test]
    fn abstract_node_offers_specializations_not_expand() {
        let (schema, mut flow) = flow();
        let node = flow
            .seed(schema.require("Netlist").expect("known"))
            .expect("seeds");
        let menu = flow.menu_for(node).expect("live");
        assert!(!menu.can_expand);
        assert!(!menu.can_unexpand);
        assert!(menu.needs_instance);
        let names: Vec<&str> = menu
            .specializations
            .iter()
            .map(|&s| schema.entity(s).name())
            .collect();
        assert_eq!(names, vec!["EditedNetlist", "ExtractedNetlist"]);
    }

    #[test]
    fn concrete_node_offers_expand_with_optional_inputs() {
        let (schema, mut flow) = flow();
        let node = flow
            .seed(schema.require("EditedNetlist").expect("known"))
            .expect("seeds");
        let menu = flow.menu_for(node).expect("live");
        assert!(menu.can_expand);
        assert_eq!(menu.optional_inputs.len(), 1, "the prior-netlist arc");
        assert_eq!(schema.entity(menu.optional_inputs[0]).name(), "Netlist");
    }

    #[test]
    fn expanded_node_offers_unexpand_only() {
        let (schema, mut flow) = flow();
        let node = flow
            .seed(schema.require("Layout").expect("known"))
            .expect("seeds");
        flow.expand(node).expect("expands");
        let menu = flow.menu_for(node).expect("live");
        assert!(!menu.can_expand);
        assert!(menu.can_unexpand);
        assert!(!menu.needs_instance);
        assert!(menu.specializations.is_empty());
    }

    #[test]
    fn consumers_list_downward_expansions_including_supertype_slots() {
        let (schema, mut flow) = flow();
        let node = flow
            .seed(schema.require("ExtractedNetlist").expect("known"))
            .expect("seeds");
        let menu = flow.menu_for(node).expect("live");
        let names: Vec<&str> = menu
            .consumers
            .iter()
            .map(|&c| schema.entity(c).name())
            .collect();
        // Direct: Verification (d on ExtractedNetlist). Via the Netlist
        // supertype: Layout, Circuit, Verification, EditedNetlist
        // (optional arc).
        assert!(names.contains(&"Verification"));
        assert!(names.contains(&"Layout"));
        assert!(names.contains(&"Circuit"));
        assert!(names.contains(&"EditedNetlist"));
    }

    #[test]
    fn primary_node_can_only_browse_and_feed_consumers() {
        let (schema, mut flow) = flow();
        let node = flow
            .seed(schema.require("Stimuli").expect("known"))
            .expect("seeds");
        let menu = flow.menu_for(node).expect("live");
        assert!(!menu.can_expand, "nothing to expand");
        assert!(menu.needs_instance);
        assert!(!menu.consumers.is_empty());
    }

    #[test]
    fn dead_node_reports_not_found() {
        let (_, flow) = flow();
        assert!(flow.menu_for(NodeId::from_index(3)).is_err());
    }
}
