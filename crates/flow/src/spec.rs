//! Serializable form of a task graph.
//!
//! A [`TaskGraph`] holds an `Arc<TaskSchema>`, so it does not serialize
//! directly; [`FlowSpec`] is its declarative form (entity *names*, dense
//! node indexes) used by the flow catalog and for persistence. Rebuilding
//! from a spec re-validates against the schema, so a loaded flow is
//! always consistent.

use std::sync::Arc;

use hercules_schema::{DepKind, TaskSchema};
use serde::{Deserialize, Serialize};

use crate::error::FlowError;
use crate::graph::TaskGraph;
use crate::node::NodeId;

/// Declaration of one flow node by entity name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowNodeSpec {
    /// Current (possibly specialized) entity name.
    pub entity: String,
    /// Pre-specialization entity name, if the node was specialized.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub declared: Option<String>,
    /// Index of the node whose expansion created this one, if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub created_by: Option<usize>,
}

/// Declaration of one flow edge by dense node index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowEdgeSpec {
    /// Index of the source node in [`FlowSpec::nodes`].
    pub source: usize,
    /// Index of the target node in [`FlowSpec::nodes`].
    pub target: usize,
    /// Functional (`f`) or data (`d`).
    pub kind: DepKind,
}

/// The complete serializable form of a flow.
///
/// # Examples
///
/// ```
/// use hercules_flow::{fixtures, FlowSpec};
/// use hercules_schema::fixtures as schemas;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let schema = std::sync::Arc::new(schemas::fig1());
/// let flow = fixtures::fig3(schema.clone())?;
/// let spec = FlowSpec::from_task_graph(&flow);
/// let rebuilt = spec.instantiate(schema)?;
/// assert_eq!(rebuilt.len(), flow.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Node declarations; edge indexes refer to this list.
    pub nodes: Vec<FlowNodeSpec>,
    /// Edge declarations.
    pub edges: Vec<FlowEdgeSpec>,
}

impl FlowSpec {
    /// Captures a task graph as a spec, compacting away tombstones.
    pub fn from_task_graph(flow: &TaskGraph) -> FlowSpec {
        let live: Vec<NodeId> = flow.node_ids().collect();
        let index_of = |id: NodeId| live.iter().position(|&x| x == id).expect("live");
        let nodes = live
            .iter()
            .map(|&id| {
                let n = flow.node(id).expect("live");
                let schema = flow.schema();
                FlowNodeSpec {
                    entity: schema.entity(n.entity()).name().to_owned(),
                    declared: n
                        .declared_entity()
                        .map(|d| schema.entity(d).name().to_owned()),
                    created_by: n.created_by().filter(|c| live.contains(c)).map(&index_of),
                }
            })
            .collect();
        let edges = flow
            .edges()
            .map(|e| FlowEdgeSpec {
                source: index_of(e.source()),
                target: index_of(e.target()),
                kind: e.kind(),
            })
            .collect();
        FlowSpec { nodes, edges }
    }

    /// Rebuilds a validated task graph over `schema`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Schema`] for unknown entity names,
    /// [`FlowError::NodeNotFound`] for out-of-range edge indexes, and any
    /// structural violation from [`TaskGraph::validate`].
    pub fn instantiate(&self, schema: Arc<TaskSchema>) -> Result<TaskGraph, FlowError> {
        let mut flow = TaskGraph::new(schema.clone());
        for n in &self.nodes {
            let entity = schema.require(&n.entity)?;
            let id = flow.add_node_raw(entity)?;
            if let Some(declared) = &n.declared {
                let declared = schema.require(declared)?;
                let slot = flow.nodes[id.index()].as_mut().expect("just added");
                slot.declared = Some(declared);
            }
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(creator) = n.created_by {
                if creator >= self.nodes.len() {
                    return Err(FlowError::NodeNotFound(NodeId::from_index(creator)));
                }
                let slot = flow.nodes[i].as_mut().expect("just added");
                slot.created_by = Some(NodeId::from_index(creator));
            }
        }
        for e in &self.edges {
            flow.add_edge_raw(
                NodeId::from_index(e.source),
                NodeId::from_index(e.target),
                e.kind,
            )?;
        }
        flow.validate()?;
        Ok(flow)
    }

    /// Returns the number of node declarations.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the spec declares no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_schema::fixtures as schemas;

    #[test]
    fn round_trip_preserves_structure_and_specialization() {
        let schema = Arc::new(schemas::fig1());
        let mut flow = TaskGraph::new(schema.clone());
        let net = flow
            .seed(schema.require("Netlist").expect("known"))
            .expect("ok");
        flow.specialize(net, schema.require("ExtractedNetlist").expect("known"))
            .expect("ok");
        flow.expand(net).expect("ok");

        let spec = FlowSpec::from_task_graph(&flow);
        assert_eq!(spec.len(), 3);
        let rebuilt = spec.instantiate(schema.clone()).expect("valid");
        assert_eq!(rebuilt.len(), 3);
        let rebuilt_net = rebuilt
            .nodes()
            .find(|(_, n)| n.is_specialized())
            .expect("specialized node survives");
        assert_eq!(
            schema.entity(rebuilt_net.1.entity()).name(),
            "ExtractedNetlist"
        );
        assert_eq!(
            rebuilt_net
                .1
                .declared_entity()
                .map(|d| schema.entity(d).name()),
            Some("Netlist")
        );
    }

    #[test]
    fn tombstones_are_compacted() {
        let schema = Arc::new(schemas::fig1());
        let mut flow = TaskGraph::new(schema.clone());
        let layout = flow
            .seed(schema.require("Layout").expect("known"))
            .expect("ok");
        flow.expand(layout).expect("ok");
        flow.unexpand(layout).expect("ok");
        assert_eq!(flow.len(), 1);
        let spec = FlowSpec::from_task_graph(&flow);
        assert_eq!(spec.len(), 1);
        assert!(spec.edges.is_empty());
        spec.instantiate(schema).expect("valid");
    }

    #[test]
    fn unknown_entity_name_fails_instantiation() {
        let schema = Arc::new(schemas::fig1());
        let spec = FlowSpec {
            nodes: vec![FlowNodeSpec {
                entity: "Ghost".into(),
                declared: None,
                created_by: None,
            }],
            edges: vec![],
        };
        assert!(matches!(
            spec.instantiate(schema).unwrap_err(),
            FlowError::Schema(_)
        ));
    }

    #[test]
    fn invalid_edges_fail_instantiation() {
        let schema = Arc::new(schemas::fig1());
        let spec = FlowSpec {
            nodes: vec![FlowNodeSpec {
                entity: "Stimuli".into(),
                declared: None,
                created_by: None,
            }],
            edges: vec![FlowEdgeSpec {
                source: 0,
                target: 5,
                kind: DepKind::Data,
            }],
        };
        assert!(spec.instantiate(schema).is_err());
    }

    #[test]
    fn json_round_trip() {
        let schema = Arc::new(schemas::fig1());
        let flow = crate::fixtures::fig3(schema.clone()).expect("fixture");
        let spec = FlowSpec::from_task_graph(&flow);
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: FlowSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, spec);
        back.instantiate(schema).expect("valid");
    }
}
