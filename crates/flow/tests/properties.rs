//! Property-based tests for dynamically defined flows: random
//! sequences of designer operations keep every invariant.

use std::sync::Arc;

use hercules_flow::{Expansion, FlowSpec, TaskGraph};
use hercules_schema::{fixtures, EntityTypeId, TaskSchema};
use proptest::prelude::*;

/// One random designer operation.
#[derive(Debug, Clone)]
enum Op {
    Seed(usize),
    Expand(usize),
    ExpandOptional(usize),
    Specialize(usize, usize),
    Unexpand(usize),
    ExpandDown(usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..64).prop_map(Op::Seed),
        (0usize..64).prop_map(Op::Expand),
        (0usize..64).prop_map(Op::ExpandOptional),
        (0usize..64, 0usize..64).prop_map(|(a, b)| Op::Specialize(a, b)),
        (0usize..64).prop_map(Op::Unexpand),
        (0usize..64, 0usize..64).prop_map(|(a, b)| Op::ExpandDown(a, b)),
    ]
}

/// Applies an operation best-effort (errors are legal designer
/// mistakes; panics are not).
fn apply(flow: &mut TaskGraph, schema: &Arc<TaskSchema>, op: &Op) {
    let nodes: Vec<_> = flow.node_ids().collect();
    let pick_node = |i: usize| nodes.get(i % nodes.len().max(1)).copied();
    let pick_entity = |i: usize| EntityTypeId::from_index(i % schema.len());
    match op {
        Op::Seed(e) => {
            let _ = flow.seed(pick_entity(*e));
        }
        Op::Expand(n) => {
            if let Some(node) = pick_node(*n) {
                let _ = flow.expand(node);
            }
        }
        Op::ExpandOptional(n) => {
            if let Some(node) = pick_node(*n) {
                if let Ok(entity) = flow.entity_of(node) {
                    let optional: Vec<EntityTypeId> = schema
                        .deps_of(entity)
                        .iter()
                        .filter(|d| d.is_optional())
                        .map(|d| d.source())
                        .collect();
                    let mut exp = Expansion::new();
                    for o in optional {
                        exp = exp.with_optional(o);
                    }
                    let _ = flow.expand_with(node, &exp);
                }
            }
        }
        Op::Specialize(n, e) => {
            if let Some(node) = pick_node(*n) {
                let _ = flow.specialize(node, pick_entity(*e));
            }
        }
        Op::Unexpand(n) => {
            if let Some(node) = pick_node(*n) {
                let _ = flow.unexpand(node);
            }
        }
        Op::ExpandDown(n, e) => {
            if let Some(node) = pick_node(*n) {
                let _ = flow.expand_down(node, pick_entity(*e), &Expansion::new());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of checked operations leaves a structurally valid,
    /// acyclic flow whose leaves/interior partition the nodes.
    #[test]
    fn random_editing_preserves_invariants(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let schema = Arc::new(fixtures::fig1());
        let mut flow = TaskGraph::new(schema.clone());
        for op in &ops {
            apply(&mut flow, &schema, op);
        }
        flow.validate().expect("checked ops keep the flow valid");
        let order = flow.topo_order().expect("acyclic");
        prop_assert_eq!(order.len(), flow.len());
        let leaves = flow.leaves();
        let interior = flow.interior();
        prop_assert_eq!(leaves.len() + interior.len(), flow.len());
        for l in &leaves {
            prop_assert!(!flow.is_expanded(*l));
        }
        for i in &interior {
            prop_assert!(flow.is_expanded(*i));
        }
    }

    /// FlowSpec round trips are the identity on live structure.
    #[test]
    fn spec_round_trip(ops in prop::collection::vec(op_strategy(), 0..30)) {
        let schema = Arc::new(fixtures::fig1());
        let mut flow = TaskGraph::new(schema.clone());
        for op in &ops {
            apply(&mut flow, &schema, op);
        }
        let spec = FlowSpec::from_task_graph(&flow);
        let rebuilt = spec.instantiate(schema.clone()).expect("valid spec");
        prop_assert_eq!(rebuilt.len(), flow.len());
        prop_assert_eq!(rebuilt.edge_count(), flow.edge_count());
        // Entity multiset preserved.
        let names = |f: &TaskGraph| {
            let mut v: Vec<&str> = f
                .nodes()
                .map(|(_, n)| schema.entity(n.entity()).name())
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(names(&rebuilt), names(&flow));
    }

    /// expand / unexpand is a no-net-change pair when nothing is shared.
    #[test]
    fn expand_unexpand_restores_size(entity_idx in 0usize..64) {
        let schema = Arc::new(fixtures::fig1());
        let entity = EntityTypeId::from_index(entity_idx % schema.len());
        let mut flow = TaskGraph::new(schema.clone());
        let node = flow.seed(entity).expect("any entity seeds");
        let before = (flow.len(), flow.edge_count());
        if flow.expand(node).is_ok() {
            flow.unexpand(node).expect("expanded nodes unexpand");
            prop_assert_eq!((flow.len(), flow.edge_count()), before);
        }
    }

    /// Sub-flows are closed: every producer edge of a kept node is kept.
    #[test]
    fn subflows_are_dependency_closed(ops in prop::collection::vec(op_strategy(), 1..30)) {
        let schema = Arc::new(fixtures::fig1());
        let mut flow = TaskGraph::new(schema.clone());
        for op in &ops {
            apply(&mut flow, &schema, op);
        }
        for root in flow.node_ids() {
            let (sub, _) = flow.subflow(root).expect("live root");
            sub.validate().expect("sub-flows stay valid");
            // Interior nodes of the sub-flow keep all their inputs.
            for node in sub.interior() {
                prop_assert!(sub.producers_of(node).count() > 0);
            }
        }
    }
}
