//! Bench-guard: `TaskGraph::validate` must stay linear-ish in the edge
//! count. The duplicate-edge scan used to compare every edge pair
//! (O(E²)); on the 40 000-duplicate graph below that is ~800M tuple
//! comparisons, which blows far past the bound. The hash-set scan
//! finishes in milliseconds.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hercules_flow::{FlowError, TaskGraph};
use hercules_schema::{DepKind, SchemaBuilder};

#[test]
fn duplicate_scan_is_not_quadratic() {
    let mut b = SchemaBuilder::new();
    let hub = b.data("Hub");
    let spoke = b.data("Spoke");
    b.data_dep(hub, spoke);
    let schema = Arc::new(b.build().expect("valid"));

    let mut flow = TaskGraph::new(schema.clone());
    let s = flow.add_node_raw(spoke).expect("node");
    let h = flow.add_node_raw(hub).expect("node");
    const COPIES: usize = 40_000;
    for _ in 0..COPIES {
        flow.add_edge_raw(s, h, DepKind::Data).expect("edge");
    }

    let start = Instant::now();
    let all = flow.validate_all();
    let elapsed = start.elapsed();

    let duplicates = all
        .iter()
        .filter(|e| matches!(e, FlowError::DuplicateEdge(..)))
        .count();
    assert_eq!(duplicates, COPIES - 1, "every extra copy is reported");
    assert!(
        elapsed < Duration::from_secs(5),
        "validate_all took {elapsed:?} on {COPIES} duplicate edges — quadratic regression?"
    );
}

#[test]
fn wide_distinct_flow_validates_quickly() {
    let mut b = SchemaBuilder::new();
    let hub = b.data("Hub");
    let spoke = b.data("Spoke");
    b.data_dep(hub, spoke);
    let schema = Arc::new(b.build().expect("valid"));

    // 4 000 disjoint spoke->hub pairs: all edges distinct, every hub
    // interior and fully matched against the schema.
    let mut flow = TaskGraph::new(schema.clone());
    for _ in 0..4_000 {
        let s = flow.add_node_raw(spoke).expect("node");
        let h = flow.add_node_raw(hub).expect("node");
        flow.add_edge_raw(s, h, DepKind::Data).expect("edge");
    }

    let start = Instant::now();
    let all = flow.validate_all();
    let elapsed = start.elapsed();
    assert!(all.is_empty(), "distinct edges are clean: {all:?}");
    assert!(
        elapsed < Duration::from_secs(5),
        "validate_all took {elapsed:?} on a wide distinct flow"
    );
}
