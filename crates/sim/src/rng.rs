//! The simulator's step-choice PRNG.
//!
//! A tiny, dependency-free SplitMix64: every simulator decision (which
//! ready subtask runs next, which unsynced bytes survive a crash, which
//! pending rename lands) draws from one of these, seeded from the run's
//! master seed. SplitMix64 is a bijective 64-bit mixer, so distinct
//! seeds give independent-looking streams and the same seed always
//! gives the same stream — the property the whole harness rests on.

/// A deterministic 64-bit PRNG (SplitMix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SimRng {
        SimRng { state: seed }
    }

    /// A generator whose stream is independent of this one, derived
    /// deterministically from the current state and `salt`. Used to
    /// give each simulator component (scheduler, disk, crash chooser)
    /// its own stream off one master seed.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng {
            state: self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `0..bound` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            // Modulo bias is irrelevant for schedule exploration.
            self.next_u64() % bound
        }
    }

    /// A coin flip that lands `true` with probability
    /// `num / den` (`den > 0`).
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        assert_eq!(fa.next_u64(), fb.next_u64());
        let mut other = SimRng::new(7).fork(2);
        assert_ne!(fa.next_u64(), other.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        assert_eq!(r.below(0), 0);
    }
}
