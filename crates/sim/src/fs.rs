//! Filesystem as a capability: a clonable [`Fs`] handle backed either
//! by `std::fs` or by the in-memory simulated disk in [`crate::simfs`].
//!
//! The surface is deliberately the minimal set the durable store needs
//! — create/append/write handles, atomic rename, directory fsync —
//! so every durability-relevant syscall goes through one choke point
//! the simulator can intercept. The real adapter here is the **only**
//! place in the workspace that `crates/core` is allowed to reach
//! `std::fs` through (enforced by the `env_hygiene` test).

use std::io;
use std::path::Path;
use std::sync::Arc;

use crate::simfs::SimFsState;

/// Marker embedded in every I/O error raised by a simulated crash.
/// Callers that need to distinguish "the simulated machine died" from
/// ordinary I/O failure match on this substring.
pub const SIM_CRASH_MARKER: &str = "sim-crash";

/// Returns `true` when `err` (or its rendering) came from a simulated
/// crash point rather than a modeled I/O failure.
pub fn is_sim_crash(err: &io::Error) -> bool {
    err.to_string().contains(SIM_CRASH_MARKER)
}

/// An open file handle: the subset of `std::fs::File` the store uses.
pub trait FsFile: Send {
    /// Appends or overwrites at the handle's position (append handles
    /// always write at end-of-file).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flushes file *data* to durable storage.
    fn sync_data(&mut self) -> io::Result<()>;
    /// Flushes data and metadata to durable storage.
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncates (or extends with zeros) to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// A second handle to the same file, sharing content but not
    /// cursor — used to hand the journal to the flusher thread.
    fn try_clone(&self) -> io::Result<Box<dyn FsFile>>;
}

impl FsFile for std::fs::File {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(self, buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        std::fs::File::sync_data(self)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        std::fs::File::sync_all(self)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        std::fs::File::set_len(self, len)
    }

    fn try_clone(&self) -> io::Result<Box<dyn FsFile>> {
        std::fs::File::try_clone(self).map(|f| Box::new(f) as Box<dyn FsFile>)
    }
}

/// A clonable filesystem handle.
///
/// [`Fs::real`] (the `Default`) is a thin wrapper over `std::fs`;
/// [`Fs::sim`]-backed handles share one in-memory disk with injectable
/// torn writes, dropped fsyncs, and crash points.
#[derive(Debug, Clone, Default)]
pub struct Fs {
    sim: Option<Arc<SimFsState>>,
}

impl Fs {
    /// The real-environment adapter over `std::fs`.
    pub fn real() -> Fs {
        Fs { sim: None }
    }

    /// A handle onto the simulated disk `state`.
    pub fn sim(state: Arc<SimFsState>) -> Fs {
        Fs { sim: Some(state) }
    }

    /// Returns `true` for a simulated disk.
    pub fn is_sim(&self) -> bool {
        self.sim.is_some()
    }

    /// The simulated disk behind this handle, when there is one.
    pub fn sim_state(&self) -> Option<&Arc<SimFsState>> {
        self.sim.as_ref()
    }

    /// Creates `dir` and any missing ancestors.
    pub fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        match &self.sim {
            Some(state) => state.create_dir_all(dir),
            None => std::fs::create_dir_all(dir),
        }
    }

    /// Reads the whole file at `path`.
    pub fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match &self.sim {
            Some(state) => state.read(path),
            None => std::fs::read(path),
        }
    }

    /// Creates `path` (truncating any existing content) for writing.
    pub fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn FsFile>> {
        match &self.sim {
            Some(state) => state.create_truncate(path),
            None => std::fs::OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(path)
                .map(|f| Box::new(f) as Box<dyn FsFile>),
        }
    }

    /// Opens an existing file for appending.
    pub fn open_append(&self, path: &Path) -> io::Result<Box<dyn FsFile>> {
        match &self.sim {
            Some(state) => state.open(path, true),
            None => std::fs::OpenOptions::new()
                .append(true)
                .open(path)
                .map(|f| Box::new(f) as Box<dyn FsFile>),
        }
    }

    /// Opens an existing file for writing from the start (used for
    /// in-place truncation during recovery).
    pub fn open_write(&self, path: &Path) -> io::Result<Box<dyn FsFile>> {
        match &self.sim {
            Some(state) => state.open(path, false),
            None => std::fs::OpenOptions::new()
                .write(true)
                .open(path)
                .map(|f| Box::new(f) as Box<dyn FsFile>),
        }
    }

    /// Renames `from` over `to` (atomic replacement on the same
    /// directory, durable only after [`Fs::sync_dir`]).
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match &self.sim {
            Some(state) => state.rename(from, to),
            None => std::fs::rename(from, to),
        }
    }

    /// Removes the file at `path`.
    pub fn remove_file(&self, path: &Path) -> io::Result<()> {
        match &self.sim {
            Some(state) => state.remove_file(path),
            None => std::fs::remove_file(path),
        }
    }

    /// Makes directory-level operations (create/rename/remove) under
    /// `dir` durable — the `fsync(dirfd)` of the atomic-write recipe.
    pub fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match &self.sim {
            Some(state) => state.sync_dir(dir),
            None => {
                #[cfg(unix)]
                {
                    std::fs::File::open(dir)?.sync_all()?;
                }
                #[cfg(not(unix))]
                {
                    let _ = dir;
                }
                Ok(())
            }
        }
    }

    /// Returns `true` when a file or directory exists at `path`.
    pub fn exists(&self, path: &Path) -> bool {
        match &self.sim {
            Some(state) => state.exists(path),
            None => path.exists(),
        }
    }

    /// Lists the entries directly under `dir`, sorted by path — the
    /// read-only directory scan workspace audits use.
    pub fn list_dir(&self, dir: &Path) -> io::Result<Vec<std::path::PathBuf>> {
        let mut paths = match &self.sim {
            Some(state) => state
                .current_paths()
                .into_iter()
                .filter(|p| p.parent() == Some(dir))
                .collect(),
            None => std::fs::read_dir(dir)?
                .map(|e| e.map(|e| e.path()))
                .collect::<io::Result<Vec<_>>>()?,
        };
        paths.sort();
        Ok(paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_fs_round_trips_and_renames() {
        let fs = Fs::real();
        assert!(!fs.is_sim());
        let dir = std::env::temp_dir().join(format!("hercules-sim-fs-{}", std::process::id()));
        fs.create_dir_all(&dir).expect("mkdir");
        let a = dir.join("a.tmp");
        let b = dir.join("a");
        {
            let mut f = fs.create_truncate(&a).expect("create");
            f.write_all(b"hello").expect("write");
            f.sync_all().expect("fsync");
        }
        fs.rename(&a, &b).expect("rename");
        fs.sync_dir(&dir).expect("dirsync");
        assert!(fs.exists(&b));
        assert!(!fs.exists(&a));
        assert!(fs.list_dir(&dir).expect("list").contains(&b));
        assert_eq!(fs.read(&b).expect("read"), b"hello");
        let mut app = fs.open_append(&b).expect("append");
        app.write_all(b" world").expect("write");
        app.sync_data().expect("fsync");
        assert_eq!(fs.read(&b).expect("read"), b"hello world");
        let mut w = fs.open_write(&b).expect("write-open");
        w.set_len(5).expect("truncate");
        w.sync_all().expect("fsync");
        assert_eq!(fs.read(&b).expect("read"), b"hello");
        fs.remove_file(&b).expect("rm");
        assert!(!fs.exists(&b));
        std::fs::remove_dir_all(&dir).ok();
    }
}
