//! Deterministic simulation environment for the Hercules reproduction:
//! virtual time, a fault-injecting filesystem, seeded scheduler
//! interleavings, and a replayable event log.
//!
//! The flow manager's crash-safety and concurrency arguments were each
//! tested along one axis (scheduler-equivalence proptests, every-byte
//! crash truncation); this crate lets one seeded, single-threaded run
//! exercise both at once. Production code takes capabilities instead
//! of calling the platform directly:
//!
//! * [`Clock`] — `now`/`since`/`sleep`/`wall_unix_ms`; the real
//!   adapter wraps `std::time`, the virtual one advances only when
//!   slept on, so backoff schedules become logged events;
//! * [`Fs`] / [`FsFile`] — the minimal file surface the durable store
//!   uses (create/append/write, fsync, atomic rename, directory
//!   fsync); the simulated disk ([`SimFsState`]) models unsynced
//!   extents, pending directory operations, torn writes, dropped
//!   fsyncs, and op-indexed crash points, and can mint a dice-rolled
//!   post-crash [`SimFsState::crash_image`];
//! * [`Interleaver`] — consulted by the dataflow engine whenever
//!   several subtasks are ready; real = engine priority order, sim =
//!   seeded uniform pick, logged;
//! * [`SimTrace`] — the append-only event log every component writes
//!   to; for one seed its rendering is byte-identical across runs,
//!   which is what "reproduce any failure from its seed" rests on;
//! * [`SimEnv`] / [`Env`] — the assembled worlds. One master seed
//!   forks ([`SimRng::fork`]) into independent streams for disk
//!   faults, scheduling, and retry jitter.
//!
//! # Examples
//!
//! ```
//! use hercules_sim::SimEnv;
//! use std::path::Path;
//!
//! let sim = SimEnv::new(42);
//! let fs = sim.fs();
//! fs.create_dir_all(Path::new("/ws")).unwrap();
//! let mut f = fs.create_truncate(Path::new("/ws/journal")).unwrap();
//! f.write_all(b"frame").unwrap();
//! // Crash before fsync: the frame may be torn or lost entirely —
//! // but which outcome is a pure function of the seed.
//! let rebooted = sim.crash_and_reboot();
//! let a = rebooted.fs().read(Path::new("/ws/journal")).ok();
//! let again = SimEnv::new(42);
//! let fs2 = again.fs();
//! fs2.create_dir_all(Path::new("/ws")).unwrap();
//! let mut f2 = fs2.create_truncate(Path::new("/ws/journal")).unwrap();
//! f2.write_all(b"frame").unwrap();
//! assert_eq!(a, again.crash_and_reboot().fs().read(Path::new("/ws/journal")).ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod env;
mod fs;
mod interleave;
mod rng;
mod simfs;
mod trace;

pub use clock::{Clock, SimInstant, SIM_WALL_EPOCH_MS};
pub use env::{repro_command, ClockTimeSource, Env, SimEnv};
pub use fs::{is_sim_crash, Fs, FsFile, SIM_CRASH_MARKER};
pub use interleave::Interleaver;
pub use rng::SimRng;
pub use simfs::SimFsState;
pub use trace::SimTrace;
