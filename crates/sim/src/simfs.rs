//! The simulated disk: an in-memory filesystem that models exactly the
//! durability semantics the store's crash-safety argument depends on.
//!
//! Every file tracks two contents — `durable` (what survives power
//! loss) and `current` (what a running process observes) — plus the
//! list of written-but-unsynced extents between them. Directory
//! operations (create / rename / remove) likewise stay *pending* until
//! a directory fsync lands. A crash point is an operation index: the
//! Nth mutating operation fails with a [`crate::fs::SIM_CRASH_MARKER`]
//! error and every later operation fails too, as if the machine died.
//! [`SimFsState::crash_image`] then rolls dice over the unsynced state
//! to materialize one possible post-crash disk: each unsynced extent
//! survives whole, as a torn prefix, or not at all (a *later* extent
//! surviving while an earlier one is lost is exactly a reordered
//! write), and each pending directory operation lands or doesn't.
//!
//! Simplifications, chosen to keep the model honest where it matters:
//! directories themselves are durable as soon as created (the store
//! re-creates its root unconditionally), and `sync_data` == `sync_all`
//! (the only metadata the store relies on is file length, which both
//! flush). The optional lying-disk mode ([`SimFsState::
//! set_drop_fsync_every`]) silently discards every Nth fsync — under
//! it only the weaker valid-prefix invariant holds, and tests assert
//! accordingly.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::fs::{FsFile, SIM_CRASH_MARKER};
use crate::rng::SimRng;
use crate::trace::SimTrace;

fn crash_err(detail: &str) -> io::Error {
    io::Error::other(format!("{SIM_CRASH_MARKER}: {detail}"))
}

#[derive(Debug, Clone, Default)]
struct SimFile {
    /// Bytes that survive a crash unconditionally.
    durable: Vec<u8>,
    /// Bytes a running process reads back.
    current: Vec<u8>,
    /// Written-but-unsynced `(offset, len)` extents, oldest first.
    unsynced: Vec<(usize, usize)>,
    /// Smallest unsynced `set_len` truncation, if any.
    truncated_to: Option<usize>,
}

#[derive(Debug, Clone)]
enum DirOp {
    Create { path: PathBuf, id: u64 },
    Rename { from: PathBuf, to: PathBuf },
    Remove { path: PathBuf },
}

impl DirOp {
    fn in_dir(&self, dir: &Path) -> bool {
        match self {
            DirOp::Create { path, .. } | DirOp::Remove { path } => path.parent() == Some(dir),
            DirOp::Rename { from, to } => from.parent() == Some(dir) || to.parent() == Some(dir),
        }
    }

    fn apply(&self, ns: &mut BTreeMap<PathBuf, u64>) {
        match self {
            DirOp::Create { path, id } => {
                ns.insert(path.clone(), *id);
            }
            DirOp::Rename { from, to } => {
                if let Some(id) = ns.remove(from) {
                    ns.insert(to.clone(), id);
                }
            }
            DirOp::Remove { path } => {
                ns.remove(path);
            }
        }
    }
}

#[derive(Debug)]
struct Inner {
    files: HashMap<u64, SimFile>,
    next_id: u64,
    /// Path → file id as a running process sees the namespace.
    current_ns: BTreeMap<PathBuf, u64>,
    /// Path → file id as the disk would reveal it after power loss.
    durable_ns: BTreeMap<PathBuf, u64>,
    dirs: BTreeSet<PathBuf>,
    pending_dir_ops: Vec<DirOp>,
    /// Count of mutating operations so far (the crash-point index
    /// space).
    ops: u64,
    crash_at: Option<u64>,
    crashed: bool,
    fsyncs: u64,
    drop_fsync_every: Option<u64>,
    dropped_fsyncs: u64,
    /// Paths whose next `read` fails with a latent media error.
    read_errors: BTreeSet<PathBuf>,
    rng: SimRng,
}

/// One simulated disk, shared by every [`crate::fs::Fs`] handle and
/// open file cloned from it.
#[derive(Debug)]
pub struct SimFsState {
    inner: Mutex<Inner>,
    trace: SimTrace,
}

impl SimFsState {
    /// An empty disk whose fault decisions draw from `rng` and whose
    /// operations log to `trace`.
    pub fn new(rng: SimRng, trace: SimTrace) -> SimFsState {
        SimFsState {
            inner: Mutex::new(Inner {
                files: HashMap::new(),
                next_id: 1,
                current_ns: BTreeMap::new(),
                durable_ns: BTreeMap::new(),
                dirs: BTreeSet::new(),
                pending_dir_ops: Vec::new(),
                ops: 0,
                crash_at: None,
                crashed: false,
                fsyncs: 0,
                drop_fsync_every: None,
                dropped_fsyncs: 0,
                read_errors: BTreeSet::new(),
                rng,
            }),
            trace,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arms (or disarms) the crash point: the `op`th mutating operation
    /// from now-zero fails and the disk is dead thereafter.
    pub fn set_crash_at(&self, op: Option<u64>) {
        self.lock().crash_at = op;
    }

    /// Enables the lying-disk mode: every `every`th fsync (data or
    /// directory) reports success without making anything durable.
    pub fn set_drop_fsync_every(&self, every: Option<u64>) {
        self.lock().drop_fsync_every = every;
    }

    /// Injects bit rot: XORs the byte at `offset` of `path` with `xor`
    /// in both the durable and current images, as if the medium itself
    /// decayed. Returns `false` when the path does not exist or the
    /// offset is past the end (nothing changed). Does not count as a
    /// mutating operation — rot is not something the process does.
    pub fn corrupt_file(&self, path: &Path, offset: usize, xor: u8) -> bool {
        let mut inner = self.lock();
        let Some(id) = inner.current_ns.get(path).copied() else {
            return false;
        };
        let file = inner.files.get_mut(&id).expect("file for live path");
        let mut hit = false;
        if offset < file.current.len() {
            file.current[offset] ^= xor;
            hit = true;
        }
        if offset < file.durable.len() {
            file.durable[offset] ^= xor;
            hit = true;
        }
        if hit {
            self.trace.record(format!(
                "fs.bitrot path={} off={offset} xor={xor:#04x}",
                path.display()
            ));
        }
        hit
    }

    /// Length of `path`'s current contents, if it exists. Lets sweeps
    /// enumerate corruptible offsets without going through `read`.
    pub fn file_len(&self, path: &Path) -> Option<usize> {
        let inner = self.lock();
        let id = inner.current_ns.get(path)?;
        Some(inner.files[id].current.len())
    }

    /// Arms (or disarms) a latent read error: while armed, every `read`
    /// of `path` fails with a media error (distinct from the crash
    /// marker). Models an unreadable sector discovered only on access.
    pub fn set_read_error(&self, path: &Path, armed: bool) {
        let mut inner = self.lock();
        if armed {
            inner.read_errors.insert(path.to_owned());
        } else {
            inner.read_errors.remove(path);
        }
    }

    /// Mutating operations performed so far.
    pub fn op_count(&self) -> u64 {
        self.lock().ops
    }

    /// Returns `true` once the crash point has fired.
    pub fn has_crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Fsyncs silently discarded by the lying-disk mode.
    pub fn dropped_fsyncs(&self) -> u64 {
        self.lock().dropped_fsyncs
    }

    /// Every path currently visible to a running process, sorted.
    pub fn current_paths(&self) -> Vec<PathBuf> {
        self.lock().current_ns.keys().cloned().collect()
    }

    /// Counts one mutating operation: traces it, fires the crash point
    /// if armed for this index, and fails everything after a crash.
    /// Returns the operation index on success.
    fn step(inner: &mut Inner, trace: &SimTrace, what: &str) -> io::Result<u64> {
        if inner.crashed {
            return Err(crash_err("disk is dead"));
        }
        inner.ops += 1;
        let op = inner.ops;
        trace.record(format!("fs.{what} op={op}"));
        if inner.crash_at == Some(op) {
            inner.crashed = true;
            trace.record(format!("fs.crash op={op}"));
            return Err(crash_err(&format!("crash point at op {op}")));
        }
        Ok(op)
    }

    pub(crate) fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut inner = self.lock();
        SimFsState::step(
            &mut inner,
            &self.trace,
            &format!("mkdir path={}", dir.display()),
        )?;
        let mut cur = Some(dir);
        while let Some(d) = cur {
            if d.as_os_str().is_empty() {
                break;
            }
            inner.dirs.insert(d.to_owned());
            cur = d.parent();
        }
        Ok(())
    }

    pub(crate) fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let inner = self.lock();
        if inner.crashed {
            return Err(crash_err("disk is dead"));
        }
        if inner.read_errors.contains(path) {
            self.trace
                .record(format!("fs.read_error path={}", path.display()));
            return Err(io::Error::other(format!(
                "simulated media error reading {}",
                path.display()
            )));
        }
        let id = *inner
            .current_ns
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.display().to_string()))?;
        let bytes = inner.files[&id].current.clone();
        self.trace.record(format!(
            "fs.read path={} bytes={}",
            path.display(),
            bytes.len()
        ));
        Ok(bytes)
    }

    pub(crate) fn exists(&self, path: &Path) -> bool {
        let inner = self.lock();
        inner.current_ns.contains_key(path) || inner.dirs.contains(path)
    }

    pub(crate) fn create_truncate(self: &Arc<Self>, path: &Path) -> io::Result<Box<dyn FsFile>> {
        let mut inner = self.lock();
        SimFsState::step(
            &mut inner,
            &self.trace,
            &format!("create path={}", path.display()),
        )?;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() && !inner.dirs.contains(parent) {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no such directory: {}", parent.display()),
                ));
            }
        }
        let id = match inner.current_ns.get(path).copied() {
            Some(id) => {
                let file = inner.files.get_mut(&id).expect("file for live path");
                file.current.clear();
                file.unsynced.clear();
                file.truncated_to = Some(0);
                id
            }
            None => {
                let id = inner.next_id;
                inner.next_id += 1;
                inner.files.insert(id, SimFile::default());
                inner.current_ns.insert(path.to_owned(), id);
                inner.pending_dir_ops.push(DirOp::Create {
                    path: path.to_owned(),
                    id,
                });
                id
            }
        };
        drop(inner);
        Ok(Box::new(SimFileHandle {
            state: Arc::clone(self),
            id,
            append: false,
            pos: 0,
        }))
    }

    pub(crate) fn open(self: &Arc<Self>, path: &Path, append: bool) -> io::Result<Box<dyn FsFile>> {
        let inner = self.lock();
        if inner.crashed {
            return Err(crash_err("disk is dead"));
        }
        let id = *inner
            .current_ns
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.display().to_string()))?;
        self.trace
            .record(format!("fs.open path={} append={}", path.display(), append));
        drop(inner);
        Ok(Box::new(SimFileHandle {
            state: Arc::clone(self),
            id,
            append,
            pos: 0,
        }))
    }

    pub(crate) fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut inner = self.lock();
        SimFsState::step(
            &mut inner,
            &self.trace,
            &format!("rename from={} to={}", from.display(), to.display()),
        )?;
        let id = inner
            .current_ns
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, from.display().to_string()))?;
        inner.current_ns.insert(to.to_owned(), id);
        inner.pending_dir_ops.push(DirOp::Rename {
            from: from.to_owned(),
            to: to.to_owned(),
        });
        Ok(())
    }

    pub(crate) fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut inner = self.lock();
        SimFsState::step(
            &mut inner,
            &self.trace,
            &format!("remove path={}", path.display()),
        )?;
        if inner.current_ns.remove(path).is_none() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                path.display().to_string(),
            ));
        }
        inner.pending_dir_ops.push(DirOp::Remove {
            path: path.to_owned(),
        });
        Ok(())
    }

    pub(crate) fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut inner = self.lock();
        SimFsState::step(
            &mut inner,
            &self.trace,
            &format!("syncdir path={}", dir.display()),
        )?;
        inner.fsyncs += 1;
        if let Some(every) = inner.drop_fsync_every {
            if every > 0 && inner.fsyncs.is_multiple_of(every) {
                inner.dropped_fsyncs += 1;
                self.trace
                    .record(format!("fs.syncdir.dropped path={}", dir.display()));
                return Ok(());
            }
        }
        let (landed, kept): (Vec<DirOp>, Vec<DirOp>) = std::mem::take(&mut inner.pending_dir_ops)
            .into_iter()
            .partition(|op| op.in_dir(dir));
        inner.pending_dir_ops = kept;
        for op in &landed {
            op.apply(&mut inner.durable_ns);
        }
        Ok(())
    }

    /// Rolls dice over every unsynced extent, pending truncation, and
    /// pending directory operation to materialize one possible
    /// post-crash disk. The result shares this disk's trace (so a
    /// recovery run extends the same event log) and a forked rng; its
    /// operation counter starts from zero with no crash point armed.
    pub fn crash_image(&self) -> SimFsState {
        let mut inner = self.lock();
        self.trace
            .record(format!("fs.crash_image at_op={}", inner.ops));

        let mut ns = inner.durable_ns.clone();
        let pending = std::mem::take(&mut inner.pending_dir_ops);
        for op in &pending {
            let keep = inner.rng.chance(1, 2);
            self.trace.record(format!("crash.dirop keep={keep} {op:?}"));
            if keep {
                op.apply(&mut ns);
            }
        }
        inner.pending_dir_ops = pending;

        let mut files = HashMap::new();
        let ids: Vec<u64> = inner.files.keys().copied().collect();
        let mut ids = ids;
        ids.sort_unstable();
        for id in ids {
            let file = inner.files[&id].clone();
            let mut image = file.durable.clone();
            // Each extent: whole (2/4), torn prefix (1/4), or lost
            // (1/4). A lost extent before a surviving one is a
            // reordered write.
            for (off, len) in file.unsynced {
                let roll = inner.rng.below(4);
                let keep = match roll {
                    0 | 1 => len,
                    2 => inner.rng.below(len as u64 + 1) as usize,
                    _ => 0,
                };
                let keep = keep.min(file.current.len().saturating_sub(off));
                self.trace.record(format!(
                    "crash.extent file={id} off={off} len={len} keep={keep}"
                ));
                if keep > 0 {
                    if image.len() < off + keep {
                        image.resize(off + keep, 0);
                    }
                    image[off..off + keep].copy_from_slice(&file.current[off..off + keep]);
                }
            }
            if let Some(t) = file.truncated_to {
                let keep = inner.rng.chance(1, 2);
                self.trace
                    .record(format!("crash.truncate file={id} to={t} keep={keep}"));
                if keep && image.len() > t {
                    image.truncate(t);
                }
            }
            files.insert(
                id,
                SimFile {
                    durable: image.clone(),
                    current: image,
                    unsynced: Vec::new(),
                    truncated_to: None,
                },
            );
        }

        let rng = inner.rng.fork(0x6372_6173_6821); // "crash!"
        SimFsState {
            inner: Mutex::new(Inner {
                files,
                next_id: inner.next_id,
                current_ns: ns.clone(),
                durable_ns: ns,
                dirs: inner.dirs.clone(),
                pending_dir_ops: Vec::new(),
                ops: 0,
                crash_at: None,
                crashed: false,
                fsyncs: 0,
                drop_fsync_every: None,
                dropped_fsyncs: 0,
                read_errors: inner.read_errors.clone(),
                rng,
            }),
            trace: self.trace.clone(),
        }
    }
}

struct SimFileHandle {
    state: Arc<SimFsState>,
    id: u64,
    append: bool,
    pos: usize,
}

impl FsFile for SimFileHandle {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut inner = self.state.lock();
        // A write that hits the crash point may itself tear: a random
        // prefix lands as an unsynced extent before the failure.
        let id = self.id;
        let append = self.append;
        let pos = self.pos;
        let offset = if append {
            inner.files.get(&id).map_or(0, |f| f.current.len())
        } else {
            pos
        };
        let step = SimFsState::step(
            &mut inner,
            &self.state.trace,
            &format!("write file={id} off={offset} len={}", buf.len()),
        );
        match step {
            Ok(_) => {
                let file = inner.files.get_mut(&id).expect("file for open handle");
                if file.current.len() < offset + buf.len() {
                    file.current.resize(offset + buf.len(), 0);
                }
                file.current[offset..offset + buf.len()].copy_from_slice(buf);
                file.unsynced.push((offset, buf.len()));
                if !self.append {
                    self.pos = offset + buf.len();
                }
                Ok(())
            }
            Err(e) => {
                if !inner.crashed {
                    return Err(e);
                }
                let torn = inner.rng.below(buf.len() as u64 + 1) as usize;
                self.state.trace.record(format!(
                    "crash.torn_write file={id} off={offset} keep={torn}"
                ));
                if torn > 0 {
                    let file = inner.files.get_mut(&id).expect("file for open handle");
                    if file.current.len() < offset + torn {
                        file.current.resize(offset + torn, 0);
                    }
                    file.current[offset..offset + torn].copy_from_slice(&buf[..torn]);
                    file.unsynced.push((offset, torn));
                }
                Err(e)
            }
        }
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.sync_all()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        let mut inner = self.state.lock();
        let id = self.id;
        SimFsState::step(&mut inner, &self.state.trace, &format!("fsync file={id}"))?;
        inner.fsyncs += 1;
        if let Some(every) = inner.drop_fsync_every {
            if every > 0 && inner.fsyncs.is_multiple_of(every) {
                inner.dropped_fsyncs += 1;
                self.state
                    .trace
                    .record(format!("fs.fsync.dropped file={id}"));
                return Ok(());
            }
        }
        let file = inner.files.get_mut(&id).expect("file for open handle");
        file.durable = file.current.clone();
        file.unsynced.clear();
        file.truncated_to = None;
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        let mut inner = self.state.lock();
        let id = self.id;
        SimFsState::step(
            &mut inner,
            &self.state.trace,
            &format!("set_len file={id} len={len}"),
        )?;
        let len = len as usize;
        let file = inner.files.get_mut(&id).expect("file for open handle");
        if len < file.current.len() {
            file.current.truncate(len);
            file.truncated_to = Some(file.truncated_to.map_or(len, |t| t.min(len)));
            file.unsynced.retain_mut(|(off, elen)| {
                if *off >= len {
                    return false;
                }
                *elen = (*elen).min(len - *off);
                true
            });
        } else if len > file.current.len() {
            let old = file.current.len();
            file.current.resize(len, 0);
            file.unsynced.push((old, len - old));
        }
        Ok(())
    }

    fn try_clone(&self) -> io::Result<Box<dyn FsFile>> {
        let inner = self.state.lock();
        if inner.crashed {
            return Err(crash_err("disk is dead"));
        }
        drop(inner);
        Ok(Box::new(SimFileHandle {
            state: Arc::clone(&self.state),
            id: self.id,
            append: self.append,
            pos: 0,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{is_sim_crash, Fs};

    fn fresh(seed: u64) -> (Fs, Arc<SimFsState>) {
        let state = Arc::new(SimFsState::new(SimRng::new(seed), SimTrace::enabled()));
        (Fs::sim(Arc::clone(&state)), state)
    }

    #[test]
    fn write_read_round_trip_and_namespace() {
        let (fs, _state) = fresh(1);
        let dir = Path::new("/ws");
        fs.create_dir_all(dir).expect("mkdir");
        let mut f = fs.create_truncate(&dir.join("a.tmp")).expect("create");
        f.write_all(b"abc").expect("write");
        f.sync_all().expect("fsync");
        fs.rename(&dir.join("a.tmp"), &dir.join("a"))
            .expect("rename");
        fs.sync_dir(dir).expect("dirsync");
        assert_eq!(fs.read(&dir.join("a")).expect("read"), b"abc");
        assert!(!fs.exists(&dir.join("a.tmp")));
        let mut g = fs.open_append(&dir.join("a")).expect("open");
        g.write_all(b"def").expect("write");
        assert_eq!(fs.read(&dir.join("a")).expect("read"), b"abcdef");
    }

    #[test]
    fn crash_point_fires_once_and_kills_the_disk() {
        let (fs, state) = fresh(2);
        state.set_crash_at(Some(3));
        let dir = Path::new("/ws");
        fs.create_dir_all(dir).expect("op 1");
        let mut f = fs.create_truncate(&dir.join("j")).expect("op 2");
        let err = f.write_all(b"xyz").expect_err("op 3 crashes");
        assert!(is_sim_crash(&err), "unexpected error: {err}");
        assert!(state.has_crashed());
        let err = fs.read(&dir.join("j")).expect_err("dead disk");
        assert!(is_sim_crash(&err));
    }

    #[test]
    fn unsynced_data_may_vanish_in_the_crash_image() {
        // Durable bytes always survive; unsynced bytes survive only as
        // a (possibly empty, possibly torn) prefix-per-extent.
        for seed in 0..32u64 {
            let (fs, state) = fresh(seed);
            let dir = Path::new("/ws");
            fs.create_dir_all(dir).expect("mkdir");
            let mut f = fs.create_truncate(&dir.join("j")).expect("create");
            f.write_all(b"durable!").expect("write");
            f.sync_all().expect("fsync");
            fs.sync_dir(dir).expect("dirsync");
            f.write_all(b"unsynced").expect("write");
            let image = Arc::new(state.crash_image());
            let after = Fs::sim(Arc::clone(&image));
            let bytes = after.read(&dir.join("j")).expect("file survived dirsync");
            assert!(bytes.len() >= 8, "durable prefix lost: {bytes:?}");
            assert_eq!(&bytes[..8], b"durable!");
            assert!(bytes.len() <= 16);
            assert_eq!(&bytes[8..], &b"unsynced"[..bytes.len() - 8]);
        }
    }

    #[test]
    fn pending_dir_ops_may_or_may_not_land() {
        let mut seen_kept = false;
        let mut seen_lost = false;
        for seed in 0..64u64 {
            let (fs, state) = fresh(seed);
            let dir = Path::new("/ws");
            fs.create_dir_all(dir).expect("mkdir");
            let mut f = fs.create_truncate(&dir.join("a")).expect("create");
            f.write_all(b"x").expect("write");
            f.sync_all().expect("fsync");
            // No sync_dir: the file's very existence is pending.
            let image = Arc::new(state.crash_image());
            let after = Fs::sim(image);
            if after.exists(&dir.join("a")) {
                seen_kept = true;
                assert_eq!(after.read(&dir.join("a")).expect("read"), b"x");
            } else {
                seen_lost = true;
            }
        }
        assert!(seen_kept && seen_lost, "both outcomes should occur");
    }

    #[test]
    fn same_seed_same_crash_image() {
        let run = |seed: u64| {
            let (fs, state) = fresh(seed);
            let dir = Path::new("/ws");
            fs.create_dir_all(dir).expect("mkdir");
            let mut f = fs.create_truncate(&dir.join("j")).expect("create");
            f.write_all(b"one").expect("write");
            f.write_all(b"twotwo").expect("write");
            let image = Arc::new(state.crash_image());
            Fs::sim(image).read(&dir.join("j")).ok()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn bit_rot_flips_durable_bytes_in_place() {
        let (fs, state) = fresh(4);
        let dir = Path::new("/ws");
        fs.create_dir_all(dir).expect("mkdir");
        let mut f = fs.create_truncate(&dir.join("j")).expect("create");
        f.write_all(b"healthy").expect("write");
        f.sync_all().expect("fsync");
        assert_eq!(state.file_len(&dir.join("j")), Some(7));
        assert!(state.corrupt_file(&dir.join("j"), 0, 0xFF));
        assert!(!state.corrupt_file(&dir.join("j"), 99, 0xFF), "past end");
        assert!(!state.corrupt_file(&dir.join("missing"), 0, 0xFF));
        let bytes = fs.read(&dir.join("j")).expect("read");
        assert_eq!(bytes[0], b'h' ^ 0xFF);
        assert_eq!(&bytes[1..], b"ealthy");
        // Rot survives a crash: it lives in the durable image too.
        let image = Arc::new(state.crash_image());
        let after = Fs::sim(image);
        assert_eq!(after.read(&dir.join("j")).expect("read")[0], b'h' ^ 0xFF);
    }

    #[test]
    fn latent_read_error_fires_until_disarmed_and_is_not_a_crash() {
        let (fs, state) = fresh(5);
        let dir = Path::new("/ws");
        fs.create_dir_all(dir).expect("mkdir");
        let mut f = fs.create_truncate(&dir.join("j")).expect("create");
        f.write_all(b"data").expect("write");
        f.sync_all().expect("fsync");
        state.set_read_error(&dir.join("j"), true);
        let err = fs.read(&dir.join("j")).expect_err("armed read fails");
        assert!(
            !is_sim_crash(&err),
            "media error must not look like a crash"
        );
        assert!(err.to_string().contains("media error"), "got: {err}");
        // The error survives a crash image, then can be disarmed.
        let image = Arc::new(state.crash_image());
        let after = Fs::sim(Arc::clone(&image));
        after.read(&dir.join("j")).expect_err("still armed");
        image.set_read_error(&dir.join("j"), false);
        assert_eq!(after.read(&dir.join("j")).expect("read"), b"data");
    }

    #[test]
    fn dropped_fsync_lies_about_durability() {
        let (fs, state) = fresh(3);
        state.set_drop_fsync_every(Some(1)); // drop every fsync
        let dir = Path::new("/ws");
        fs.create_dir_all(dir).expect("mkdir");
        let mut f = fs.create_truncate(&dir.join("j")).expect("create");
        f.write_all(b"gone?").expect("write");
        f.sync_all().expect("fsync reports success");
        assert_eq!(state.dropped_fsyncs(), 1);
    }
}
