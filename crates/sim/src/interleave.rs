//! Scheduler interleaving as a capability: an [`Interleaver`] handle
//! the dataflow engine consults whenever more than one subtask is
//! ready.
//!
//! The real adapter always answers "the first candidate" — i.e. the
//! engine's own priority order — so production behavior is unchanged.
//! The simulated adapter picks uniformly among the candidates from the
//! run's seed and records the pick, turning every scheduling decision
//! into a replayable event. Exploring these choices is what drives the
//! "≥ 100 distinct interleavings" acceptance bar: each seed induces one
//! deterministic schedule, different seeds induce different ones.

use std::sync::{Arc, Mutex};

use crate::rng::SimRng;
use crate::trace::SimTrace;

#[derive(Debug)]
struct InterleaveState {
    rng: Mutex<SimRng>,
    trace: SimTrace,
}

/// A clonable scheduling-choice source.
///
/// The default ([`Interleaver::fifo`]) preserves the engine's own
/// order; [`Interleaver::sim`] randomizes it deterministically.
#[derive(Debug, Clone, Default)]
pub struct Interleaver {
    sim: Option<Arc<InterleaveState>>,
}

impl Interleaver {
    /// The real-environment adapter: always picks index 0, i.e. the
    /// engine's own priority order.
    pub fn fifo() -> Interleaver {
        Interleaver { sim: None }
    }

    /// A seeded chooser that logs every pick to `trace`.
    pub fn sim(rng: SimRng, trace: SimTrace) -> Interleaver {
        Interleaver {
            sim: Some(Arc::new(InterleaveState {
                rng: Mutex::new(rng),
                trace,
            })),
        }
    }

    /// Returns `true` when picks are randomized (and logged).
    pub fn is_sim(&self) -> bool {
        self.sim.is_some()
    }

    /// Picks one of `count` candidates; returns its index. Always 0 in
    /// the real environment.
    pub fn choose(&self, count: usize) -> usize {
        match &self.sim {
            Some(state) if count > 1 => {
                let pick = state
                    .rng
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .below(count as u64) as usize;
                state
                    .trace
                    .record(format!("sched.pick index={pick} of={count}"));
                pick
            }
            Some(state) => {
                if count == 1 {
                    state.trace.record("sched.pick index=0 of=1");
                }
                0
            }
            None => 0,
        }
    }

    /// Like [`Interleaver::choose`] but logs the chosen candidate's
    /// label, making the event log self-describing.
    pub fn choose_labeled(&self, labels: &[&str]) -> usize {
        match &self.sim {
            Some(state) if !labels.is_empty() => {
                let pick = if labels.len() > 1 {
                    state
                        .rng
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .below(labels.len() as u64) as usize
                } else {
                    0
                };
                state.trace.record(format!(
                    "sched.pick index={pick} of={} task={}",
                    labels.len(),
                    labels[pick]
                ));
                pick
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_always_picks_first_and_stays_silent() {
        let i = Interleaver::fifo();
        assert!(!i.is_sim());
        for n in 1..5 {
            assert_eq!(i.choose(n), 0);
        }
        assert_eq!(i.choose_labeled(&["a", "b"]), 0);
    }

    #[test]
    fn sim_picks_are_seeded_and_logged() {
        let run = |seed: u64| {
            let trace = SimTrace::enabled();
            let i = Interleaver::sim(SimRng::new(seed), trace.clone());
            let picks: Vec<usize> = (0..20).map(|_| i.choose(4)).collect();
            (picks, trace.render())
        };
        let (p1, t1) = run(11);
        let (p2, t2) = run(11);
        assert_eq!(p1, p2);
        assert_eq!(t1, t2);
        let (p3, _) = run(12);
        assert_ne!(p1, p3, "different seeds explore different schedules");
        assert!(p1.iter().all(|&p| p < 4));
    }

    #[test]
    fn labeled_picks_name_the_task() {
        let trace = SimTrace::enabled();
        let i = Interleaver::sim(SimRng::new(5), trace.clone());
        let pick = i.choose_labeled(&["alpha", "beta", "gamma"]);
        let log = trace.render();
        assert!(log.contains(&format!("index={pick}")));
        assert!(log.contains(["alpha", "beta", "gamma"][pick]));
    }
}
