//! The simulator's event log: one line per simulator decision.
//!
//! Every virtual-clock advance, filesystem operation, scheduler pick,
//! and injected fault appends one line here. The log is the harness's
//! reproducibility witness: for a given seed the rendered log must be
//! **byte-identical** across runs, so any assertion failure can print
//! its seed knowing a replay will walk the exact same event sequence.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// A shared, append-only log of simulator events.
///
/// Cloning shares the underlying buffer. The disabled (default) trace
/// drops every record, so real-environment runs pay one branch.
#[derive(Debug, Clone, Default)]
pub struct SimTrace {
    inner: Option<Arc<Mutex<Vec<String>>>>,
}

impl SimTrace {
    /// An enabled, empty trace.
    pub fn enabled() -> SimTrace {
        SimTrace {
            inner: Some(Arc::new(Mutex::new(Vec::new()))),
        }
    }

    /// The no-op trace used by real environments.
    pub fn disabled() -> SimTrace {
        SimTrace { inner: None }
    }

    /// Returns `true` when records are kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Appends one event line.
    pub fn record(&self, line: impl AsRef<str>) {
        if let Some(inner) = &self.inner {
            inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(line.as_ref().to_owned());
        }
    }

    /// Snapshot of every line, oldest first.
    pub fn lines(&self) -> Vec<String> {
        match &self.inner {
            Some(inner) => inner.lock().unwrap_or_else(|e| e.into_inner()).clone(),
            None => Vec::new(),
        }
    }

    /// Renders the whole log as one newline-separated string — the
    /// byte-identity artifact.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in self.lines() {
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// FNV-1a digest of the rendered log — a cheap fingerprint for
    /// comparing replays without holding both logs.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in self.render().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01B3);
        }
        hash
    }

    /// Number of recorded lines.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.lock().unwrap_or_else(|e| e.into_inner()).len(),
            None => 0,
        }
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_drops_everything() {
        let t = SimTrace::disabled();
        t.record("x");
        assert!(t.is_empty());
        assert_eq!(t.render(), "");
    }

    #[test]
    fn enabled_trace_keeps_order_and_digests() {
        let t = SimTrace::enabled();
        t.record("a");
        t.record("b");
        assert_eq!(t.render(), "a\nb\n");
        let u = SimTrace::enabled();
        u.record("a");
        u.record("b");
        assert_eq!(t.digest(), u.digest());
        u.record("c");
        assert_ne!(t.digest(), u.digest());
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = SimTrace::enabled();
        let u = t.clone();
        u.record("via clone");
        assert_eq!(t.lines(), vec!["via clone".to_owned()]);
    }
}
