//! Time as a capability: a clonable [`Clock`] handle backed either by
//! the machine's monotonic clock or by a simulator-owned virtual clock.
//!
//! Code that used to call `Instant::now()` / `thread::sleep` takes a
//! `Clock` instead. In the real environment the handle is a thin
//! wrapper over `std::time`; under simulation `sleep` *advances the
//! virtual clock instantly* and records the advance in the trace, so a
//! retry-backoff schedule becomes a deterministic sequence of events
//! rather than wall-clock waiting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::trace::SimTrace;

/// The fixed wall-clock epoch of every simulated run (2020-01-01T00:00Z
/// in Unix milliseconds). Virtual wall time is this plus elapsed
/// virtual nanoseconds, so timestamps are identical across replays.
pub const SIM_WALL_EPOCH_MS: u64 = 1_577_836_800_000;

/// An instant on a [`Clock`]'s timeline, measured in nanoseconds since
/// that clock's epoch. Works for both real and virtual clocks: the real
/// adapter converts `Instant`s to offsets from a process-wide epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimInstant {
    ns: u64,
}

impl SimInstant {
    /// The instant `ns` nanoseconds after the clock epoch.
    pub fn from_ns(ns: u64) -> SimInstant {
        SimInstant { ns }
    }

    /// Nanoseconds since the clock epoch.
    pub fn as_ns(&self) -> u64 {
        self.ns
    }

    /// Time elapsed from `earlier` to `self` (zero when `earlier` is
    /// later — mirrors `Instant::saturating_duration_since`).
    pub fn duration_since(&self, earlier: SimInstant) -> Duration {
        Duration::from_nanos(self.ns.saturating_sub(earlier.ns))
    }
}

#[derive(Debug)]
struct SimClockState {
    now_ns: AtomicU64,
    trace: SimTrace,
}

/// The process-wide epoch used by real clocks so that `SimInstant`
/// offsets from independently created handles stay comparable.
fn real_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// A clonable time source.
///
/// [`Clock::real`] (the `Default`) reads the machine clocks;
/// [`Clock::sim`]-backed handles share one virtual timeline that only
/// moves when someone sleeps on it (or a test advances it directly).
#[derive(Debug, Clone, Default)]
pub struct Clock {
    sim: Option<Arc<SimClockState>>,
}

impl Clock {
    /// The real-environment adapter over `std::time`.
    pub fn real() -> Clock {
        Clock { sim: None }
    }

    /// A virtual clock starting at zero, logging advances to `trace`.
    pub fn sim(trace: SimTrace) -> Clock {
        Clock {
            sim: Some(Arc::new(SimClockState {
                now_ns: AtomicU64::new(0),
                trace,
            })),
        }
    }

    /// Returns `true` for a virtual clock.
    pub fn is_sim(&self) -> bool {
        self.sim.is_some()
    }

    /// The current instant on this clock's timeline.
    pub fn now(&self) -> SimInstant {
        match &self.sim {
            Some(state) => SimInstant::from_ns(state.now_ns.load(Ordering::SeqCst)),
            None => SimInstant::from_ns(real_epoch().elapsed().as_nanos() as u64),
        }
    }

    /// Time elapsed since `earlier`.
    pub fn since(&self, earlier: SimInstant) -> Duration {
        self.now().duration_since(earlier)
    }

    /// Blocks for `duration` on a real clock; advances the virtual
    /// clock by `duration` (recording the jump) under simulation.
    pub fn sleep(&self, duration: Duration) {
        match &self.sim {
            Some(state) => {
                let ns = duration.as_nanos() as u64;
                let before = state.now_ns.fetch_add(ns, Ordering::SeqCst);
                state
                    .trace
                    .record(format!("clock.sleep ns={} now={}", ns, before + ns));
            }
            None => std::thread::sleep(duration),
        }
    }

    /// Advances a virtual clock without tracing a sleep — used by the
    /// simulator itself to model elapsed work. No-op on a real clock.
    pub fn advance(&self, duration: Duration) {
        if let Some(state) = &self.sim {
            state
                .now_ns
                .fetch_add(duration.as_nanos() as u64, Ordering::SeqCst);
        }
    }

    /// Wall-clock Unix milliseconds. Virtual clocks derive this from
    /// [`SIM_WALL_EPOCH_MS`] plus virtual elapsed time, so simulated
    /// timestamps replay identically.
    pub fn wall_unix_ms(&self) -> u64 {
        match &self.sim {
            Some(state) => SIM_WALL_EPOCH_MS + state.now_ns.load(Ordering::SeqCst) / 1_000_000,
            None => SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_advances_and_measures() {
        let c = Clock::real();
        assert!(!c.is_sim());
        let a = c.now();
        std::thread::sleep(Duration::from_millis(2));
        let b = c.now();
        assert!(b.duration_since(a) >= Duration::from_millis(1));
        assert_eq!(a.duration_since(b), Duration::ZERO, "saturates, not panics");
    }

    #[test]
    fn sim_clock_only_moves_when_asked() {
        let trace = SimTrace::enabled();
        let c = Clock::sim(trace.clone());
        assert!(c.is_sim());
        let a = c.now();
        let b = c.now();
        assert_eq!(a, b, "virtual time is frozen between events");
        c.sleep(Duration::from_millis(5));
        assert_eq!(c.since(a), Duration::from_millis(5));
        assert_eq!(trace.lines(), vec!["clock.sleep ns=5000000 now=5000000"]);
        c.advance(Duration::from_millis(1));
        assert_eq!(c.since(a), Duration::from_millis(6));
        assert_eq!(trace.len(), 1, "advance is silent");
    }

    #[test]
    fn sim_wall_clock_is_fixed_per_timeline() {
        let c = Clock::sim(SimTrace::disabled());
        assert_eq!(c.wall_unix_ms(), SIM_WALL_EPOCH_MS);
        c.sleep(Duration::from_millis(250));
        assert_eq!(c.wall_unix_ms(), SIM_WALL_EPOCH_MS + 250);
    }

    #[test]
    fn clones_share_the_timeline() {
        let c = Clock::sim(SimTrace::disabled());
        let d = c.clone();
        d.sleep(Duration::from_secs(1));
        assert_eq!(c.since(SimInstant::from_ns(0)), Duration::from_secs(1));
    }
}
