//! The assembled environments: [`Env`] (what refactored production
//! code takes — a clock plus a filesystem) and [`SimEnv`] (the seeded
//! simulator that owns one of everything).
//!
//! One master seed fans out, via [`SimRng::fork`], into independent
//! streams for the disk's fault decisions, the scheduler's
//! interleaving picks, and the retry-jitter salt — so adding events to
//! one component never perturbs another, and the whole run is a pure
//! function of the seed.

use std::sync::Arc;

use hercules_obs::TimeSource;

use crate::clock::{Clock, SIM_WALL_EPOCH_MS};
use crate::fs::Fs;
use crate::interleave::Interleaver;
use crate::rng::SimRng;
use crate::simfs::SimFsState;
use crate::trace::SimTrace;

/// The capability bundle production code runs against: where time and
/// durability come from. `Env::default()` is the real machine.
#[derive(Debug, Clone, Default)]
pub struct Env {
    /// Time source (real or virtual).
    pub clock: Clock,
    /// Filesystem (real or simulated).
    pub fs: Fs,
}

impl Env {
    /// The real environment: machine clock, `std::fs`.
    pub fn real() -> Env {
        Env {
            clock: Clock::real(),
            fs: Fs::real(),
        }
    }

    /// Returns `true` when either capability is simulated.
    pub fn is_sim(&self) -> bool {
        self.clock.is_sim() || self.fs.is_sim()
    }
}

/// A [`TimeSource`] view of a virtual [`Clock`], for plugging the
/// simulator's timeline into an observability `Tracer`
/// (`Tracer::with_time_source`). Only meaningful for sim clocks; a
/// real clock should use `hercules_obs::RealTime` instead.
pub struct ClockTimeSource {
    clock: Clock,
}

impl ClockTimeSource {
    /// Wraps `clock`.
    pub fn new(clock: Clock) -> ClockTimeSource {
        ClockTimeSource { clock }
    }
}

impl TimeSource for ClockTimeSource {
    fn mono_ns(&self) -> u64 {
        self.clock.now().as_ns()
    }

    fn epoch_wall_ms(&self) -> u64 {
        SIM_WALL_EPOCH_MS
    }
}

/// The seeded single-threaded simulator: one virtual clock, one
/// simulated disk, one interleaving chooser, and one shared event
/// log, all deterministic functions of the master seed.
#[derive(Debug)]
pub struct SimEnv {
    seed: u64,
    trace: SimTrace,
    clock: Clock,
    fs_state: Arc<SimFsState>,
    interleave: Interleaver,
    jitter_seed: u64,
}

impl SimEnv {
    /// A fresh simulated world derived entirely from `seed`.
    pub fn new(seed: u64) -> SimEnv {
        let trace = SimTrace::enabled();
        trace.record(format!("sim.start seed={seed}"));
        let mut master = SimRng::new(seed);
        let disk_rng = master.fork(1);
        let sched_rng = master.fork(2);
        let jitter_seed = master.fork(3).next_u64();
        let clock = Clock::sim(trace.clone());
        let fs_state = Arc::new(SimFsState::new(disk_rng, trace.clone()));
        let interleave = Interleaver::sim(sched_rng, trace.clone());
        SimEnv {
            seed,
            trace,
            clock,
            fs_state,
            interleave,
            jitter_seed,
        }
    }

    /// The master seed this world was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shared event log.
    pub fn trace(&self) -> &SimTrace {
        &self.trace
    }

    /// The virtual clock.
    pub fn clock(&self) -> Clock {
        self.clock.clone()
    }

    /// A filesystem handle onto the simulated disk.
    pub fn fs(&self) -> Fs {
        Fs::sim(Arc::clone(&self.fs_state))
    }

    /// The simulated disk itself (crash points, fsync dropping,
    /// operation counts).
    pub fn fs_state(&self) -> &Arc<SimFsState> {
        &self.fs_state
    }

    /// The scheduler-interleaving chooser.
    pub fn interleave(&self) -> Interleaver {
        self.interleave.clone()
    }

    /// The salt that makes retry-backoff jitter a function of the run
    /// seed.
    pub fn jitter_seed(&self) -> u64 {
        self.jitter_seed
    }

    /// The capability bundle to hand to production code.
    pub fn env(&self) -> Env {
        Env {
            clock: self.clock(),
            fs: self.fs(),
        }
    }

    /// A tracer time source on this world's virtual clock.
    pub fn time_source(&self) -> Arc<dyn TimeSource> {
        Arc::new(ClockTimeSource::new(self.clock()))
    }

    /// The world after the machine dies and reboots: the disk is
    /// replaced by a dice-rolled crash image (see
    /// [`SimFsState::crash_image`]); the clock, event log, scheduler
    /// stream, and jitter salt carry on, so the recovery run extends
    /// the same deterministic history.
    pub fn crash_and_reboot(&self) -> SimEnv {
        SimEnv {
            seed: self.seed,
            trace: self.trace.clone(),
            clock: self.clock.clone(),
            fs_state: Arc::new(self.fs_state.crash_image()),
            interleave: self.interleave.clone(),
            jitter_seed: self.jitter_seed,
        }
    }
}

/// The command line that replays a failing seed locally — printed by
/// every harness assertion so "reproduce from seed" is copy-paste.
pub fn repro_command(seed: u64, test: &str) -> String {
    format!("HERCULES_SIM_SEED={seed} cargo test --test sim_harness {test} -- --nocapture")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_obs::{RingBuffer, SpanId, Tracer};
    use std::time::Duration;

    #[test]
    fn same_seed_same_world() {
        let a = SimEnv::new(99);
        let b = SimEnv::new(99);
        assert_eq!(a.jitter_seed(), b.jitter_seed());
        assert_eq!(a.interleave().choose(5), b.interleave().choose(5));
        assert_eq!(a.trace().render(), b.trace().render());
    }

    #[test]
    fn env_real_is_not_sim() {
        assert!(!Env::real().is_sim());
        assert!(SimEnv::new(1).env().is_sim());
    }

    #[test]
    fn tracer_on_virtual_clock_is_deterministic() {
        let run = |seed: u64| {
            let sim = SimEnv::new(seed);
            let ring = Arc::new(RingBuffer::new(16));
            let tracer = Tracer::with_time_source(ring.clone(), sim.time_source());
            let span = tracer.begin("work", SpanId::NONE);
            sim.clock().sleep(Duration::from_millis(7));
            tracer.end(span);
            ring.snapshot()
                .iter()
                .map(|e| (e.mono_ns, e.wall_unix_ms))
                .collect::<Vec<_>>()
        };
        let a = run(4);
        assert_eq!(a, run(4), "timestamps replay identically");
        assert_eq!(a[0], (0, SIM_WALL_EPOCH_MS));
        assert_eq!(a[1], (7_000_000, SIM_WALL_EPOCH_MS + 7));
    }

    #[test]
    fn crash_and_reboot_extends_the_same_log() {
        let sim = SimEnv::new(3);
        let fs = sim.fs();
        let dir = std::path::Path::new("/ws");
        fs.create_dir_all(dir).expect("mkdir");
        let before = sim.trace().len();
        let rebooted = sim.crash_and_reboot();
        assert!(sim.trace().len() > before, "crash decisions are logged");
        assert_eq!(rebooted.seed(), 3);
        // The rebooted world writes into the same log.
        rebooted.fs().create_dir_all(dir).expect("mkdir after boot");
        assert!(sim
            .trace()
            .lines()
            .iter()
            .any(|l| l.starts_with("fs.crash_image")));
    }

    #[test]
    fn repro_command_names_the_seed_and_test() {
        let cmd = repro_command(42, "sim_multi_session");
        assert!(cmd.contains("HERCULES_SIM_SEED=42"));
        assert!(cmd.contains("sim_multi_session"));
    }
}
