//! Error type for flow execution.

use std::error::Error;
use std::fmt;

use hercules_flow::{FlowError, NodeId};
use hercules_history::HistoryError;

/// Errors raised while executing a flow.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
#[allow(missing_docs)] // variant fields are self-describing names/ids
pub enum ExecError {
    /// The flow is structurally unfit to run.
    Flow(FlowError),
    /// The history database rejected an operation.
    History(HistoryError),
    /// A leaf node has no instance bound to it. "Once instances have
    /// been selected for the leaf nodes, the non-leaf nodes become
    /// executable" (§4.1) — and not before.
    UnboundLeaf { node: NodeId, entity: String },
    /// An interior (computed) node was bound to an instance.
    BoundInteriorNode(NodeId),
    /// No encapsulation is registered for the tool (or composite)
    /// entity.
    MissingEncapsulation { entity: String },
    /// The tool ran but failed.
    ToolFailed { tool: String, message: String },
    /// The tool returned outputs that do not match the subtask's
    /// products.
    WrongOutputs { tool: String, detail: String },
    /// Multi-instance fan-out exceeded the configured limit.
    FanOutTooLarge { runs: usize, limit: usize },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Flow(e) => write!(f, "flow error: {e}"),
            ExecError::History(e) => write!(f, "history error: {e}"),
            ExecError::UnboundLeaf { node, entity } => write!(
                f,
                "leaf {node} (`{entity}`) has no instance selected"
            ),
            ExecError::BoundInteriorNode(node) => write!(
                f,
                "node {node} is computed by the flow and cannot be bound"
            ),
            ExecError::MissingEncapsulation { entity } => {
                write!(f, "no encapsulation registered for `{entity}`")
            }
            ExecError::ToolFailed { tool, message } => {
                write!(f, "tool `{tool}` failed: {message}")
            }
            ExecError::WrongOutputs { tool, detail } => {
                write!(f, "tool `{tool}` returned mismatched outputs: {detail}")
            }
            ExecError::FanOutTooLarge { runs, limit } => write!(
                f,
                "multi-instance selection fans out to {runs} runs (limit {limit})"
            ),
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Flow(e) => Some(e),
            ExecError::History(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlowError> for ExecError {
    fn from(e: FlowError) -> ExecError {
        ExecError::Flow(e)
    }
}

impl From<HistoryError> for ExecError {
    fn from(e: HistoryError) -> ExecError {
        ExecError::History(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let errors = vec![
            ExecError::UnboundLeaf {
                node: NodeId::from_index(1),
                entity: "Stimuli".into(),
            },
            ExecError::MissingEncapsulation {
                entity: "Simulator".into(),
            },
            ExecError::FanOutTooLarge {
                runs: 4096,
                limit: 1024,
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn sources_chain() {
        use std::error::Error as _;
        let e: ExecError = FlowError::Cycle.into();
        assert!(e.source().is_some());
        let e: ExecError =
            HistoryError::UnknownInstance(hercules_history::InstanceId::from_raw(0)).into();
        assert!(e.source().is_some());
    }
}
