//! Error type for flow execution.

use std::error::Error;
use std::fmt;

use hercules_flow::{FlowError, NodeId};
use hercules_history::HistoryError;

/// Errors raised while executing a flow.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
#[allow(missing_docs)] // variant fields are self-describing names/ids
pub enum ExecError {
    /// The flow is structurally unfit to run.
    Flow(FlowError),
    /// The history database rejected an operation.
    History(HistoryError),
    /// A leaf node has no instance bound to it. "Once instances have
    /// been selected for the leaf nodes, the non-leaf nodes become
    /// executable" (§4.1) — and not before.
    UnboundLeaf { node: NodeId, entity: String },
    /// An interior (computed) node was bound to an instance.
    BoundInteriorNode(NodeId),
    /// No encapsulation is registered for the tool (or composite)
    /// entity.
    MissingEncapsulation { entity: String },
    /// The tool ran but failed.
    ToolFailed { tool: String, message: String },
    /// The tool panicked; the supervisor caught the unwind instead of
    /// letting it take down the engine.
    ToolPanicked { tool: String, message: String },
    /// The tool exceeded the per-invocation deadline and was abandoned
    /// by its watchdog.
    ToolTimedOut { tool: String, deadline_ms: u64 },
    /// The tool returned outputs that do not match the subtask's
    /// products.
    WrongOutputs { tool: String, detail: String },
    /// Multi-instance fan-out exceeded the configured limit.
    FanOutTooLarge { runs: usize, limit: usize },
    /// [`ExecReport::try_single`](crate::ExecReport::try_single) was
    /// asked for the single instance of a node that has zero or
    /// several.
    NotSingleInstance { node: NodeId, count: usize },
    /// A failure restored from a persisted report: the original error
    /// was rendered to text when journaled, so only its message
    /// survives.
    Restored { message: String },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Flow(e) => write!(f, "flow error: {e}"),
            ExecError::History(e) => write!(f, "history error: {e}"),
            ExecError::UnboundLeaf { node, entity } => {
                write!(f, "leaf {node} (`{entity}`) has no instance selected")
            }
            ExecError::BoundInteriorNode(node) => {
                write!(f, "node {node} is computed by the flow and cannot be bound")
            }
            ExecError::MissingEncapsulation { entity } => {
                write!(f, "no encapsulation registered for `{entity}`")
            }
            ExecError::ToolFailed { tool, message } => {
                write!(f, "tool `{tool}` failed: {message}")
            }
            ExecError::ToolPanicked { tool, message } => {
                write!(f, "tool `{tool}` panicked: {message}")
            }
            ExecError::ToolTimedOut { tool, deadline_ms } => {
                write!(f, "tool `{tool}` exceeded its {deadline_ms}ms deadline")
            }
            ExecError::WrongOutputs { tool, detail } => {
                write!(f, "tool `{tool}` returned mismatched outputs: {detail}")
            }
            ExecError::FanOutTooLarge { runs, limit } => write!(
                f,
                "multi-instance selection fans out to {runs} runs (limit {limit})"
            ),
            ExecError::NotSingleInstance { node, count } => {
                write!(f, "node {node} has {count} instances, expected exactly one")
            }
            ExecError::Restored { message } => write!(f, "{message}"),
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Flow(e) => Some(e),
            ExecError::History(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlowError> for ExecError {
    fn from(e: FlowError) -> ExecError {
        ExecError::Flow(e)
    }
}

impl From<HistoryError> for ExecError {
    fn from(e: HistoryError) -> ExecError {
        ExecError::History(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let errors = vec![
            ExecError::UnboundLeaf {
                node: NodeId::from_index(1),
                entity: "Stimuli".into(),
            },
            ExecError::MissingEncapsulation {
                entity: "Simulator".into(),
            },
            ExecError::FanOutTooLarge {
                runs: 4096,
                limit: 1024,
            },
            ExecError::ToolPanicked {
                tool: "Simulator".into(),
                message: "index out of bounds".into(),
            },
            ExecError::ToolTimedOut {
                tool: "Simulator".into(),
                deadline_ms: 50,
            },
            ExecError::NotSingleInstance {
                node: NodeId::from_index(3),
                count: 0,
            },
            ExecError::Restored {
                message: "tool `Placer` failed: grid overflow".into(),
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn sources_chain() {
        use std::error::Error as _;
        let e: ExecError = FlowError::Cycle.into();
        assert!(e.source().is_some());
        let e: ExecError =
            HistoryError::UnknownInstance(hercules_history::InstanceId::from_raw(0)).into();
        assert!(e.source().is_some());
    }

    #[test]
    fn leaf_errors_have_no_source() {
        use std::error::Error as _;
        let e = ExecError::ToolPanicked {
            tool: "t".into(),
            message: "boom".into(),
        };
        assert!(e.source().is_none());
        let e = ExecError::ToolTimedOut {
            tool: "t".into(),
            deadline_ms: 10,
        };
        assert!(e.source().is_none());
    }
}
