//! Trace synthesis from finished executions and simulated schedules.
//!
//! A live run traces itself through [`ExecOptions::tracer`]; but a
//! report restored from a durable workspace has no live trace — only
//! per-task start offsets and durations. This module rebuilds an
//! equivalent event stream from those, so the same profiler, Gantt
//! renderer, and Chrome exporter work on replayed runs (`herctrace
//! --workspace`).
//!
//! [`ExecOptions::tracer`]: crate::ExecOptions::tracer

use hercules_flow::TaskGraph;
use hercules_obs::{AttrValue, EventKind, SpanId, TraceEvent};

use crate::cluster::Schedule;
use crate::engine::{ExecReport, TaskAction, TaskRecord};

/// Reconstructs the trace label of a task record — the same label a
/// live run would have attached (tool entity name + first output node).
pub fn task_label(record: &TaskRecord, flow: Option<&TaskGraph>) -> String {
    let Some(first) = record.outputs.first().copied() else {
        return "task".into();
    };
    match flow {
        Some(flow) => {
            let lookup = flow.tool_of(first).unwrap_or(first);
            match flow.entity_of(lookup) {
                Ok(entity) => format!("{}#n{}", flow.schema().entity(entity).name(), first.index()),
                Err(_) => format!("task#n{}", first.index()),
            }
        }
        None => format!("task#n{}", first.index()),
    }
}

fn node_list(nodes: &[hercules_flow::NodeId]) -> String {
    let mut out = String::new();
    for (i, n) in nodes.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push('n');
        out.push_str(&n.index().to_string());
    }
    out
}

/// Assigns compact lanes to `(start, end)` intervals so overlapping
/// tasks land on different lanes — a reconstruction of the worker
/// threads a parallel run used.
fn assign_lanes(intervals: &[(u64, u64)]) -> Vec<u64> {
    // Greedy interval coloring over start-sorted indices.
    let mut order: Vec<usize> = (0..intervals.len()).collect();
    order.sort_by_key(|&i| (intervals[i].0, intervals[i].1, i));
    let mut lane_free_at: Vec<u64> = Vec::new();
    let mut lanes = vec![0u64; intervals.len()];
    for i in order {
        let (start, end) = intervals[i];
        match lane_free_at.iter().position(|&free_at| free_at <= start) {
            Some(lane) => {
                lane_free_at[lane] = end;
                lanes[i] = 1 + lane as u64;
            }
            None => {
                lane_free_at.push(end);
                lanes[i] = lane_free_at.len() as u64;
            }
        }
    }
    lanes
}

/// Synthesizes a trace-event stream from a finished report.
///
/// Passing the flow the report came from recovers task labels and the
/// dependency attributes (`outputs`/`inputs`), so the profiler can
/// rebuild the exact task DAG; without it, tasks keep node-derived
/// labels and no dependency edges.
///
/// Wall-clock stamps are zero (the report does not store them); all
/// analysis works on the monotonic offsets. Skipped subtasks become
/// `skip` instants, mirroring a live trace.
pub fn report_to_trace(report: &ExecReport, flow: Option<&TaskGraph>) -> Vec<TraceEvent> {
    let ran: Vec<&TaskRecord> = report
        .tasks
        .iter()
        .filter(|t| !matches!(t.action, TaskAction::Skipped))
        .collect();
    let intervals: Vec<(u64, u64)> = ran
        .iter()
        .map(|t| {
            let start = t.started.as_nanos() as u64;
            (start, start + (t.duration.as_nanos() as u64).max(1))
        })
        .collect();
    let lanes = assign_lanes(&intervals);
    let root_end = intervals.iter().map(|&(_, e)| e).max().unwrap_or(0);

    let root = SpanId(1);
    let mut events = Vec::with_capacity(report.tasks.len() * 2 + 2);
    events.push(TraceEvent {
        kind: EventKind::Begin,
        id: root,
        parent: SpanId::NONE,
        name: "execute".into(),
        mono_ns: 0,
        wall_unix_ms: 0,
        tid: 0,
        attrs: vec![("replayed".into(), AttrValue::Bool(true))],
    });

    let mut next_id = 2u64;
    for (record, (&(start, end), &lane)) in ran.iter().zip(intervals.iter().zip(&lanes)) {
        let id = SpanId(next_id);
        next_id += 1;
        let mut attrs: Vec<(String, AttrValue)> = vec![
            ("task".into(), AttrValue::Str(task_label(record, flow))),
            ("outputs".into(), AttrValue::Str(node_list(&record.outputs))),
            (
                "attempts".into(),
                AttrValue::UInt(u64::from(record.attempts)),
            ),
            (
                "cache_hit".into(),
                AttrValue::Bool(record.action == TaskAction::Cached),
            ),
        ];
        if let (Some(flow), Some(&first)) = (flow, record.outputs.first()) {
            let mut deps = flow.data_inputs_of(first);
            deps.sort();
            if let Some(tool) = flow.tool_of(first) {
                deps.push(tool);
            }
            attrs.push(("inputs".into(), AttrValue::Str(node_list(&deps))));
        }
        if let TaskAction::Failed { error } = &record.action {
            attrs.push(("ok".into(), AttrValue::Bool(false)));
            attrs.push(("error".into(), AttrValue::Str(error.to_string())));
        } else {
            attrs.push(("ok".into(), AttrValue::Bool(true)));
        }
        events.push(TraceEvent {
            kind: EventKind::Begin,
            id,
            parent: root,
            name: "task".into(),
            mono_ns: start,
            wall_unix_ms: 0,
            tid: lane,
            attrs,
        });
        events.push(TraceEvent {
            kind: EventKind::End,
            id,
            parent: SpanId::NONE,
            name: String::new(),
            mono_ns: end,
            wall_unix_ms: 0,
            tid: lane,
            attrs: Vec::new(),
        });
    }
    for record in report.tasks.iter() {
        if matches!(record.action, TaskAction::Skipped) {
            let id = SpanId(next_id);
            next_id += 1;
            events.push(TraceEvent {
                kind: EventKind::Instant,
                id,
                parent: root,
                name: "skip".into(),
                mono_ns: record.started.as_nanos() as u64,
                wall_unix_ms: 0,
                tid: 0,
                attrs: vec![("outputs".into(), AttrValue::Str(node_list(&record.outputs)))],
            });
        }
    }
    events.push(TraceEvent {
        kind: EventKind::End,
        id: root,
        parent: SpanId::NONE,
        name: String::new(),
        mono_ns: root_end,
        wall_unix_ms: 0,
        tid: 0,
        attrs: Vec::new(),
    });
    events.sort_by_key(|e| (e.mono_ns, e.id.0));
    events
}

/// Renders a simulated [`Schedule`] as trace events (one lane per
/// machine, one abstract work unit = 1µs), so `chrome://tracing` can
/// display the planning-side Gantt next to real executions.
pub fn schedule_to_trace(schedule: &Schedule, flow: Option<&TaskGraph>) -> Vec<TraceEvent> {
    const UNIT_NS: u64 = 1_000;
    let root = SpanId(1);
    let mut events = Vec::with_capacity(schedule.tasks.len() * 2 + 2);
    events.push(TraceEvent {
        kind: EventKind::Begin,
        id: root,
        parent: SpanId::NONE,
        name: "schedule".into(),
        mono_ns: 0,
        wall_unix_ms: 0,
        tid: 0,
        attrs: vec![
            ("machines".into(), AttrValue::UInt(schedule.machines as u64)),
            ("makespan".into(), AttrValue::UInt(schedule.makespan)),
        ],
    });
    for (next_id, task) in (2u64..).zip(schedule.tasks.iter()) {
        let id = SpanId(next_id);
        let label = match flow {
            Some(flow) => match flow.entity_of(task.node) {
                Ok(entity) => format!(
                    "{}#n{}",
                    flow.schema().entity(entity).name(),
                    task.node.index()
                ),
                Err(_) => format!("task#n{}", task.node.index()),
            },
            None => format!("task#n{}", task.node.index()),
        };
        events.push(TraceEvent {
            kind: EventKind::Begin,
            id,
            parent: root,
            name: "task".into(),
            mono_ns: task.start * UNIT_NS,
            wall_unix_ms: 0,
            tid: task.machine as u64,
            attrs: vec![
                ("task".into(), AttrValue::Str(label)),
                ("machine".into(), AttrValue::UInt(task.machine as u64)),
            ],
        });
        events.push(TraceEvent {
            kind: EventKind::End,
            id,
            parent: SpanId::NONE,
            name: String::new(),
            mono_ns: task.end.max(task.start + 1) * UNIT_NS,
            wall_unix_ms: 0,
            tid: task.machine as u64,
            attrs: Vec::new(),
        });
    }
    events.push(TraceEvent {
        kind: EventKind::End,
        id: root,
        parent: SpanId::NONE,
        name: String::new(),
        mono_ns: schedule.makespan * UNIT_NS,
        wall_unix_ms: 0,
        tid: 0,
        attrs: Vec::new(),
    });
    events.sort_by_key(|e| (e.mono_ns, e.id.0));
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{simulate_schedule, UniformCost};
    use crate::toy;
    use crate::{Binding, Executor};
    use hercules_history::HistoryDb;
    use hercules_obs::profile;
    use hercules_schema::fixtures;
    use std::sync::Arc;

    #[test]
    fn lanes_separate_overlapping_intervals() {
        // [0,10] and [5,15] overlap; [10,20] can reuse lane 1.
        let lanes = assign_lanes(&[(0, 10), (5, 15), (10, 20)]);
        assert_ne!(lanes[0], lanes[1]);
        assert_eq!(lanes[0], lanes[2]);
    }

    #[test]
    fn report_round_trips_into_profile() {
        let schema = Arc::new(fixtures::fig1());
        let mut db = HistoryDb::new(schema.clone());
        toy::seed_everything(&mut db, "setup");
        let flow = hercules_flow::fixtures::fig5(schema.clone()).expect("fixture");
        let mut binding = Binding::new();
        binding.bind_latest(&flow, &db);
        let executor = Executor::new(toy::text_registry(&schema));
        let report = executor.execute(&flow, &binding, &mut db).expect("runs");

        let events = report_to_trace(&report, Some(&flow));
        let prof = profile::profile(&events);
        assert_eq!(prof.tasks.len(), report.tasks.len());
        assert!(!prof.critical_path.is_empty());
        // fig5's chain (compose → simulate → plot) must show up as
        // dependency edges. The *weighted* critical path depends on
        // measured durations, so assert on DAG depth instead.
        let deps: std::collections::HashMap<&str, &[String]> = prof
            .tasks
            .iter()
            .map(|t| (t.label.as_str(), t.deps.as_slice()))
            .collect();
        fn depth(label: &str, deps: &std::collections::HashMap<&str, &[String]>) -> usize {
            1 + deps
                .get(label)
                .map(|ds| ds.iter().map(|d| depth(d, deps)).max().unwrap_or(0))
                .unwrap_or(0)
        }
        let max_depth = prof
            .tasks
            .iter()
            .map(|t| depth(&t.label, &deps))
            .max()
            .unwrap_or(0);
        assert!(
            max_depth >= 3,
            "expected a dependency chain of depth >= 3, got {max_depth}"
        );
        assert!(events.windows(2).all(|w| w[0].mono_ns <= w[1].mono_ns));
    }

    #[test]
    fn schedule_exports_per_machine_lanes() {
        let schema = Arc::new(fixtures::fig1());
        let flow = hercules_flow::fixtures::fig6(schema).expect("fixture");
        let schedule = simulate_schedule(&flow, &UniformCost(10), 2).expect("schedules");
        let events = schedule_to_trace(&schedule, Some(&flow));
        let machines: std::collections::HashSet<u64> = events
            .iter()
            .filter(|e| e.name == "task")
            .map(|e| e.tid)
            .collect();
        assert!(machines.len() >= 2, "two machines, two lanes");
        let chrome = hercules_obs::chrome::to_chrome_trace(&events);
        assert!(chrome.contains("\"traceEvents\""));
    }
}
