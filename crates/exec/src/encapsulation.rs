//! Tool encapsulations: the boundary between the framework and the
//! tools it manages.
//!
//! The framework never sees inside a tool; it hands the encapsulation
//! the instance *data* (bytes — the originals exchanged files) of the
//! tool, its inputs, and the entity types of the expected products, and
//! records whatever comes back. Everything §3.3 describes lives at this
//! boundary: multi-function tools (one encapsulation registered for two
//! entity types), shared encapsulations (three optimizers, one
//! implementation), tools as data (the tool's own instance data is just
//! another input), and per-instance vs single-call multi-instance
//! behaviour.

use std::collections::HashMap;
use std::sync::Arc;

use hercules_schema::{EntityTypeId, TaskSchema};

use crate::error::ExecError;

/// One data input slot of an invocation.
#[derive(Debug, Clone)]
pub struct ToolInput {
    /// Entity type of the flow node feeding this slot.
    pub entity: EntityTypeId,
    /// The instance payloads selected for the slot. Exactly one under
    /// [`MultiInstanceMode::RunPerInstance`]; possibly several under
    /// [`MultiInstanceMode::SingleCall`].
    pub instances: Vec<Vec<u8>>,
}

/// One tool invocation as the encapsulation sees it.
#[derive(Debug, Clone)]
pub struct Invocation {
    /// Entity type of the tool node (or of the composite entity for
    /// tool-less composition subtasks).
    pub tool_entity: EntityTypeId,
    /// Instance data of the tool itself — the tool is "just another
    /// parameter", so a compiled simulator's program arrives here.
    pub tool_data: Option<Vec<u8>>,
    /// Data inputs, in the subtask's edge order.
    pub inputs: Vec<ToolInput>,
    /// Entity types of the expected products, in subtask order. More
    /// than one for Fig. 5's multi-output subtasks.
    pub outputs: Vec<EntityTypeId>,
}

impl Invocation {
    /// Returns the single payload of the first input slot of the given
    /// entity family.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::ToolFailed`] if the slot is absent or holds
    /// more than one instance.
    pub fn input_of(&self, schema: &TaskSchema, entity: EntityTypeId) -> Result<&[u8], ExecError> {
        let slot = self
            .inputs
            .iter()
            .find(|i| schema.is_subtype_of(i.entity, entity))
            .ok_or_else(|| ExecError::ToolFailed {
                tool: schema.entity(self.tool_entity).name().to_owned(),
                message: format!("missing input `{}`", schema.entity(entity).name()),
            })?;
        if slot.instances.len() != 1 {
            return Err(ExecError::ToolFailed {
                tool: schema.entity(self.tool_entity).name().to_owned(),
                message: format!(
                    "expected one `{}` instance, got {}",
                    schema.entity(entity).name(),
                    slot.instances.len()
                ),
            });
        }
        Ok(&slot.instances[0])
    }
}

/// One produced artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToolOutput {
    /// Entity type of the product.
    pub entity: EntityTypeId,
    /// Payload bytes.
    pub data: Vec<u8>,
    /// Optional annotation name for the instance.
    pub name: String,
}

impl ToolOutput {
    /// Creates an unnamed output.
    pub fn new(entity: EntityTypeId, data: Vec<u8>) -> ToolOutput {
        ToolOutput {
            entity,
            data,
            name: String::new(),
        }
    }

    /// Creates a named output.
    pub fn named(entity: EntityTypeId, data: Vec<u8>, name: &str) -> ToolOutput {
        ToolOutput {
            entity,
            data,
            name: name.to_owned(),
        }
    }
}

/// How an encapsulation wants multi-instance selections delivered
/// (§4.1: "the relevant encapsulation may cause the tool to be run for
/// each instance selected or it may pass all of the data to a single
/// call of the tool").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MultiInstanceMode {
    /// One invocation per combination of selected instances.
    #[default]
    RunPerInstance,
    /// One invocation receiving every selected instance.
    SingleCall,
}

/// A tool encapsulation.
pub trait Encapsulation: Send + Sync {
    /// Runs the tool for one invocation, producing one payload per
    /// requested output entity (in `invocation.outputs` order).
    ///
    /// # Errors
    ///
    /// Implementations report failures as [`ExecError::ToolFailed`].
    fn run(
        &self,
        schema: &TaskSchema,
        invocation: &Invocation,
    ) -> Result<Vec<ToolOutput>, ExecError>;

    /// Multi-instance delivery preference; defaults to per-instance
    /// runs.
    fn multi_instance_mode(&self) -> MultiInstanceMode {
        MultiInstanceMode::default()
    }
}

/// Registry mapping tool (and composite) entity types to
/// encapsulations.
///
/// Registering one `Arc` under several entity types is the paper's
/// shared-encapsulation technique; lookups walk the subtype chain so a
/// tool subtype inherits its family's encapsulation.
#[derive(Clone, Default)]
pub struct EncapsulationRegistry {
    map: HashMap<EntityTypeId, Arc<dyn Encapsulation>>,
}

impl std::fmt::Debug for EncapsulationRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut ids: Vec<_> = self.map.keys().collect();
        ids.sort();
        f.debug_struct("EncapsulationRegistry")
            .field("entities", &ids)
            .finish()
    }
}

impl EncapsulationRegistry {
    /// Creates an empty registry.
    pub fn new() -> EncapsulationRegistry {
        EncapsulationRegistry::default()
    }

    /// Registers an encapsulation for an entity type (a tool, or a
    /// composite entity's composition function). Re-registration
    /// replaces the previous entry.
    pub fn register(&mut self, entity: EntityTypeId, enc: Arc<dyn Encapsulation>) {
        self.map.insert(entity, enc);
    }

    /// Looks up the encapsulation for `entity`, walking up the subtype
    /// chain.
    pub fn lookup(
        &self,
        schema: &TaskSchema,
        entity: EntityTypeId,
    ) -> Option<&Arc<dyn Encapsulation>> {
        let mut cur = Some(entity);
        while let Some(e) = cur {
            if let Some(enc) = self.map.get(&e) {
                return Some(enc);
            }
            cur = schema.entity(e).supertype();
        }
        None
    }

    /// Returns the number of registered entity types.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_schema::SchemaBuilder;

    struct Echo;
    impl Encapsulation for Echo {
        fn run(
            &self,
            _schema: &TaskSchema,
            invocation: &Invocation,
        ) -> Result<Vec<ToolOutput>, ExecError> {
            Ok(invocation
                .outputs
                .iter()
                .map(|&e| ToolOutput::new(e, b"echo".to_vec()))
                .collect())
        }
    }

    #[test]
    fn lookup_walks_subtype_chain() {
        let mut b = SchemaBuilder::new();
        let sim = b.tool("Simulator");
        let fast = b.subtype("FastSimulator", sim);
        let schema = b.build().expect("valid");
        let mut reg = EncapsulationRegistry::new();
        assert!(reg.is_empty());
        reg.register(sim, Arc::new(Echo));
        assert_eq!(reg.len(), 1);
        assert!(reg.lookup(&schema, fast).is_some(), "inherited");
        assert!(reg.lookup(&schema, sim).is_some());
    }

    #[test]
    fn shared_encapsulation_under_two_entities() {
        let mut b = SchemaBuilder::new();
        let t1 = b.tool("LayoutEditor");
        let t2 = b.tool("Extractor");
        let schema = b.build().expect("valid");
        let shared: Arc<dyn Encapsulation> = Arc::new(Echo);
        let mut reg = EncapsulationRegistry::new();
        reg.register(t1, shared.clone());
        reg.register(t2, shared);
        assert!(reg.lookup(&schema, t1).is_some());
        assert!(reg.lookup(&schema, t2).is_some());
    }

    #[test]
    fn missing_lookup_returns_none() {
        let mut b = SchemaBuilder::new();
        let t = b.tool("Mystery");
        let schema = b.build().expect("valid");
        let reg = EncapsulationRegistry::new();
        assert!(reg.lookup(&schema, t).is_none());
    }

    #[test]
    fn invocation_input_of() {
        let mut b = SchemaBuilder::new();
        let sim = b.tool("Simulator");
        let net = b.data("Netlist");
        let schema = b.build().expect("valid");
        let inv = Invocation {
            tool_entity: sim,
            tool_data: None,
            inputs: vec![ToolInput {
                entity: net,
                instances: vec![b"n1".to_vec()],
            }],
            outputs: vec![],
        };
        assert_eq!(inv.input_of(&schema, net).expect("present"), b"n1");
        assert!(inv.input_of(&schema, sim).is_err());
    }
}
