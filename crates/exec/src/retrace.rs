//! Automatic retracing for design-consistency maintenance (§3.3).
//!
//! "Design consistency maintenance (i.e., automatic retracing of a flow
//! to update derived design data) is readily supported through the
//! storage of the design history." [`retrace`] first computes the
//! [`RetraceCone`] — the structured prediction of what retracing will
//! touch, shared with the `HL0503` analysis pass — then recalls the
//! flow that produced the instance, *cutting* the recall at every
//! version cut the cone found (binding the newest version there instead
//! of re-running its producer), and re-executes with caching on — so
//! only the tasks affected by newer inputs actually re-run.

use std::collections::HashMap;

use hercules_flow::{NodeId, TaskGraph};
use hercules_history::{HistoryDb, InstanceId, RetraceCone};
use hercules_schema::DepKind;

use crate::binding::Binding;
use crate::engine::{ExecReport, Executor};
use crate::error::ExecError;

/// The result of a retrace.
#[derive(Debug, Clone)]
pub struct RetraceReport {
    /// The underlying execution report.
    pub report: ExecReport,
    /// Up-to-date instances for the retraced goal.
    pub goal_instances: Vec<InstanceId>,
    /// `true` when nothing had to re-run (the goal was already
    /// current).
    pub already_current: bool,
    /// The cone computed before execution: what the history predicted
    /// this retrace would recall, cut, and re-run.
    pub cone: RetraceCone,
}

/// Recall-flow builder: derivation history → task graph with a version
/// cutoff. The cutoff decisions come from a precomputed
/// [`RetraceCone`]: `cuts` maps each superseded instance the cone found
/// to the newest version bound in its place.
struct Recall<'a> {
    db: &'a HistoryDb,
    cuts: HashMap<InstanceId, InstanceId>,
    flow: TaskGraph,
    binding: Binding,
    node_of: HashMap<InstanceId, NodeId>,
}

impl<'a> Recall<'a> {
    fn new(db: &'a HistoryDb, cone: &RetraceCone) -> Recall<'a> {
        Recall {
            db,
            cuts: cone.cuts.iter().map(|c| (c.superseded, c.newest)).collect(),
            flow: TaskGraph::new(db.schema().clone()),
            binding: Binding::new(),
            node_of: HashMap::new(),
        }
    }

    /// Visits one instance. With `fast_forward`, a superseded instance
    /// becomes a leaf bound to its newest version; the exception is an
    /// edit's own version predecessor, which is pinned as-is (an edit
    /// is never "stale" with respect to the version it edits).
    fn visit(&mut self, inst: InstanceId, fast_forward: bool) -> Result<NodeId, ExecError> {
        if let Some(&node) = self.node_of.get(&inst) {
            return Ok(node);
        }
        let record = self.db.instance(inst)?;
        let entity = record.entity();
        let node = self.flow.add_node_raw(entity)?;
        self.node_of.insert(inst, node);

        if fast_forward {
            if let Some(&newest) = self.cuts.get(&inst) {
                self.binding.bind(node, newest);
                return Ok(node);
            }
        }
        let Some(derivation) = record.derivation().cloned() else {
            // Primary instance: a leaf bound to itself.
            self.binding.bind(node, inst);
            return Ok(node);
        };
        let version_parent = self.db.version_parent(inst)?;
        if let Some(tool) = derivation.tool {
            let tool_node = self.visit(tool, true)?;
            self.flow
                .add_edge_raw(tool_node, node, DepKind::Functional)?;
        }
        for input in derivation.inputs {
            let pinned = Some(input) == version_parent;
            let input_node = self.visit(input, !pinned)?;
            if pinned && !self.flow.is_expanded(input_node) {
                // Pinned predecessor stays a leaf bound to itself.
                self.binding.bind(input_node, input);
            }
            self.flow.add_edge_raw(input_node, node, DepKind::Data)?;
        }
        Ok(node)
    }
}

/// Retraces the flow that produced `goal`: computes the retrace cone,
/// recalls the derivation history as a task graph with the cone's
/// version cuts applied, and re-executes with result caching.
/// Unaffected sub-results are served from the cache; tasks whose inputs
/// gained newer versions re-run against those versions.
///
/// # Errors
///
/// Propagates history and execution errors.
///
/// # Examples
///
/// See `tests/consistency.rs` for an end-to-end out-of-date /
/// retrace cycle.
pub fn retrace(
    executor: &Executor,
    db: &mut HistoryDb,
    goal: InstanceId,
) -> Result<RetraceReport, ExecError> {
    let cone = RetraceCone::compute(db, goal)?;
    let mut recall = Recall::new(db, &cone);
    let goal_node = recall.visit(goal, false)?;
    let Recall { flow, binding, .. } = recall;

    // Force caching on: unchanged sub-results must be reused, that is
    // the whole point of consistency maintenance.
    let mut executor = executor.clone();
    executor.options_mut().reuse_cached = true;
    let report = executor.execute(&flow, &binding, db)?;

    let goal_instances = report.instances_of(goal_node).to_vec();
    let already_current = report.runs() == 0;
    Ok(RetraceReport {
        report,
        goal_instances,
        already_current,
        cone,
    })
}
