//! Retry and failure policies for flow execution.
//!
//! Real tool runs fail for transient reasons — a license briefly
//! unavailable, a solver hitting a flaky seed — and a design-management
//! framework that re-sequences tools automatically (§3.3) should also
//! re-try them automatically. [`RetryPolicy`] bounds the attempts and
//! spaces them with exponential backoff plus deterministic jitter;
//! [`FailurePolicy`] decides what one subtask's permanent failure means
//! for the rest of the flow.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Duration;

use crate::error::ExecError;

/// How failed tool invocations are retried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per invocation, including the first; at least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per further attempt.
    pub base_delay: Duration,
    /// Upper bound on any single backoff delay.
    pub max_delay: Duration,
    /// Whether deadline overruns ([`ExecError::ToolTimedOut`]) are
    /// retried.
    pub retry_timeouts: bool,
    /// Whether caught panics ([`ExecError::ToolPanicked`]) are retried.
    /// Off by default: a panic usually reproduces.
    pub retry_panics: bool,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(2),
            retry_timeouts: true,
            retry_panics: false,
        }
    }
}

impl RetryPolicy {
    /// A policy making up to `max_attempts` attempts with the default
    /// backoff shape.
    pub fn attempts(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// Returns whether `error` is worth another attempt.
    ///
    /// Tool failures are presumed transient; timeouts and panics follow
    /// the policy's flags; structural errors (wrong outputs, missing
    /// encapsulations, flow or history problems) never retry — the
    /// re-run would fail identically.
    pub fn is_retryable(&self, error: &ExecError) -> bool {
        match error {
            ExecError::ToolFailed { .. } => true,
            ExecError::ToolTimedOut { .. } => self.retry_timeouts,
            ExecError::ToolPanicked { .. } => self.retry_panics,
            _ => false,
        }
    }

    /// Backoff before attempt number `next_attempt` (2-based: the delay
    /// precedes the second attempt), with deterministic jitter derived
    /// from `salt`.
    ///
    /// Identical (policy, salt, attempt) triples always produce the
    /// same delay, so schedules are reproducible run to run.
    pub fn delay_before(&self, next_attempt: u32, salt: u64) -> Duration {
        let doublings = next_attempt.saturating_sub(2).min(20);
        let base = self
            .base_delay
            .saturating_mul(1u32 << doublings)
            .min(self.max_delay);
        // Deterministic jitter in [0, base/2]: spreads simultaneous
        // retries without a clock or an RNG. DefaultHasher::new() uses
        // fixed keys, so the hash is stable across runs.
        let mut hasher = DefaultHasher::new();
        (salt, next_attempt).hash(&mut hasher);
        let jitter_range = (base.as_nanos() / 2) as u64;
        let jitter = if jitter_range == 0 {
            0
        } else {
            hasher.finish() % (jitter_range + 1)
        };
        (base + Duration::from_nanos(jitter)).min(self.max_delay)
    }
}

/// What a subtask's permanent failure means for the rest of the flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Stop the execution and return the error. Nothing from the
    /// failing wave is committed.
    #[default]
    Abort,
    /// Keep executing disjoint branches (Fig. 6): the failed subtask is
    /// reported as failed, its downstream cone as skipped, and every
    /// independent subtask still runs and commits.
    ContinueDisjoint,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_flow::NodeId;

    #[test]
    fn default_policy_makes_one_attempt() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(RetryPolicy::attempts(0).max_attempts, 1, "clamped");
        assert_eq!(RetryPolicy::attempts(3).max_attempts, 3);
    }

    #[test]
    fn retryability_follows_error_class() {
        let p = RetryPolicy::default();
        let failed = ExecError::ToolFailed {
            tool: "t".into(),
            message: "m".into(),
        };
        let timed_out = ExecError::ToolTimedOut {
            tool: "t".into(),
            deadline_ms: 10,
        };
        let panicked = ExecError::ToolPanicked {
            tool: "t".into(),
            message: "m".into(),
        };
        let wrong = ExecError::WrongOutputs {
            tool: "t".into(),
            detail: "d".into(),
        };
        let structural = ExecError::BoundInteriorNode(NodeId::from_index(0));

        assert!(p.is_retryable(&failed));
        assert!(p.is_retryable(&timed_out));
        assert!(!p.is_retryable(&panicked), "panics off by default");
        assert!(!p.is_retryable(&wrong), "corrupt outputs never retry");
        assert!(!p.is_retryable(&structural));

        let lenient = RetryPolicy {
            retry_panics: true,
            retry_timeouts: false,
            ..RetryPolicy::default()
        };
        assert!(lenient.is_retryable(&panicked));
        assert!(!lenient.is_retryable(&timed_out));
    }

    #[test]
    fn backoff_grows_and_is_deterministic() {
        let p = RetryPolicy {
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
            ..RetryPolicy::default()
        };
        let d2 = p.delay_before(2, 7);
        let d4 = p.delay_before(4, 7);
        assert!(d2 >= Duration::from_millis(10));
        assert!(d4 >= Duration::from_millis(40), "exponential: {d4:?}");
        assert!(d4 <= Duration::from_millis(200), "clamped: {d4:?}");
        assert_eq!(d2, p.delay_before(2, 7), "same salt, same delay");
        assert_ne!(
            p.delay_before(2, 1),
            p.delay_before(2, 2),
            "different salts spread out"
        );
        // Far-future attempts saturate at max_delay instead of
        // overflowing the doubling.
        assert_eq!(p.delay_before(64, 7), Duration::from_millis(200));
    }

    #[test]
    fn failure_policy_defaults_to_abort() {
        assert_eq!(FailurePolicy::default(), FailurePolicy::Abort);
    }
}
