//! Multi-machine schedule simulation (Fig. 6's "possibly on different
//! machines").
//!
//! The 1993 setting ran tools on a farm of workstations; this module
//! simulates list-scheduling a flow's subtasks onto `k` machines with a
//! per-task cost model, producing the makespan and per-machine
//! timeline. It is a *planning* tool — the real executor runs threads —
//! used to answer "how many machines would this flow keep busy?" and to
//! drive the distribution ablation bench.

use std::collections::HashMap;

use hercules_flow::{NodeId, TaskGraph};

use crate::error::ExecError;

/// Cost model: simulated duration of the task producing a node, in
/// abstract work units.
pub trait CostModel {
    /// Returns the cost of the subtask whose (first) output is `node`.
    fn cost(&self, flow: &TaskGraph, node: NodeId) -> u64;
}

/// Every task costs the same.
#[derive(Debug, Clone, Copy)]
pub struct UniformCost(pub u64);

impl CostModel for UniformCost {
    fn cost(&self, _flow: &TaskGraph, _node: NodeId) -> u64 {
        self.0
    }
}

/// Cost proportional to the task's input count (a crude proxy for data
/// volume).
#[derive(Debug, Clone, Copy)]
pub struct FaninCost {
    /// Cost per input edge.
    pub per_input: u64,
    /// Fixed overhead per invocation.
    pub base: u64,
}

impl CostModel for FaninCost {
    fn cost(&self, flow: &TaskGraph, node: NodeId) -> u64 {
        self.base + self.per_input * flow.producers_of(node).count() as u64
    }
}

/// One scheduled task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledTask {
    /// Output node identifying the subtask.
    pub node: NodeId,
    /// Machine index it ran on.
    pub machine: usize,
    /// Start time.
    pub start: u64,
    /// End time.
    pub end: u64,
}

/// A simulated schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Tasks in start order.
    pub tasks: Vec<ScheduledTask>,
    /// Number of machines used.
    pub machines: usize,
    /// Completion time of the whole flow.
    pub makespan: u64,
    /// Sum of all task durations (the serial lower bound on one
    /// machine).
    pub total_work: u64,
}

impl Schedule {
    /// Parallel efficiency: total work / (machines × makespan), 1.0
    /// when every machine is busy the whole time.
    pub fn efficiency(&self) -> f64 {
        if self.makespan == 0 || self.machines == 0 {
            return 1.0;
        }
        self.total_work as f64 / (self.machines as f64 * self.makespan as f64)
    }

    /// The speedup over running everything on one machine.
    pub fn speedup(&self) -> f64 {
        if self.makespan == 0 {
            return 1.0;
        }
        self.total_work as f64 / self.makespan as f64
    }
}

/// List-schedules the flow's interior tasks onto `machines` identical
/// machines: at every point the earliest-available machine takes the
/// ready task with the most downstream work (critical-path first).
///
/// # Errors
///
/// Returns [`ExecError::Flow`] for cyclic graphs; `machines` is
/// clamped to at least 1.
///
/// # Examples
///
/// ```
/// use hercules_exec::cluster::{simulate_schedule, UniformCost};
/// use hercules_flow::fixtures;
/// use hercules_schema::fixtures as schemas;
///
/// # fn main() -> Result<(), hercules_exec::ExecError> {
/// let schema = std::sync::Arc::new(schemas::fig1());
/// let flow = fixtures::fig6(schema)?;
/// let one = simulate_schedule(&flow, &UniformCost(10), 1)?;
/// let two = simulate_schedule(&flow, &UniformCost(10), 2)?;
/// assert!(two.makespan < one.makespan, "the disjoint branches overlap");
/// # Ok(())
/// # }
/// ```
pub fn simulate_schedule(
    flow: &TaskGraph,
    costs: &dyn CostModel,
    machines: usize,
) -> Result<Schedule, ExecError> {
    flow.validate_for_execution()?;
    let machines = machines.max(1);
    let order = flow.topo_order()?;
    let interior: Vec<NodeId> = order
        .iter()
        .copied()
        .filter(|&n| flow.is_expanded(n))
        .collect();

    // Downstream work per node (critical-path priority).
    let mut downstream: HashMap<NodeId, u64> = HashMap::new();
    for &node in order.iter().rev() {
        let own = if flow.is_expanded(node) {
            costs.cost(flow, node)
        } else {
            0
        };
        let below = flow
            .consumers_of(node)
            .map(|e| downstream.get(&e.target()).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        downstream.insert(node, own + below);
    }

    // Earliest time each node's data is available (leaves at 0).
    let mut ready_at: HashMap<NodeId, u64> = HashMap::new();
    for node in flow.node_ids() {
        if !flow.is_expanded(node) {
            ready_at.insert(node, 0);
        }
    }
    let mut machine_free = vec![0u64; machines];
    let mut pending: Vec<NodeId> = interior.clone();
    let mut tasks = Vec::with_capacity(pending.len());
    let mut total_work = 0u64;

    while !pending.is_empty() {
        // Ready tasks: all producers available.
        let mut ready: Vec<(NodeId, u64)> = pending
            .iter()
            .filter_map(|&n| {
                let inputs_ready: Option<u64> = flow
                    .producers_of(n)
                    .map(|e| ready_at.get(&e.source()).copied())
                    .collect::<Option<Vec<u64>>>()
                    .map(|v| v.into_iter().max().unwrap_or(0));
                inputs_ready.map(|t| (n, t))
            })
            .collect();
        if ready.is_empty() {
            return Err(ExecError::Flow(hercules_flow::FlowError::Cycle));
        }
        // Critical-path-first tie-breaking, deterministic.
        ready.sort_by_key(|&(n, t)| (t, std::cmp::Reverse(downstream[&n]), n));
        let (node, data_ready) = ready[0];
        pending.retain(|&p| p != node);

        let (machine, &free_at) = machine_free
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t, i))
            .expect("at least one machine");
        let start = free_at.max(data_ready);
        let cost = costs.cost(flow, node);
        let end = start + cost;
        total_work += cost;
        machine_free[machine] = end;
        ready_at.insert(node, end);
        tasks.push(ScheduledTask {
            node,
            machine,
            start,
            end,
        });
    }

    tasks.sort_by_key(|t| (t.start, t.machine));
    let makespan = tasks.iter().map(|t| t.end).max().unwrap_or(0);
    Ok(Schedule {
        tasks,
        machines,
        makespan,
        total_work,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_flow::fixtures;
    use hercules_schema::fixtures as schemas;
    use std::sync::Arc;

    fn fig6_flow() -> TaskGraph {
        let schema = Arc::new(schemas::fig1());
        fixtures::fig6(schema).expect("fixture")
    }

    #[test]
    fn one_machine_serializes_everything() {
        let flow = fig6_flow();
        let s = simulate_schedule(&flow, &UniformCost(10), 1).expect("schedules");
        assert_eq!(s.makespan, s.total_work, "no overlap on one machine");
        assert!((s.speedup() - 1.0).abs() < 1e-9);
        assert_eq!(s.tasks.len(), flow.interior().len());
    }

    #[test]
    fn two_machines_overlap_the_disjoint_branches() {
        let flow = fig6_flow();
        let one = simulate_schedule(&flow, &UniformCost(10), 1).expect("schedules");
        let two = simulate_schedule(&flow, &UniformCost(10), 2).expect("schedules");
        // Fig. 6: the edited-netlist branch and the extraction branch
        // overlap; the verification still waits for both.
        assert_eq!(one.makespan, 30, "3 tasks x 10");
        assert_eq!(two.makespan, 20, "two branches in parallel, then verify");
        assert!(two.efficiency() > 0.7);
    }

    #[test]
    fn extra_machines_beyond_the_width_are_idle() {
        let flow = fig6_flow();
        let two = simulate_schedule(&flow, &UniformCost(10), 2).expect("schedules");
        let ten = simulate_schedule(&flow, &UniformCost(10), 10).expect("schedules");
        assert_eq!(two.makespan, ten.makespan, "width-2 flow");
        assert!(ten.efficiency() < two.efficiency());
    }

    #[test]
    fn dependencies_are_never_violated() {
        let schema = Arc::new(schemas::fig1());
        let flow = fixtures::fig5(schema).expect("fixture");
        let s = simulate_schedule(
            &flow,
            &FaninCost {
                per_input: 3,
                base: 5,
            },
            3,
        )
        .expect("schedules");
        let end_of: HashMap<NodeId, u64> = s.tasks.iter().map(|t| (t.node, t.end)).collect();
        for t in &s.tasks {
            for e in flow.producers_of(t.node) {
                if let Some(&producer_end) = end_of.get(&e.source()) {
                    assert!(
                        producer_end <= t.start,
                        "{} started before its input finished",
                        t.node
                    );
                }
            }
        }
        // No machine runs two tasks at once.
        for a in &s.tasks {
            for b in &s.tasks {
                if a.node != b.node && a.machine == b.machine {
                    assert!(a.end <= b.start || b.end <= a.start);
                }
            }
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let flow = fig6_flow();
        let a = simulate_schedule(&flow, &UniformCost(7), 3).expect("schedules");
        let b = simulate_schedule(&flow, &UniformCost(7), 3).expect("schedules");
        assert_eq!(a, b);
    }

    #[test]
    fn zero_machines_clamps_to_one() {
        let flow = fig6_flow();
        let s = simulate_schedule(&flow, &UniformCost(1), 0).expect("schedules");
        assert_eq!(s.machines, 1);
    }
}
