//! Fault injection for exercising the engine's failure paths.
//!
//! [`FaultyEncapsulation`] wraps any real encapsulation and misbehaves
//! according to a deterministic [`FaultPlan`]: failing the first *n*
//! calls, panicking, sleeping past a watchdog deadline, or corrupting
//! its outputs. The chaos test-suite drives the Fig. 5 / Fig. 6
//! fixtures through these plans to prove that supervision, retry and
//! partial-failure reporting behave as specified.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hercules_schema::TaskSchema;

use crate::encapsulation::{Encapsulation, Invocation, MultiInstanceMode, ToolOutput};
use crate::error::ExecError;

/// The deterministic misbehaviour of a [`FaultyEncapsulation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlan {
    /// Fail the first `n` calls with [`ExecError::ToolFailed`], then
    /// delegate — a flaky tool that recovers under retry.
    FailTimes(u32),
    /// Panic on every call — proves a panicking tool cannot abort the
    /// engine.
    AlwaysPanic,
    /// Sleep this long before delegating — long enough to trip a
    /// watchdog deadline.
    SleepFor(Duration),
    /// Sleep on the first `times` calls, then delegate promptly — a
    /// hung tool that recovers when retried.
    SleepTimes {
        /// Number of initial slow calls.
        times: u32,
        /// Sleep duration of each slow call.
        duration: Duration,
    },
    /// Delegate, then drop the last output so the engine sees a
    /// non-retryable [`ExecError::WrongOutputs`].
    CorruptOutputs,
}

/// An encapsulation wrapper that injects faults per a [`FaultPlan`].
///
/// Call counting is atomic, so plans behave deterministically under the
/// parallel execution path too (each wrapped tool has its own counter).
pub struct FaultyEncapsulation {
    inner: Arc<dyn Encapsulation>,
    plan: FaultPlan,
    calls: AtomicUsize,
}

impl FaultyEncapsulation {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: Arc<dyn Encapsulation>, plan: FaultPlan) -> FaultyEncapsulation {
        FaultyEncapsulation {
            inner,
            plan,
            calls: AtomicUsize::new(0),
        }
    }

    /// Wraps `inner` and returns the wrapper ready for registration.
    pub fn wrap(inner: Arc<dyn Encapsulation>, plan: FaultPlan) -> Arc<FaultyEncapsulation> {
        Arc::new(FaultyEncapsulation::new(inner, plan))
    }

    /// Number of times the engine has invoked this encapsulation
    /// (including calls that failed, panicked, or slept).
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::SeqCst)
    }
}

impl std::fmt::Debug for FaultyEncapsulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyEncapsulation")
            .field("plan", &self.plan)
            .field("calls", &self.calls())
            .finish()
    }
}

impl Encapsulation for FaultyEncapsulation {
    fn run(
        &self,
        schema: &TaskSchema,
        invocation: &Invocation,
    ) -> Result<Vec<ToolOutput>, ExecError> {
        let call = self.calls.fetch_add(1, Ordering::SeqCst) as u32;
        let tool = schema.entity(invocation.tool_entity).name().to_owned();
        match &self.plan {
            FaultPlan::FailTimes(n) if call < *n => Err(ExecError::ToolFailed {
                tool,
                message: format!("injected fault, call {} of {n} doomed", call + 1),
            }),
            FaultPlan::FailTimes(_) => self.inner.run(schema, invocation),
            FaultPlan::AlwaysPanic => panic!("injected panic in `{tool}`"),
            FaultPlan::SleepFor(duration) => {
                std::thread::sleep(*duration);
                self.inner.run(schema, invocation)
            }
            FaultPlan::SleepTimes { times, duration } => {
                if call < *times {
                    std::thread::sleep(*duration);
                }
                self.inner.run(schema, invocation)
            }
            FaultPlan::CorruptOutputs => {
                let mut outputs = self.inner.run(schema, invocation)?;
                outputs.pop();
                Ok(outputs)
            }
        }
    }

    fn multi_instance_mode(&self) -> MultiInstanceMode {
        self.inner.multi_instance_mode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_schema::SchemaBuilder;

    struct Echo;
    impl Encapsulation for Echo {
        fn run(
            &self,
            _schema: &TaskSchema,
            invocation: &Invocation,
        ) -> Result<Vec<ToolOutput>, ExecError> {
            Ok(invocation
                .outputs
                .iter()
                .map(|&e| ToolOutput::new(e, b"ok".to_vec()))
                .collect())
        }
    }

    fn fixture() -> (TaskSchema, Invocation) {
        let mut b = SchemaBuilder::new();
        let sim = b.tool("Simulator");
        let perf = b.data("Performance");
        let schema = b.build().expect("valid");
        let invocation = Invocation {
            tool_entity: sim,
            tool_data: None,
            inputs: vec![],
            outputs: vec![perf],
        };
        (schema, invocation)
    }

    #[test]
    fn fail_times_then_succeed() {
        let (schema, invocation) = fixture();
        let faulty = FaultyEncapsulation::new(Arc::new(Echo), FaultPlan::FailTimes(2));
        assert!(faulty.run(&schema, &invocation).is_err());
        assert!(faulty.run(&schema, &invocation).is_err());
        let out = faulty.run(&schema, &invocation).expect("third succeeds");
        assert_eq!(out.len(), 1);
        assert_eq!(faulty.calls(), 3);
    }

    #[test]
    fn corrupt_outputs_drops_one() {
        let (schema, invocation) = fixture();
        let faulty = FaultyEncapsulation::new(Arc::new(Echo), FaultPlan::CorruptOutputs);
        let out = faulty.run(&schema, &invocation).expect("delegates");
        assert!(out.is_empty(), "one expected output was dropped");
    }

    #[test]
    fn sleep_times_recovers() {
        let (schema, invocation) = fixture();
        let faulty = FaultyEncapsulation::new(
            Arc::new(Echo),
            FaultPlan::SleepTimes {
                times: 1,
                duration: Duration::from_millis(20),
            },
        );
        let start = std::time::Instant::now();
        faulty.run(&schema, &invocation).expect("slow but ok");
        assert!(start.elapsed() >= Duration::from_millis(20));
        let start = std::time::Instant::now();
        faulty.run(&schema, &invocation).expect("prompt");
        assert!(start.elapsed() < Duration::from_millis(20));
    }

    #[test]
    fn mode_is_delegated() {
        let faulty = FaultyEncapsulation::new(Arc::new(Echo), FaultPlan::FailTimes(0));
        assert_eq!(
            faulty.multi_instance_mode(),
            MultiInstanceMode::RunPerInstance
        );
    }
}
