//! Bridges the executor to the content-addressed result cache.
//!
//! The cache key is a canonical content hash over everything the tool
//! run can observe: the tool's entity *name* (names are stable across
//! schema revisions and sessions; numeric ids are not), its instance
//! payload, the declared-dependency fingerprint of every output (the
//! same under-key machinery HL0504 audits — if the schema's declared
//! dependencies change, the key changes), and every input's entity
//! name and payload bytes. Two invocations with the same key are
//! byte-for-byte the same work, no matter which session, workspace,
//! or machine prepared them.

use hercules_cache::{CacheEntry, CacheKey, CachedOutput, KeyBuilder};
use hercules_schema::TaskSchema;

use crate::encapsulation::{Invocation, ToolOutput};
use hercules_schema::EntityTypeId;

/// Domain tag of the key derivation. Bumping the version invalidates
/// every cached result at once — the escape hatch for semantic changes
/// to the executor or the entry format.
const KEY_DOMAIN: &str = "hercules.exec.v1";

/// Derives the content key of one prepared invocation.
pub fn invocation_key(schema: &TaskSchema, invocation: &Invocation) -> CacheKey {
    let mut b = KeyBuilder::new(KEY_DOMAIN);
    b.field_str("tool", schema.entity(invocation.tool_entity).name());
    match &invocation.tool_data {
        Some(data) => b.field("tool_data", data),
        // A missing tool payload is distinct from an empty one.
        None => b.field_u64("tool_data_absent", 1),
    }
    b.field_u64("outputs", invocation.outputs.len() as u64);
    for &out in &invocation.outputs {
        b.field_str("output", schema.entity(out).name());
        // The declared-dependency fingerprint: what the schema says
        // this product may depend on (functional arc first, then data
        // arcs, declaration order).
        for dep in schema.deps_of(out) {
            b.field_str("declared_dep", schema.entity(dep.source()).name());
        }
    }
    b.field_u64("inputs", invocation.inputs.len() as u64);
    for input in &invocation.inputs {
        b.field_str("input", schema.entity(input.entity).name());
        b.field_u64("instances", input.instances.len() as u64);
        for payload in &input.instances {
            b.field("payload", payload);
        }
    }
    b.finish()
}

/// Packages a successful run's outputs as a cache entry. Entity ids
/// are translated to names so the entry stays meaningful to any
/// session speaking the same schema.
pub fn entry_from_outputs(
    key: CacheKey,
    schema: &TaskSchema,
    invocation: &Invocation,
    outputs: &[ToolOutput],
    created_ms: u64,
) -> CacheEntry {
    CacheEntry {
        key,
        tool: schema.entity(invocation.tool_entity).name().to_owned(),
        created_ms,
        outputs: outputs
            .iter()
            .map(|o| CachedOutput {
                entity: schema.entity(o.entity).name().to_owned(),
                name: o.name.clone(),
                data: o.data.clone(),
            })
            .collect(),
    }
}

/// Reconstitutes tool outputs from a cache entry, re-validating the
/// entry against the consuming subtask: the output count must match
/// and every entity name must resolve to a subtype of the expected
/// product. Any mismatch (renamed entity, reshaped schema) degrades to
/// a miss — the cache never forces a stale shape onto a run.
pub fn outputs_from_entry(
    schema: &TaskSchema,
    entry: &CacheEntry,
    expected: &[EntityTypeId],
) -> Option<Vec<ToolOutput>> {
    if entry.outputs.len() != expected.len() {
        return None;
    }
    entry
        .outputs
        .iter()
        .zip(expected)
        .map(|(out, &want)| {
            let entity = schema.entity_id(&out.entity)?;
            schema.is_subtype_of(entity, want).then(|| ToolOutput {
                entity,
                data: out.data.clone(),
                name: out.name.clone(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encapsulation::ToolInput;
    use hercules_schema::fixtures;

    fn invocation(schema: &TaskSchema, payload: &[u8]) -> Invocation {
        let layout = schema.entity_id("Layout").expect("entity");
        let extractor = schema.entity_id("Extractor").expect("entity");
        let extracted = schema.entity_id("ExtractedNetlist").expect("entity");
        Invocation {
            tool_entity: extractor,
            tool_data: Some(b"extract --fast".to_vec()),
            inputs: vec![ToolInput {
                entity: layout,
                instances: vec![payload.to_vec()],
            }],
            outputs: vec![extracted],
        }
    }

    #[test]
    fn key_is_stable_and_input_sensitive() {
        let schema = fixtures::fig1();
        let a = invocation_key(&schema, &invocation(&schema, b"design-a"));
        let again = invocation_key(&schema, &invocation(&schema, b"design-a"));
        let other = invocation_key(&schema, &invocation(&schema, b"design-b"));
        assert_eq!(a, again, "same bytes, same key");
        assert_ne!(a, other, "different input payload, different key");
    }

    #[test]
    fn key_distinguishes_tool_data_absent_from_empty() {
        let schema = fixtures::fig1();
        let mut absent = invocation(&schema, b"d");
        absent.tool_data = None;
        let mut empty = invocation(&schema, b"d");
        empty.tool_data = Some(Vec::new());
        assert_ne!(
            invocation_key(&schema, &absent),
            invocation_key(&schema, &empty)
        );
    }

    #[test]
    fn entry_round_trips_through_names() {
        let schema = fixtures::fig1();
        let inv = invocation(&schema, b"d");
        let extracted = schema.entity_id("ExtractedNetlist").expect("entity");
        let produced = vec![ToolOutput {
            entity: extracted,
            data: b"netlist-bytes".to_vec(),
            name: "fast".into(),
        }];
        let key = invocation_key(&schema, &inv);
        let entry = entry_from_outputs(key, &schema, &inv, &produced, 42);
        assert_eq!(entry.tool, "Extractor");
        let back = outputs_from_entry(&schema, &entry, &[extracted]).expect("resolves");
        assert_eq!(back, produced);
        // The cached entity satisfies its abstract supertype too.
        let netlist = schema.entity_id("Netlist").expect("entity");
        assert!(outputs_from_entry(&schema, &entry, &[netlist]).is_some());
        // A reshaped expectation degrades to a miss.
        let layout = schema.entity_id("Layout").expect("entity");
        assert!(outputs_from_entry(&schema, &entry, &[layout]).is_none());
        assert!(outputs_from_entry(&schema, &entry, &[extracted, layout]).is_none());
    }
}
