//! A deterministic toy tool set over the Fig. 1 schema.
//!
//! Every toy tool emits a readable trace of its invocation —
//! `Tool(input, input, …)` — so tests can assert the exact tool/data
//! composition a flow performed without a real EDA substrate. The
//! `hercules` crate registers the real simulated tools; this module
//! exists for unit tests, baselines and micro-benchmarks of the engine
//! itself.

use std::sync::Arc;
use std::time::Duration;

use hercules_history::{HistoryDb, InstanceId, Metadata};
use hercules_schema::{EntityKind, TaskSchema};

use crate::encapsulation::{
    Encapsulation, EncapsulationRegistry, Invocation, MultiInstanceMode, ToolOutput,
};
use crate::error::ExecError;

/// A tool that renders its invocation as text, optionally sleeping to
/// simulate compute (for parallel-speedup experiments).
#[derive(Debug, Clone)]
pub struct TextTool {
    /// Delivery mode for multi-instance selections.
    pub mode: MultiInstanceMode,
    /// Artificial compute time per invocation.
    pub work: Duration,
}

impl Default for TextTool {
    fn default() -> TextTool {
        TextTool {
            mode: MultiInstanceMode::RunPerInstance,
            work: Duration::ZERO,
        }
    }
}

impl Encapsulation for TextTool {
    fn run(
        &self,
        schema: &TaskSchema,
        invocation: &Invocation,
    ) -> Result<Vec<ToolOutput>, ExecError> {
        // A tool instance whose data reads `cost:<µs>` overrides the
        // shared `work` duration — bench fixtures use this to give one
        // task a different weight than the rest (straggler workloads).
        let cost = invocation
            .tool_data
            .as_deref()
            .and_then(|data| std::str::from_utf8(data).ok())
            .and_then(|text| text.strip_prefix("cost:"))
            .and_then(|us| us.trim().parse::<u64>().ok())
            .map(Duration::from_micros);
        let work = cost.unwrap_or(self.work);
        if !work.is_zero() {
            std::thread::sleep(work);
        }
        let tool_name = match &invocation.tool_data {
            Some(data) if !data.is_empty() && cost.is_none() => {
                String::from_utf8_lossy(data).into_owned()
            }
            _ => schema.entity(invocation.tool_entity).name().to_owned(),
        };
        let mut args = Vec::new();
        for input in &invocation.inputs {
            for inst in &input.instances {
                args.push(String::from_utf8_lossy(inst).into_owned());
            }
        }
        let call = format!("{tool_name}({})", args.join(", "));
        Ok(invocation
            .outputs
            .iter()
            .map(|&e| {
                let text = if invocation.outputs.len() == 1 {
                    call.clone()
                } else {
                    format!("{call}.{}", schema.entity(e).name())
                };
                ToolOutput::new(e, text.into_bytes())
            })
            .collect())
    }

    fn multi_instance_mode(&self) -> MultiInstanceMode {
        self.mode
    }
}

/// A tool that always fails, for error-path tests.
#[derive(Debug, Clone, Default)]
pub struct FailingTool;

impl Encapsulation for FailingTool {
    fn run(
        &self,
        schema: &TaskSchema,
        invocation: &Invocation,
    ) -> Result<Vec<ToolOutput>, ExecError> {
        Err(ExecError::ToolFailed {
            tool: schema.entity(invocation.tool_entity).name().to_owned(),
            message: "synthetic failure".into(),
        })
    }
}

/// Registers a [`TextTool`] for every tool entity *and* every composite
/// entity of the schema — one shared encapsulation, as §3.3 suggests.
pub fn text_registry(schema: &TaskSchema) -> EncapsulationRegistry {
    text_registry_with(schema, TextTool::default())
}

/// As [`text_registry`], with an explicit tool configuration (e.g. a
/// sleep duration for parallel experiments).
pub fn text_registry_with(schema: &TaskSchema, tool: TextTool) -> EncapsulationRegistry {
    let shared: Arc<dyn Encapsulation> = Arc::new(tool);
    let mut reg = EncapsulationRegistry::new();
    for id in schema.entity_ids() {
        if schema.entity(id).kind() == EntityKind::Tool || schema.is_composite(id) {
            reg.register(id, shared.clone());
        }
    }
    reg
}

/// Records one primary instance for every primary entity of the schema
/// (tools, libraries, stimuli…), with the entity name as payload.
/// Returns the recorded ids in entity order.
pub fn seed_primaries(db: &mut HistoryDb, user: &str) -> Vec<InstanceId> {
    let schema = db.schema().clone();
    let mut out = Vec::new();
    for id in schema.entity_ids() {
        if schema.is_primary(id) {
            let name = schema.entity(id).name().to_owned();
            let inst = db
                .record_primary(id, Metadata::by(user).named(&name), name.as_bytes())
                .expect("primary entity records");
            out.push(inst);
        }
    }
    out
}

/// Seeds the database with one instance of *every* bindable entity:
/// primaries as primary instances, constructible entities as derived
/// instances (tool recorded first, in topological order). Abstract
/// entities get no direct instance but are reachable through their
/// subtypes. Returns the ids in recording order.
pub fn seed_everything(db: &mut HistoryDb, user: &str) -> Vec<InstanceId> {
    use hercules_history::Derivation;
    let schema = db.schema().clone();
    let mut out = Vec::new();
    let mut instance_of: std::collections::HashMap<_, InstanceId> =
        std::collections::HashMap::new();
    for id in schema.topo_order() {
        if schema.is_abstract(id) {
            continue;
        }
        let name = schema.entity(id).name().to_owned();
        let meta = Metadata::by(user).named(&name);
        let inst = if let Some(tool_entity) = schema.constructing_tool(id) {
            let tool = instance_of
                .get(&tool_entity)
                .copied()
                .expect("topological order records tools first");
            db.record_derived(id, meta, name.as_bytes(), Derivation::by_tool(tool, []))
                .expect("derived seed records")
        } else if schema.is_composite(id) {
            let components: Vec<InstanceId> = schema
                .components_of(id)
                .into_iter()
                .filter_map(|c| {
                    instance_of.get(&c).copied().or_else(|| {
                        // Abstract component: use any subtype instance.
                        schema
                            .all_subtypes(c)
                            .into_iter()
                            .find_map(|s| instance_of.get(&s).copied())
                    })
                })
                .collect();
            db.record_derived(
                id,
                meta,
                name.as_bytes(),
                Derivation::by_composition(components),
            )
            .expect("composite seed records")
        } else {
            db.record_primary(id, meta, name.as_bytes())
                .expect("primary seed records")
        };
        instance_of.insert(id, inst);
        out.push(inst);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_schema::fixtures;
    use std::sync::Arc as StdArc;

    #[test]
    fn registry_covers_all_tools_and_composites() {
        let schema = fixtures::fig1();
        let reg = text_registry(&schema);
        assert_eq!(reg.len(), schema.tools().len() + 1 /* Circuit */);
    }

    #[test]
    fn seed_primaries_records_tools_and_data() {
        let schema = StdArc::new(fixtures::fig1());
        let mut db = HistoryDb::new(schema.clone());
        let ids = seed_primaries(&mut db, "setup");
        assert!(!ids.is_empty());
        // All seven tools plus primary data entities.
        assert!(db.len() >= schema.tools().len());
    }

    #[test]
    fn failing_tool_reports_failure() {
        let schema = fixtures::fig1();
        let sim = schema.require("Simulator").expect("known");
        let perf = schema.require("Performance").expect("known");
        let inv = Invocation {
            tool_entity: sim,
            tool_data: None,
            inputs: vec![],
            outputs: vec![perf],
        };
        assert!(matches!(
            FailingTool.run(&schema, &inv).unwrap_err(),
            ExecError::ToolFailed { .. }
        ));
    }
}
