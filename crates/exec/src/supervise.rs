//! Supervised tool invocation: panics and hangs become structured
//! errors.
//!
//! Encapsulations wrap arbitrary tool code, and §3.3's framework
//! promise — "the framework keeps running whatever the tools do" — only
//! holds if a panicking or wedged tool cannot take the engine with it.
//! [`run_supervised`] gives every invocation two layers of protection:
//!
//! * the call runs under `catch_unwind`, so a panic surfaces as
//!   [`ExecError::ToolPanicked`] instead of unwinding through the
//!   scheduler;
//! * with a deadline set, the call runs on a detached watchdog thread
//!   and the supervisor waits at most that long, reporting
//!   [`ExecError::ToolTimedOut`] when the tool overstays.
//!
//! A timed-out tool's thread is *abandoned*, not killed — Rust offers
//! no safe thread cancellation — so a truly wedged tool leaks one
//! thread. The abandoned thread's eventual result is discarded; nothing
//! it produces is recorded.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use hercules_schema::TaskSchema;

use crate::encapsulation::{Encapsulation, Invocation, ToolOutput};
use crate::error::ExecError;

/// Renders a panic payload as a human-readable message.
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn tool_name(schema: &TaskSchema, invocation: &Invocation) -> String {
    schema.entity(invocation.tool_entity).name().to_owned()
}

/// Runs `enc` once under `catch_unwind` on the current thread.
fn run_caught(
    enc: &dyn Encapsulation,
    schema: &TaskSchema,
    invocation: &Invocation,
) -> Result<Vec<ToolOutput>, ExecError> {
    catch_unwind(AssertUnwindSafe(|| enc.run(schema, invocation))).unwrap_or_else(|payload| {
        Err(ExecError::ToolPanicked {
            tool: tool_name(schema, invocation),
            message: panic_message(payload.as_ref()),
        })
    })
}

/// Runs one tool invocation under supervision.
///
/// Panics inside the encapsulation become
/// [`ExecError::ToolPanicked`]. When `deadline` is set, the invocation
/// runs on a watchdog thread and [`ExecError::ToolTimedOut`] is
/// returned if no result arrives in time.
///
/// # Errors
///
/// Whatever the encapsulation returns, plus the two supervision errors
/// above.
pub fn run_supervised(
    enc: &Arc<dyn Encapsulation>,
    schema: &Arc<TaskSchema>,
    invocation: &Invocation,
    deadline: Option<Duration>,
) -> Result<Vec<ToolOutput>, ExecError> {
    let Some(deadline) = deadline else {
        return run_caught(enc.as_ref(), schema, invocation);
    };

    let (tx, rx) = mpsc::channel();
    let worker_enc = Arc::clone(enc);
    let worker_schema = Arc::clone(schema);
    let worker_invocation = invocation.clone();
    // Detached on purpose: joining would wait out the hang we are
    // guarding against. The send fails harmlessly once the supervisor
    // has given up and dropped the receiver.
    std::thread::spawn(move || {
        let result = run_caught(worker_enc.as_ref(), &worker_schema, &worker_invocation);
        let _ = tx.send(result);
    });

    match rx.recv_timeout(deadline) {
        Ok(result) => result,
        Err(mpsc::RecvTimeoutError::Timeout) => Err(ExecError::ToolTimedOut {
            tool: tool_name(schema, invocation),
            deadline_ms: deadline.as_millis() as u64,
        }),
        // The worker always sends (panics are caught), so a hangup
        // means the channel died abnormally; report it as a panic.
        Err(mpsc::RecvTimeoutError::Disconnected) => Err(ExecError::ToolPanicked {
            tool: tool_name(schema, invocation),
            message: "worker thread vanished without reporting".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_schema::SchemaBuilder;

    struct Panicker;
    impl Encapsulation for Panicker {
        fn run(
            &self,
            _schema: &TaskSchema,
            _invocation: &Invocation,
        ) -> Result<Vec<ToolOutput>, ExecError> {
            panic!("injected panic");
        }
    }

    struct Sleeper(Duration);
    impl Encapsulation for Sleeper {
        fn run(
            &self,
            _schema: &TaskSchema,
            invocation: &Invocation,
        ) -> Result<Vec<ToolOutput>, ExecError> {
            std::thread::sleep(self.0);
            Ok(invocation
                .outputs
                .iter()
                .map(|&e| ToolOutput::new(e, b"done".to_vec()))
                .collect())
        }
    }

    fn fixture() -> (Arc<TaskSchema>, Invocation) {
        let mut b = SchemaBuilder::new();
        let sim = b.tool("Simulator");
        let schema = Arc::new(b.build().expect("valid"));
        let invocation = Invocation {
            tool_entity: sim,
            tool_data: None,
            inputs: vec![],
            outputs: vec![],
        };
        (schema, invocation)
    }

    #[test]
    fn panics_become_errors_without_deadline() {
        let (schema, invocation) = fixture();
        let enc: Arc<dyn Encapsulation> = Arc::new(Panicker);
        let err = run_supervised(&enc, &schema, &invocation, None).unwrap_err();
        assert!(
            matches!(err, ExecError::ToolPanicked { ref message, .. } if message == "injected panic"),
            "got {err}"
        );
    }

    #[test]
    fn panics_become_errors_with_deadline() {
        let (schema, invocation) = fixture();
        let enc: Arc<dyn Encapsulation> = Arc::new(Panicker);
        let err =
            run_supervised(&enc, &schema, &invocation, Some(Duration::from_secs(5))).unwrap_err();
        assert!(matches!(err, ExecError::ToolPanicked { .. }), "got {err}");
    }

    #[test]
    fn slow_tools_trip_the_deadline() {
        let (schema, invocation) = fixture();
        let enc: Arc<dyn Encapsulation> = Arc::new(Sleeper(Duration::from_secs(10)));
        let err = run_supervised(&enc, &schema, &invocation, Some(Duration::from_millis(30)))
            .unwrap_err();
        assert!(
            matches!(
                err,
                ExecError::ToolTimedOut {
                    deadline_ms: 30,
                    ..
                }
            ),
            "got {err}"
        );
    }

    #[test]
    fn fast_tools_pass_under_a_deadline() {
        let (schema, invocation) = fixture();
        let enc: Arc<dyn Encapsulation> = Arc::new(Sleeper(Duration::ZERO));
        let out = run_supervised(&enc, &schema, &invocation, Some(Duration::from_secs(5)))
            .expect("completes");
        assert!(out.is_empty());
    }

    #[test]
    fn panic_messages_render() {
        let payload: Box<dyn Any + Send> = Box::new("boom");
        assert_eq!(panic_message(payload.as_ref()), "boom");
        let payload: Box<dyn Any + Send> = Box::new(String::from("heap boom"));
        assert_eq!(panic_message(payload.as_ref()), "heap boom");
        let payload: Box<dyn Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(payload.as_ref()), "non-string panic payload");
    }
}
