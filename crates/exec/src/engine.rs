//! The execution engine: automatic task sequencing, multi-output
//! subtasks, multi-instance fan-out, caching, parallel disjoint
//! branches, and fault-tolerant supervision of every tool run.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::Duration;

use hercules_flow::{NodeId, TaskGraph};
use hercules_history::{Derivation, HistoryDb, InstanceId, Metadata};
use hercules_obs::profile::{downstream_critical, TaskProfile};
use hercules_obs::{Metrics, SpanId, Tracer};
use hercules_schema::{EntityTypeId, TaskSchema};
use hercules_sim::{Clock, Interleaver, SimInstant};

use crate::binding::Binding;
use crate::content_cache;
use crate::encapsulation::{
    Encapsulation, EncapsulationRegistry, Invocation, MultiInstanceMode, ToolInput, ToolOutput,
};
use crate::error::ExecError;
use crate::policy::{FailurePolicy, RetryPolicy};
use crate::supervise;

/// How ready subtasks are sequenced onto workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Event-driven dataflow scheduling: per-task dependency counters,
    /// a priority ready queue ordered by downstream critical-path
    /// length, and a persistent worker pool. Completion of a task
    /// enqueues its newly-ready successors immediately, so disjoint
    /// sub-flows proceed independently with no barriers.
    #[default]
    Dataflow,
    /// Legacy level-synchronized scheduling: ready subtasks run as one
    /// wave and every worker idles at the barrier until the slowest
    /// member finishes. Kept for A/B comparison and equivalence tests.
    Wave,
}

/// Options controlling one execution.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// User recorded on produced instances.
    pub user: String,
    /// Execute independent ready subtasks on separate threads (Fig. 6:
    /// "disjoint branches in the flow can be executed in parallel").
    pub parallel: bool,
    /// Scheduling strategy; see [`SchedulerKind`].
    pub scheduler: SchedulerKind,
    /// Worker threads for the parallel dataflow scheduler. `0` sizes
    /// the pool automatically (one per available core, at least 2),
    /// and the pool never exceeds the subtask count. Ignored when
    /// `parallel` is false or under [`SchedulerKind::Wave`].
    pub workers: usize,
    /// Reuse current cached results instead of re-running tools
    /// (§3.3's "has this extraction already been performed?").
    pub reuse_cached: bool,
    /// Upper bound on multi-instance fan-out per subtask.
    pub fanout_limit: usize,
    /// Per-invocation watchdog deadline. `None` waits indefinitely;
    /// with a deadline set, an overrunning tool is abandoned and
    /// reported as [`ExecError::ToolTimedOut`].
    pub deadline: Option<Duration>,
    /// Retry schedule for failed invocations.
    pub retry: RetryPolicy,
    /// What one subtask's permanent failure means for the rest of the
    /// flow.
    pub failure: FailurePolicy,
    /// Tracing handle. The default ([`Tracer::disabled`]) makes every
    /// instrumentation point a branch, so execution pays nothing when
    /// no one is watching.
    pub tracer: Tracer,
    /// Metrics registry (disabled by default, like `tracer`).
    pub metrics: Metrics,
    /// Where the engine reads time: epochs, attempt durations, queue
    /// waits, and retry backoff all go through this handle. The
    /// default is the machine clock; a simulation substitutes a
    /// virtual one so backoff sleeps advance simulated time instantly.
    pub clock: Clock,
    /// Consulted by the serial dataflow pump whenever more than one
    /// subtask is ready. The default preserves the engine's own
    /// priority order; a simulation randomizes (and logs) the pick to
    /// explore alternative schedules from a seed.
    pub interleave: Interleaver,
    /// Extra salt folded into every retry-jitter hash, so a simulated
    /// run's whole backoff schedule is a function of its seed. Zero
    /// (the default) reproduces the historical schedule.
    pub jitter_seed: u64,
    /// Content-addressed result cache, consulted ahead of every tool
    /// dispatch (`None`, the default, disables it). A hit replays the
    /// cached outputs into the history — byte-identical to running the
    /// tool — and a produced result is written back for future
    /// sessions. Unlike `reuse_cached` (same workspace, current
    /// instances) this matches on content, so it hits across sessions,
    /// workspaces, and machines that share a tier.
    pub cache: Option<hercules_cache::ContentCache>,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            user: "hercules".into(),
            parallel: false,
            scheduler: SchedulerKind::default(),
            workers: 0,
            reuse_cached: false,
            fanout_limit: 1024,
            deadline: None,
            retry: RetryPolicy::default(),
            failure: FailurePolicy::default(),
            tracer: Tracer::disabled(),
            metrics: Metrics::disabled(),
            clock: Clock::real(),
            interleave: Interleaver::fifo(),
            jitter_seed: 0,
            cache: None,
        }
    }
}

/// What happened to one subtask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskAction {
    /// The tool ran this many times (fan-out counts as several runs).
    Ran {
        /// Number of tool invocations.
        runs: usize,
    },
    /// Every output was served from a current cached instance.
    Cached,
    /// The subtask failed permanently (after exhausting retries) and
    /// execution continued under
    /// [`FailurePolicy::ContinueDisjoint`].
    Failed {
        /// The final error of the last attempt.
        error: ExecError,
    },
    /// The subtask never ran: something upstream of it failed.
    Skipped,
}

/// Per-subtask record of one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskRecord {
    /// Output nodes of the subtask.
    pub outputs: Vec<NodeId>,
    /// What happened.
    pub action: TaskAction,
    /// Largest number of attempts any single invocation of this
    /// subtask needed (0 when nothing was invoked).
    pub attempts: u32,
    /// Wall-clock time spent running (and retrying) the subtask's
    /// invocations.
    pub duration: Duration,
    /// Offset of the subtask's start from the start of the execution —
    /// with `duration`, enough to reconstruct a Gantt/trace view of a
    /// finished run (see [`crate::trace::report_to_trace`]).
    pub started: Duration,
}

/// The result of executing a flow.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    produced: HashMap<NodeId, Vec<InstanceId>>,
    /// Subtask records in execution order.
    pub tasks: Vec<TaskRecord>,
}

impl ExecReport {
    /// Reassembles a report from its parts — the inverse of
    /// [`ExecReport::produced`] plus `tasks`, used when restoring a
    /// persisted report from disk.
    pub fn from_parts(
        produced: HashMap<NodeId, Vec<InstanceId>>,
        tasks: Vec<TaskRecord>,
    ) -> ExecReport {
        ExecReport { produced, tasks }
    }

    /// Iterates over every node's produced (or bound) instances.
    pub fn produced(&self) -> impl Iterator<Item = (NodeId, &[InstanceId])> + '_ {
        self.produced.iter().map(|(&n, v)| (n, v.as_slice()))
    }

    /// Returns the instances produced for (or bound to) a node.
    pub fn instances_of(&self, node: NodeId) -> &[InstanceId] {
        self.produced.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Returns the single instance of a node, or an error when the
    /// node has zero or several — the non-panicking companion of
    /// [`ExecReport::single`].
    ///
    /// # Errors
    ///
    /// [`ExecError::NotSingleInstance`] with the offending count.
    pub fn try_single(&self, node: NodeId) -> Result<InstanceId, ExecError> {
        let all = self.instances_of(node);
        if all.len() == 1 {
            Ok(all[0])
        } else {
            Err(ExecError::NotSingleInstance {
                node,
                count: all.len(),
            })
        }
    }

    /// Returns the single instance of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node has zero or several instances; use
    /// [`ExecReport::try_single`] to handle that case, or
    /// [`ExecReport::instances_of`] for fanned-out nodes.
    pub fn single(&self, node: NodeId) -> InstanceId {
        match self.try_single(node) {
            Ok(inst) => inst,
            Err(e) => panic!("{e}"),
        }
    }

    /// Total tool invocations across all subtasks.
    pub fn runs(&self) -> usize {
        self.tasks
            .iter()
            .map(|t| match t.action {
                TaskAction::Ran { runs } => runs,
                TaskAction::Cached | TaskAction::Failed { .. } | TaskAction::Skipped => 0,
            })
            .sum()
    }

    /// Number of subtasks fully served from cache.
    pub fn cache_hits(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| t.action == TaskAction::Cached)
            .count()
    }

    /// Number of subtasks that failed permanently.
    pub fn failed(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| matches!(t.action, TaskAction::Failed { .. }))
            .count()
    }

    /// Number of subtasks skipped because something upstream failed.
    pub fn skipped(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| t.action == TaskAction::Skipped)
            .count()
    }

    /// The first failure in execution order, if any subtask failed.
    pub fn first_error(&self) -> Option<&ExecError> {
        self.tasks.iter().find_map(|t| match &t.action {
            TaskAction::Failed { error } => Some(error),
            _ => None,
        })
    }

    /// Returns `true` when every subtask ran or was served from cache.
    pub fn is_complete(&self) -> bool {
        self.failed() == 0 && self.skipped() == 0
    }
}

/// One grouped subtask: output nodes sharing a tool application.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Subtask {
    outputs: Vec<NodeId>,
    tool: Option<NodeId>,
    inputs: Vec<NodeId>,
}

/// Identical invocations within one execution record one shared
/// product: "each design object may be uniquely identified according to
/// the sequence of tool/data transformations used in creating that
/// object" (section 1) — performing the same transformation twice
/// yields the same object, not a duplicate.
type InvocationCache =
    HashMap<(Option<InstanceId>, Vec<InstanceId>, Vec<EntityTypeId>), Vec<InstanceId>>;

/// The flow executor.
///
/// # Examples
///
/// See the crate-level documentation for an end-to-end run.
#[derive(Debug, Clone)]
pub struct Executor {
    registry: EncapsulationRegistry,
    options: ExecOptions,
}

impl Executor {
    /// Creates an executor over a registry with default options.
    pub fn new(registry: EncapsulationRegistry) -> Executor {
        Executor {
            registry,
            options: ExecOptions::default(),
        }
    }

    /// Creates an executor with explicit options.
    pub fn with_options(registry: EncapsulationRegistry, options: ExecOptions) -> Executor {
        Executor { registry, options }
    }

    /// Returns the options.
    pub fn options(&self) -> &ExecOptions {
        &self.options
    }

    /// Returns mutable options.
    pub fn options_mut(&mut self) -> &mut ExecOptions {
        &mut self.options
    }

    /// Returns the registry.
    pub fn registry(&self) -> &EncapsulationRegistry {
        &self.registry
    }

    /// Returns mutable access to the registry — e.g. to wrap a tool in
    /// a [`crate::FaultyEncapsulation`] for chaos testing.
    pub fn registry_mut(&mut self) -> &mut EncapsulationRegistry {
        &mut self.registry
    }

    /// Executes a flow: binds leaves, sequences subtasks automatically
    /// from the dependencies (flow automation, §3.3), runs tools through
    /// their encapsulations and records every product in the design
    /// history.
    ///
    /// # Errors
    ///
    /// Structural errors ([`ExecError::Flow`]), binding errors, missing
    /// encapsulations, tool failures, and fan-out overflows.
    pub fn execute(
        &self,
        flow: &TaskGraph,
        binding: &Binding,
        db: &mut HistoryDb,
    ) -> Result<ExecReport, ExecError> {
        let tracer = &self.options.tracer;
        let epoch = self.options.clock.now();
        let exec_span = tracer.begin_with("execute", SpanId::NONE, |a| {
            a.bool("parallel", self.options.parallel);
            a.uint("nodes", flow.len() as u64);
        });
        let result = self.execute_inner(flow, binding, db, epoch, exec_span);
        match &result {
            Ok(report) => {
                let metrics = &self.options.metrics;
                metrics.incr("exec.executions", 1);
                metrics.incr("exec.runs", report.runs() as u64);
                metrics.incr("exec.cache_hits", report.cache_hits() as u64);
                metrics.incr("exec.failed_subtasks", report.failed() as u64);
                metrics.incr("exec.skipped_subtasks", report.skipped() as u64);
                tracer.end_with(exec_span, |a| {
                    a.bool("ok", true);
                    a.uint("tasks", report.tasks.len() as u64);
                    a.uint("runs", report.runs() as u64);
                    a.uint("cache_hits", report.cache_hits() as u64);
                });
            }
            Err(error) => {
                self.options.metrics.incr("exec.aborted_executions", 1);
                let msg = error.to_string();
                tracer.end_with(exec_span, |a| {
                    a.bool("ok", false);
                    a.str("error", msg.as_str());
                });
            }
        }
        result
    }

    fn execute_inner(
        &self,
        flow: &TaskGraph,
        binding: &Binding,
        db: &mut HistoryDb,
        epoch: SimInstant,
        exec_span: SpanId,
    ) -> Result<ExecReport, ExecError> {
        match self.options.scheduler {
            SchedulerKind::Dataflow => self.execute_dataflow(flow, binding, db, epoch, exec_span),
            SchedulerKind::Wave => self.execute_wave(flow, binding, db, epoch, exec_span),
        }
    }

    /// The legacy level-synchronized executor: each iteration runs every
    /// currently-ready subtask as one wave and waits at the barrier.
    fn execute_wave(
        &self,
        flow: &TaskGraph,
        binding: &Binding,
        db: &mut HistoryDb,
        epoch: SimInstant,
        exec_span: SpanId,
    ) -> Result<ExecReport, ExecError> {
        flow.validate_for_execution()?;
        binding.validate(flow, db)?;

        let tracer = &self.options.tracer;
        let metrics = &self.options.metrics;

        let mut report = ExecReport::default();
        // Available instances per node: bindings seed the leaves.
        let mut available: HashMap<NodeId, Vec<InstanceId>> = HashMap::new();
        for (node, instances) in binding.iter() {
            available.insert(node, instances.to_vec());
            report.produced.insert(node, instances.to_vec());
        }

        let mut invocation_cache = InvocationCache::new();

        // Nodes downstream of a permanent failure: their subtasks are
        // reported as skipped instead of executed.
        let mut dead: HashSet<NodeId> = HashSet::new();

        let mut pending = group_subtasks(flow)?;
        let mut wave_index = 0u64;
        loop {
            // Skip the downstream cone of failed subtasks: a subtask
            // whose tool or any input is dead can never run, and its
            // outputs kill their dependents in turn.
            let mut culling = true;
            while culling {
                culling = false;
                let mut still_pending = Vec::with_capacity(pending.len());
                for s in pending {
                    let doomed = s.inputs.iter().any(|i| dead.contains(i))
                        || s.tool.is_some_and(|t| dead.contains(&t));
                    if doomed {
                        dead.extend(s.outputs.iter().copied());
                        tracer.instant("skip", exec_span, |a| {
                            a.str("outputs", node_list(&s.outputs));
                        });
                        report.tasks.push(TaskRecord {
                            outputs: s.outputs,
                            action: TaskAction::Skipped,
                            attempts: 0,
                            duration: Duration::ZERO,
                            started: self.options.clock.since(epoch),
                        });
                        culling = true;
                    } else {
                        still_pending.push(s);
                    }
                }
                pending = still_pending;
            }
            if pending.is_empty() {
                break;
            }

            // Ready: all inputs (and the tool) have instances.
            let ready: Vec<Subtask> = pending
                .iter()
                .filter(|s| {
                    s.inputs.iter().all(|i| available.contains_key(i))
                        && s.tool.is_none_or(|t| available.contains_key(&t))
                })
                .cloned()
                .collect();
            if ready.is_empty() {
                // validate_for_execution guarantees progress; this is a
                // defensive check against corrupt graphs.
                return Err(ExecError::Flow(hercules_flow::FlowError::Cycle));
            }
            pending.retain(|s| !ready.contains(s));

            let wave_span = tracer.begin_with("wave", exec_span, |a| {
                a.uint("wave", wave_index);
                a.uint("width", ready.len() as u64);
            });
            // Ends the wave span on every exit path, including error
            // returns out of prepare/commit.
            let _wave_guard = SpanGuard {
                tracer,
                id: wave_span,
            };
            wave_index += 1;
            metrics.incr("exec.waves", 1);
            metrics.observe("exec.wave_width", ready.len() as u64);

            let prepared: Vec<PreparedSubtask> = ready
                .iter()
                .map(|s| self.prepare(flow, s, &available, db))
                .collect::<Result<_, _>>()?;

            let wave = DispatchCtx {
                span: wave_span,
                epoch,
                dispatched: self.options.clock.now(),
            };
            let outcomes: Vec<SubtaskOutcome> = if self.options.parallel {
                run_parallel(&prepared, flow, &self.options, &wave)
            } else {
                prepared
                    .iter()
                    .map(|p| p.run_all(flow.schema(), &self.options, &wave))
                    .collect()
            };

            // Under Abort, a failure anywhere in the wave discards the
            // whole wave: nothing commits, the error propagates.
            if self.options.failure == FailurePolicy::Abort {
                for outcome in &outcomes {
                    if let Err(error) = &outcome.result {
                        return Err(error.clone());
                    }
                }
            }

            // Commit serially, in subtask order, for determinism.
            for (p, outcome) in prepared.iter().zip(outcomes) {
                match outcome.result {
                    Ok(runs) => {
                        self.commit_runs(
                            p,
                            runs,
                            outcome.attempts,
                            outcome.duration,
                            outcome.started,
                            db,
                            &mut invocation_cache,
                            &mut available,
                            &mut report,
                        )?;
                    }
                    Err(error) => {
                        // ContinueDisjoint: report the failure, kill
                        // the downstream cone, keep going.
                        dead.extend(p.subtask.outputs.iter().copied());
                        report.tasks.push(TaskRecord {
                            outputs: p.subtask.outputs.clone(),
                            action: TaskAction::Failed { error },
                            attempts: outcome.attempts,
                            duration: outcome.duration,
                            started: outcome.started,
                        });
                    }
                }
            }
        }
        Ok(report)
    }

    /// Commits one successful subtask outcome: records every produced
    /// instance in the history (deduplicating identical invocations
    /// through `invocation_cache`), publishes the instances to
    /// `available`, and appends the [`TaskRecord`]. Shared by the wave
    /// and dataflow schedulers — commits always happen serially on the
    /// scheduling thread, which is what keeps dedup and the history
    /// deterministic.
    #[allow(clippy::too_many_arguments)]
    fn commit_runs(
        &self,
        p: &PreparedSubtask,
        runs: Vec<RunResult>,
        attempts: u32,
        duration: Duration,
        started: Duration,
        db: &mut HistoryDb,
        invocation_cache: &mut InvocationCache,
        available: &mut HashMap<NodeId, Vec<InstanceId>>,
        report: &mut ExecReport,
    ) -> Result<(), ExecError> {
        let mut per_output: Vec<Vec<InstanceId>> = vec![Vec::new(); p.subtask.outputs.len()];
        let mut executed = 0usize;
        for run in runs {
            // A content-cache replay records the same history as a
            // fresh production; it just doesn't count as an execution.
            let (tool_instance, input_instances, outputs, ran) = match run {
                RunResult::Cached(instances) => {
                    for (slot, inst) in instances.into_iter().enumerate() {
                        per_output[slot].push(inst);
                    }
                    continue;
                }
                RunResult::Produced {
                    tool_instance,
                    input_instances,
                    outputs,
                } => (tool_instance, input_instances, outputs, true),
                RunResult::Replayed {
                    tool_instance,
                    input_instances,
                    outputs,
                } => (tool_instance, input_instances, outputs, false),
            };
            let key = (
                tool_instance,
                input_instances.clone(),
                outputs.iter().map(|o| o.entity).collect::<Vec<_>>(),
            );
            if let Some(shared) = invocation_cache.get(&key) {
                // An identical invocation already committed in this
                // execution: share its products instead of recording
                // twins.
                for (slot, &inst) in shared.iter().enumerate() {
                    per_output[slot].push(inst);
                }
                continue;
            }
            if ran {
                executed += 1;
            }
            let mut recorded = Vec::with_capacity(outputs.len());
            for (slot, out) in outputs.into_iter().enumerate() {
                let derivation = match tool_instance {
                    Some(t) => Derivation::by_tool(t, input_instances.iter().copied()),
                    None => Derivation::by_composition(input_instances.iter().copied()),
                };
                let mut meta = Metadata::by(&self.options.user);
                if !out.name.is_empty() {
                    meta = meta.named(&out.name);
                }
                let inst = db.record_derived(out.entity, meta, &out.data, derivation)?;
                per_output[slot].push(inst);
                recorded.push(inst);
            }
            invocation_cache.insert(key, recorded);
        }
        for (slot, &node) in p.subtask.outputs.iter().enumerate() {
            available.insert(node, per_output[slot].clone());
            report.produced.insert(node, per_output[slot].clone());
        }
        report.tasks.push(TaskRecord {
            outputs: p.subtask.outputs.clone(),
            action: if executed == 0 {
                TaskAction::Cached
            } else {
                TaskAction::Ran { runs: executed }
            },
            attempts,
            duration,
            started,
        });
        Ok(())
    }

    /// The event-driven dataflow executor: per-task dependency
    /// counters, a priority ready queue ordered by downstream
    /// critical-path length, and a persistent worker pool. A task's
    /// completion decrements its successors' counters and enqueues the
    /// newly-ready ones immediately — disjoint sub-flows proceed
    /// independently, with no wave barriers (§3.3, Fig. 6).
    fn execute_dataflow(
        &self,
        flow: &TaskGraph,
        binding: &Binding,
        db: &mut HistoryDb,
        epoch: SimInstant,
        exec_span: SpanId,
    ) -> Result<ExecReport, ExecError> {
        flow.validate_for_execution()?;
        binding.validate(flow, db)?;

        let tracer = &self.options.tracer;

        let mut report = ExecReport::default();
        let mut available: HashMap<NodeId, Vec<InstanceId>> = HashMap::new();
        for (node, instances) in binding.iter() {
            available.insert(node, instances.to_vec());
            report.produced.insert(node, instances.to_vec());
        }
        let mut invocation_cache = InvocationCache::new();

        let subtasks = group_subtasks(flow)?;
        let total = subtasks.len();
        let workers = self.effective_workers(total);

        // One scheduler epoch spans the whole execution — the parent of
        // every task span, where the wave executor opens one span per
        // barrier round.
        let epoch_span = tracer.begin_with("epoch", exec_span, |a| {
            a.uint("tasks", total as u64);
            a.uint("workers", workers as u64);
        });
        let _epoch_guard = SpanGuard {
            tracer,
            id: epoch_span,
        };

        let (dep_count, successors, producers_of) = dependency_edges(&subtasks, &available);
        let priority = subtask_priorities(&subtasks, &producers_of);
        let mut st = SchedState {
            subtasks,
            priority,
            dep_count,
            successors,
            task_state: vec![TaskState::Waiting; total],
            dead: HashSet::new(),
            seq: 0,
            in_flight: 0,
        };
        let env = SchedEnv {
            flow,
            epoch,
            epoch_span,
            exec_span,
        };
        let queue = ReadyQueue::default();

        // Seed the queue with every subtask whose dependencies are all
        // bound already.
        for i in 0..total {
            if st.dep_count[i] == 0 {
                self.dispatch_ready(&mut st, &env, i, &queue, &available, db)?;
            }
        }

        if self.options.parallel && workers > 1 {
            self.pump_parallel(
                &mut st,
                &env,
                &queue,
                workers,
                db,
                &mut invocation_cache,
                &mut available,
                &mut report,
            )?;
        } else {
            // Serial dataflow: same ready-queue ordering by default;
            // under simulation the interleaver picks among every ready
            // candidate, so each dispatch is an explicit simulator
            // event and one seed induces one schedule.
            let schema = flow.schema();
            while let Some(task) = queue.try_pop_pick(&self.options.interleave) {
                let outcome = task.prepared.run_all(schema, &self.options, &task.ctx);
                self.finish_task(
                    &mut st,
                    &env,
                    &queue,
                    task.index,
                    &task.prepared,
                    outcome,
                    db,
                    &mut invocation_cache,
                    &mut available,
                    &mut report,
                )?;
            }
        }

        if st.task_state.contains(&TaskState::Waiting) {
            // Every reachable subtask ran, failed, or was skipped;
            // leftovers mean the graph could never make progress.
            // validate_for_execution guarantees this cannot happen —
            // defensive check against corrupt graphs.
            return Err(ExecError::Flow(hercules_flow::FlowError::Cycle));
        }
        Ok(report)
    }

    /// Runs the scheduling loop against a persistent worker pool:
    /// workers pull from the ready queue and report completions over a
    /// channel; this thread commits serially and dispatches successors.
    #[allow(clippy::too_many_arguments)]
    fn pump_parallel(
        &self,
        st: &mut SchedState,
        env: &SchedEnv<'_>,
        queue: &ReadyQueue,
        workers: usize,
        db: &mut HistoryDb,
        invocation_cache: &mut InvocationCache,
        available: &mut HashMap<NodeId, Vec<InstanceId>>,
        report: &mut ExecReport,
    ) -> Result<(), ExecError> {
        let schema = env.flow.schema();
        let options = &self.options;
        std::thread::scope(|scope| {
            let (done_tx, done_rx) = mpsc::channel::<Completion>();
            for _ in 0..workers {
                let done_tx = done_tx.clone();
                let queue = &*queue;
                scope.spawn(move || {
                    while let Some(task) = queue.pop(&options.metrics, &options.clock) {
                        // run_all catches tool panics itself; this
                        // guards against panics in the engine's own
                        // plumbing so one worker can never wedge the
                        // scheduler waiting for a lost completion.
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                task.prepared.run_all(schema, options, &task.ctx)
                            }))
                            .unwrap_or_else(|payload| {
                                SubtaskOutcome {
                                    result: Err(ExecError::ToolPanicked {
                                        tool: "subtask worker".into(),
                                        message: supervise::panic_message(payload.as_ref()),
                                    }),
                                    attempts: 0,
                                    duration: Duration::ZERO,
                                    started: options.clock.since(task.ctx.epoch),
                                }
                            });
                        let sent = done_tx.send(Completion {
                            index: task.index,
                            prepared: task.prepared,
                            outcome,
                        });
                        if sent.is_err() {
                            break;
                        }
                    }
                });
            }
            drop(done_tx);
            let run = (|| {
                while st.in_flight > 0 {
                    let c = done_rx.recv().map_err(|_| ExecError::ToolPanicked {
                        tool: "subtask worker".into(),
                        message: "worker pool exited with tasks in flight".into(),
                    })?;
                    self.finish_task(
                        st,
                        env,
                        queue,
                        c.index,
                        &c.prepared,
                        c.outcome,
                        db,
                        invocation_cache,
                        available,
                        report,
                    )?;
                }
                Ok(())
            })();
            // Wake idle workers so the pool drains; in-flight tasks
            // finish their current run and exit on the next pop.
            queue.close();
            run
        })
    }

    /// Prepares one ready subtask and hands it to the queue, stamping
    /// the dispatch instant (the start of its queue wait).
    fn dispatch_ready(
        &self,
        st: &mut SchedState,
        env: &SchedEnv<'_>,
        index: usize,
        queue: &ReadyQueue,
        available: &HashMap<NodeId, Vec<InstanceId>>,
        db: &HistoryDb,
    ) -> Result<(), ExecError> {
        let metrics = &self.options.metrics;
        let dispatch_started = self.options.clock.now();
        let prepared = self.prepare(env.flow, &st.subtasks[index], available, db)?;
        st.task_state[index] = TaskState::Scheduled;
        st.in_flight += 1;
        st.seq += 1;
        queue.push(
            ReadyTask {
                priority: st.priority[index],
                seq: st.seq,
                index,
                prepared,
                ctx: DispatchCtx {
                    span: env.epoch_span,
                    epoch: env.epoch,
                    dispatched: self.options.clock.now(),
                },
            },
            metrics,
        );
        metrics.observe_duration(
            "exec.sched_dispatch_ns",
            self.options.clock.since(dispatch_started),
        );
        Ok(())
    }

    /// Handles one completed subtask on the scheduling thread: commits
    /// its products (or records the failure and skips its downstream
    /// cone), then decrements successors' dependency counters and
    /// dispatches the newly-ready ones.
    #[allow(clippy::too_many_arguments)]
    fn finish_task(
        &self,
        st: &mut SchedState,
        env: &SchedEnv<'_>,
        queue: &ReadyQueue,
        index: usize,
        prepared: &PreparedSubtask,
        outcome: SubtaskOutcome,
        db: &mut HistoryDb,
        invocation_cache: &mut InvocationCache,
        available: &mut HashMap<NodeId, Vec<InstanceId>>,
        report: &mut ExecReport,
    ) -> Result<(), ExecError> {
        st.in_flight -= 1;
        st.task_state[index] = TaskState::Terminal;
        let (attempts, duration, started) = (outcome.attempts, outcome.duration, outcome.started);
        match outcome.result {
            Ok(runs) => {
                self.commit_runs(
                    prepared,
                    runs,
                    attempts,
                    duration,
                    started,
                    db,
                    invocation_cache,
                    available,
                    report,
                )?;
                for j in st.successors[index].clone() {
                    st.dep_count[j] -= 1;
                    if st.dep_count[j] == 0 && st.task_state[j] == TaskState::Waiting {
                        self.dispatch_ready(st, env, j, queue, available, db)?;
                    }
                }
                Ok(())
            }
            Err(error) => {
                if self.options.failure == FailurePolicy::Abort {
                    // Nothing of this subtask commits; the error
                    // propagates and the pool drains.
                    return Err(error);
                }
                // ContinueDisjoint: report the failure, then skip the
                // downstream cone exactly as the wave executor would.
                st.dead.extend(prepared.subtask.outputs.iter().copied());
                report.tasks.push(TaskRecord {
                    outputs: prepared.subtask.outputs.clone(),
                    action: TaskAction::Failed { error },
                    attempts,
                    duration,
                    started,
                });
                let mut frontier = st.successors[index].clone();
                while let Some(j) = frontier.pop() {
                    if st.task_state[j] != TaskState::Waiting {
                        continue;
                    }
                    let doomed = st.subtasks[j].inputs.iter().any(|i| st.dead.contains(i))
                        || st.subtasks[j].tool.is_some_and(|t| st.dead.contains(&t));
                    if !doomed {
                        continue;
                    }
                    st.task_state[j] = TaskState::Terminal;
                    st.dead.extend(st.subtasks[j].outputs.iter().copied());
                    self.options.tracer.instant("skip", env.exec_span, |a| {
                        a.str("outputs", node_list(&st.subtasks[j].outputs));
                    });
                    report.tasks.push(TaskRecord {
                        outputs: st.subtasks[j].outputs.clone(),
                        action: TaskAction::Skipped,
                        attempts: 0,
                        duration: Duration::ZERO,
                        started: self.options.clock.since(env.epoch),
                    });
                    frontier.extend(st.successors[j].iter().copied());
                }
                Ok(())
            }
        }
    }

    /// Sizes the worker pool: explicit [`ExecOptions::workers`], else
    /// one per available core (at least 2), never more than the number
    /// of subtasks.
    fn effective_workers(&self, tasks: usize) -> usize {
        if !self.options.parallel {
            return 1;
        }
        let auto = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(2)
            .max(2);
        let chosen = if self.options.workers == 0 {
            auto
        } else {
            self.options.workers
        };
        chosen.clamp(1, tasks.max(1))
    }

    /// Prepares one subtask: resolves instances, computes the fan-out
    /// and clones the payloads so runs can execute off-thread.
    fn prepare(
        &self,
        flow: &TaskGraph,
        subtask: &Subtask,
        available: &HashMap<NodeId, Vec<InstanceId>>,
        db: &HistoryDb,
    ) -> Result<PreparedSubtask, ExecError> {
        let schema = flow.schema();
        let lookup_entity = match subtask.tool {
            Some(t) => flow.entity_of(t)?,
            None => flow.entity_of(subtask.outputs[0])?,
        };
        let enc = self
            .registry
            .lookup(schema, lookup_entity)
            .ok_or_else(|| ExecError::MissingEncapsulation {
                entity: schema.entity(lookup_entity).name().to_owned(),
            })?
            .clone();

        let tool_instances: Vec<InstanceId> = match subtask.tool {
            Some(t) => available.get(&t).cloned().unwrap_or_default(),
            None => Vec::new(),
        };
        let input_instances: Vec<(NodeId, Vec<InstanceId>)> = subtask
            .inputs
            .iter()
            .map(|&i| (i, available.get(&i).cloned().unwrap_or_default()))
            .collect();

        // Fan-out: cartesian product over multi-instance slots under
        // RunPerInstance; a single call under SingleCall.
        let mode = enc.multi_instance_mode();
        let combos: Vec<RunInputs> = match mode {
            MultiInstanceMode::SingleCall => {
                let tools = if subtask.tool.is_some() {
                    if tool_instances.len() != 1 {
                        return Err(ExecError::ToolFailed {
                            tool: schema.entity(lookup_entity).name().to_owned(),
                            message: "single-call tools need exactly one tool instance".into(),
                        });
                    }
                    Some(tool_instances[0])
                } else {
                    None
                };
                vec![RunInputs {
                    tool: tools,
                    inputs: input_instances.clone(),
                }]
            }
            MultiInstanceMode::RunPerInstance => {
                let mut combos = vec![RunInputs {
                    tool: None,
                    inputs: Vec::new(),
                }];
                if subtask.tool.is_some() {
                    combos = tool_instances
                        .iter()
                        .map(|&t| RunInputs {
                            tool: Some(t),
                            inputs: Vec::new(),
                        })
                        .collect();
                }
                for (node, instances) in &input_instances {
                    let mut next = Vec::with_capacity(combos.len() * instances.len());
                    for combo in &combos {
                        for &inst in instances {
                            let mut c = combo.clone();
                            c.inputs.push((*node, vec![inst]));
                            next.push(c);
                        }
                    }
                    combos = next;
                    if combos.len() > self.options.fanout_limit {
                        return Err(ExecError::FanOutTooLarge {
                            runs: combos.len(),
                            limit: self.options.fanout_limit,
                        });
                    }
                }
                combos
            }
        };

        // Pre-resolve payload bytes and cache hits for every run.
        let output_entities: Vec<EntityTypeId> = subtask
            .outputs
            .iter()
            .map(|&o| flow.entity_of(o))
            .collect::<Result<_, _>>()?;
        let mut runs = Vec::with_capacity(combos.len());
        for combo in combos {
            let flat_inputs: Vec<InstanceId> = combo
                .inputs
                .iter()
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            if self.options.reuse_cached {
                let cached: Option<Vec<InstanceId>> = output_entities
                    .iter()
                    .map(|&e| db.current_cached(e, combo.tool, &flat_inputs))
                    .collect();
                if let Some(instances) = cached {
                    runs.push(PreparedRun::Cached(instances));
                    continue;
                }
            }
            let tool_data = match combo.tool {
                Some(t) => db.data_of(t)?.map(<[u8]>::to_vec),
                None => None,
            };
            let inputs: Vec<ToolInput> = combo
                .inputs
                .iter()
                .map(|(node, instances)| {
                    let entity = flow.entity_of(*node)?;
                    let payloads: Result<Vec<Vec<u8>>, ExecError> = instances
                        .iter()
                        .map(|&i| Ok(db.data_of(i)?.map(<[u8]>::to_vec).unwrap_or_default()))
                        .collect();
                    Ok(ToolInput {
                        entity,
                        instances: payloads?,
                    })
                })
                .collect::<Result<_, ExecError>>()?;
            runs.push(PreparedRun::Invoke {
                invocation: Invocation {
                    tool_entity: lookup_entity,
                    tool_data,
                    inputs,
                    outputs: output_entities.clone(),
                },
                tool_instance: combo.tool,
                input_instances: flat_inputs,
            });
        }
        let mut dep_nodes = subtask.inputs.clone();
        if let Some(t) = subtask.tool {
            dep_nodes.push(t);
        }
        Ok(PreparedSubtask {
            label: format!(
                "{}#n{}",
                schema.entity(lookup_entity).name(),
                subtask.outputs[0].index()
            ),
            outputs_attr: node_list(&subtask.outputs),
            inputs_attr: node_list(&dep_nodes),
            subtask: subtask.clone(),
            enc,
            runs,
            output_entities,
        })
    }
}

/// Renders nodes as the space-separated `n<index>` list used by trace
/// attributes (the profiler derives the task DAG from these).
fn node_list(nodes: &[NodeId]) -> String {
    let mut out = String::new();
    for (i, n) in nodes.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push('n');
        out.push_str(&n.index().to_string());
    }
    out
}

/// Ends a span when dropped, so error paths cannot leak open spans.
struct SpanGuard<'a> {
    tracer: &'a Tracer,
    id: SpanId,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.tracer.end(self.id);
    }
}

/// Per-dispatch context threaded into subtask runs: the parent span of
/// the task span (the scheduler epoch under dataflow, the wave under
/// the legacy scheduler), the execution epoch (task start offsets are
/// relative to it), and the dispatch instant (queue wait = how long a
/// ready subtask sat before a worker picked it up).
struct DispatchCtx {
    span: SpanId,
    epoch: SimInstant,
    dispatched: SimInstant,
}

/// Where one subtask is in its dataflow lifecycle.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TaskState {
    /// Dependencies outstanding.
    Waiting,
    /// In the ready queue or running on a worker.
    Scheduled,
    /// Committed, failed, or skipped.
    Terminal,
}

/// Mutable bookkeeping of one dataflow execution, shared between the
/// initial seeding and every completion.
struct SchedState {
    subtasks: Vec<Subtask>,
    /// Static dispatch priority per subtask (downstream critical-path
    /// length).
    priority: Vec<u64>,
    /// Outstanding producer subtasks per subtask.
    dep_count: Vec<usize>,
    /// Consumer subtasks per subtask (the reverse edges).
    successors: Vec<Vec<usize>>,
    task_state: Vec<TaskState>,
    /// Nodes downstream of a permanent failure.
    dead: HashSet<NodeId>,
    /// Dispatch sequence counter (FIFO tiebreak among equal
    /// priorities).
    seq: u64,
    /// Subtasks queued or running.
    in_flight: usize,
}

/// Immutable context of one dataflow execution.
struct SchedEnv<'a> {
    flow: &'a TaskGraph,
    epoch: SimInstant,
    epoch_span: SpanId,
    exec_span: SpanId,
}

/// One dispatched subtask waiting for a worker.
struct ReadyTask {
    /// Downstream critical-path length; longer poles pop first.
    priority: u64,
    /// Dispatch sequence number; FIFO among equal priorities.
    seq: u64,
    index: usize,
    prepared: PreparedSubtask,
    ctx: DispatchCtx,
}

impl PartialEq for ReadyTask {
    fn eq(&self, other: &ReadyTask) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl Eq for ReadyTask {}

impl PartialOrd for ReadyTask {
    fn partial_cmp(&self, other: &ReadyTask) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ReadyTask {
    fn cmp(&self, other: &ReadyTask) -> Ordering {
        // Max-heap: higher priority first, then earlier dispatch.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A finished subtask on its way back to the scheduling thread.
struct Completion {
    index: usize,
    prepared: PreparedSubtask,
    outcome: SubtaskOutcome,
}

/// The scheduler's ready queue: a max-heap of prepared subtasks ordered
/// by dispatch priority, shared with the persistent workers behind a
/// mutex + condvar (mpsc channels are single-consumer, so they cannot
/// feed a pool).
#[derive(Default)]
struct ReadyQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

#[derive(Default)]
struct QueueState {
    heap: BinaryHeap<ReadyTask>,
    closed: bool,
}

impl ReadyQueue {
    fn push(&self, task: ReadyTask, metrics: &Metrics) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.heap.push(task);
        metrics.observe("exec.queue_depth", state.heap.len() as u64);
        drop(state);
        self.ready.notify_one();
    }

    /// Pops the highest-priority ready task, blocking until one arrives
    /// or the queue closes. Time spent blocked is a worker's idle time.
    fn pop(&self, metrics: &Metrics, clock: &Clock) -> Option<ReadyTask> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(task) = state.heap.pop() {
                return Some(task);
            }
            if state.closed {
                return None;
            }
            let idle_from = clock.now();
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
            metrics.observe_duration("exec.worker_idle_ns", clock.since(idle_from));
        }
    }

    /// Non-blocking pop for the serial pump. The real interleaver
    /// takes the heap's own maximum (priority order, FIFO tiebreak);
    /// a simulated one sees every ready candidate in deterministic
    /// order and picks one, logging the choice.
    fn try_pop_pick(&self, interleave: &Interleaver) -> Option<ReadyTask> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !interleave.is_sim() {
            return state.heap.pop();
        }
        let mut candidates: Vec<ReadyTask> = std::mem::take(&mut state.heap).into_vec();
        if candidates.is_empty() {
            return None;
        }
        // Present candidates in the heap's own order (priority desc,
        // then dispatch order) so the index → task mapping is stable.
        candidates.sort_by(|a, b| b.cmp(a));
        let labels: Vec<&str> = candidates
            .iter()
            .map(|t| t.prepared.label.as_str())
            .collect();
        let pick = interleave.choose_labeled(&labels);
        let task = candidates.swap_remove(pick);
        state.heap.extend(candidates);
        Some(task)
    }

    /// Closes the queue: blocked and future pops return `None` once the
    /// heap drains, letting the worker pool exit.
    fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

/// Builds the subtask-level dependency graph: how many producer
/// subtasks each subtask waits on (`dep_count`), who consumes whom
/// (`successors`), and each subtask's producers (for the priority
/// analysis). A dependency with neither a producer subtask nor a bound
/// instance leaves its consumer permanently blocked, which the cycle
/// check at the end of the execution reports.
#[allow(clippy::type_complexity)]
fn dependency_edges(
    subtasks: &[Subtask],
    available: &HashMap<NodeId, Vec<InstanceId>>,
) -> (Vec<usize>, Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let mut producer: HashMap<NodeId, usize> = HashMap::new();
    for (i, s) in subtasks.iter().enumerate() {
        for &o in &s.outputs {
            producer.insert(o, i);
        }
    }
    let mut dep_count = vec![0usize; subtasks.len()];
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); subtasks.len()];
    let mut producers_of: Vec<Vec<usize>> = vec![Vec::new(); subtasks.len()];
    for (i, s) in subtasks.iter().enumerate() {
        let mut seen = HashSet::new();
        for dep in s.inputs.iter().copied().chain(s.tool) {
            match producer.get(&dep) {
                Some(&j) if j != i => {
                    if seen.insert(j) {
                        dep_count[i] += 1;
                        successors[j].push(i);
                        producers_of[i].push(j);
                    }
                }
                Some(_) => {}
                None => {
                    if !available.contains_key(&dep) {
                        dep_count[i] += 1;
                    }
                }
            }
        }
    }
    (dep_count, successors, producers_of)
}

/// Static dispatch priorities: each subtask's downstream critical-path
/// length over estimated costs (one abstract unit per invocation plus
/// one per output), computed with the profiler's critical-path
/// analysis. The longest pole dispatches first, so a straggler branch
/// starts as early as its dependencies allow.
fn subtask_priorities(subtasks: &[Subtask], producers_of: &[Vec<usize>]) -> Vec<u64> {
    let profiles: Vec<TaskProfile> = subtasks
        .iter()
        .enumerate()
        .map(|(i, s)| TaskProfile {
            label: format!("s{i}"),
            total_ns: 1 + s.outputs.len() as u64,
            self_ns: 0,
            start_ns: 0,
            tid: 0,
            deps: producers_of[i].iter().map(|j| format!("s{j}")).collect(),
            cache_hit: false,
            queue_wait_ns: 0,
        })
        .collect();
    let down = downstream_critical(&profiles);
    (0..subtasks.len())
        .map(|i| down.get(&format!("s{i}")).copied().unwrap_or(0))
        .collect()
}

#[derive(Debug, Clone)]
struct RunInputs {
    tool: Option<InstanceId>,
    inputs: Vec<(NodeId, Vec<InstanceId>)>,
}

enum PreparedRun {
    Cached(Vec<InstanceId>),
    Invoke {
        invocation: Invocation,
        tool_instance: Option<InstanceId>,
        input_instances: Vec<InstanceId>,
    },
}

/// The outcome of one run, before recording.
enum RunResult {
    Cached(Vec<InstanceId>),
    Produced {
        tool_instance: Option<InstanceId>,
        input_instances: Vec<InstanceId>,
        outputs: Vec<ToolOutput>,
    },
    /// Outputs replayed from a content-cache hit: committed to the
    /// history exactly like [`RunResult::Produced`] (so a warm run's
    /// records are byte-identical to a cold run's), but not counted as
    /// an execution.
    Replayed {
        tool_instance: Option<InstanceId>,
        input_instances: Vec<InstanceId>,
        outputs: Vec<ToolOutput>,
    },
}

struct PreparedSubtask {
    subtask: Subtask,
    enc: std::sync::Arc<dyn Encapsulation>,
    runs: Vec<PreparedRun>,
    output_entities: Vec<EntityTypeId>,
    /// Trace label: the tool (or output) entity name plus the first
    /// output node, unique per subtask within one flow.
    label: String,
    /// Output nodes as a trace attribute (see [`node_list`]).
    outputs_attr: String,
    /// Dependency nodes (data inputs plus the tool node) as a trace
    /// attribute.
    inputs_attr: String,
}

/// What one subtask's run phase produced: either every run's result,
/// or the first permanent error — plus bookkeeping for the report.
struct SubtaskOutcome {
    result: Result<Vec<RunResult>, ExecError>,
    /// Largest number of attempts any single invocation needed.
    attempts: u32,
    duration: Duration,
    /// Start offset from the execution epoch.
    started: Duration,
}

impl PreparedSubtask {
    /// Deterministic jitter salt for one invocation of this subtask.
    /// Folding in `jitter_seed` ties the whole backoff schedule to the
    /// run's simulation seed: same seed, same delays, run after run.
    fn retry_salt(&self, run_index: usize, jitter_seed: u64) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        (jitter_seed, self.subtask.outputs.first(), run_index).hash(&mut hasher);
        hasher.finish()
    }

    /// Validates one invocation's outputs against the subtask's
    /// products.
    fn check_outputs(
        &self,
        schema: &TaskSchema,
        invocation: &Invocation,
        outputs: &[ToolOutput],
    ) -> Result<(), ExecError> {
        if outputs.len() != self.output_entities.len() {
            return Err(ExecError::WrongOutputs {
                tool: schema.entity(invocation.tool_entity).name().to_owned(),
                detail: format!(
                    "expected {} outputs, got {}",
                    self.output_entities.len(),
                    outputs.len()
                ),
            });
        }
        for (out, &want) in outputs.iter().zip(&self.output_entities) {
            if !schema.is_subtype_of(out.entity, want) {
                return Err(ExecError::WrongOutputs {
                    tool: schema.entity(invocation.tool_entity).name().to_owned(),
                    detail: format!(
                        "expected `{}`, got `{}`",
                        schema.entity(want).name(),
                        schema.entity(out.entity).name()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Runs one invocation under supervision, retrying per the policy.
    /// Returns the validated outputs and the number of attempts made.
    fn run_one(
        &self,
        schema: &std::sync::Arc<TaskSchema>,
        invocation: &Invocation,
        options: &ExecOptions,
        salt: u64,
        task_span: SpanId,
    ) -> (Result<Vec<ToolOutput>, ExecError>, u32) {
        let mut attempt = 1u32;
        loop {
            let attempt_span = options.tracer.begin_with("attempt", task_span, |a| {
                a.uint("attempt", u64::from(attempt));
            });
            let attempt_started = options.clock.now();
            let result = supervise::run_supervised(&self.enc, schema, invocation, options.deadline)
                .and_then(|outputs| {
                    self.check_outputs(schema, invocation, &outputs)?;
                    Ok(outputs)
                });
            options
                .metrics
                .observe_duration("exec.attempt_ns", options.clock.since(attempt_started));
            match result {
                Ok(outputs) => {
                    options.tracer.end_with(attempt_span, |a| {
                        a.bool("ok", true);
                    });
                    return (Ok(outputs), attempt);
                }
                Err(error) => {
                    let cause = error.to_string();
                    options.tracer.end_with(attempt_span, |a| {
                        a.bool("ok", false);
                        a.str("error", cause.as_str());
                    });
                    if attempt >= options.retry.max_attempts || !options.retry.is_retryable(&error)
                    {
                        return (Err(error), attempt);
                    }
                    attempt += 1;
                    let delay = options.retry.delay_before(attempt, salt);
                    options.metrics.incr("exec.retries", 1);
                    options.tracer.instant("retry", task_span, |a| {
                        a.uint("attempt", u64::from(attempt));
                        a.str("cause", cause.as_str());
                        a.uint("delay_ms", delay.as_millis() as u64);
                    });
                    options.clock.sleep(delay);
                }
            }
        }
    }

    /// Runs every prepared invocation of the subtask, with supervision
    /// and retries; stops at the first permanent failure.
    fn run_all(
        &self,
        schema: &std::sync::Arc<TaskSchema>,
        options: &ExecOptions,
        wave: &DispatchCtx,
    ) -> SubtaskOutcome {
        let started = options.clock.now();
        let started_offset = started.duration_since(wave.epoch);
        let queue_wait = started.duration_since(wave.dispatched);
        options
            .metrics
            .observe_duration("exec.queue_wait_ns", queue_wait);
        let invoked = self
            .runs
            .iter()
            .filter(|r| matches!(r, PreparedRun::Invoke { .. }))
            .count();
        let task_span = options.tracer.begin_with("task", wave.span, |a| {
            a.str("task", self.label.as_str());
            a.str("outputs", self.outputs_attr.as_str());
            a.str("inputs", self.inputs_attr.as_str());
            a.uint("runs", self.runs.len() as u64);
            a.bool("cache_hit", invoked == 0);
            a.uint("queue_wait_ns", queue_wait.as_nanos() as u64);
        });
        let mut attempts = 0u32;
        let mut content_hits = 0u64;
        let mut results = Vec::with_capacity(self.runs.len());
        for (run_index, run) in self.runs.iter().enumerate() {
            match run {
                PreparedRun::Cached(instances) => {
                    results.push(RunResult::Cached(instances.clone()));
                }
                PreparedRun::Invoke {
                    invocation,
                    tool_instance,
                    input_instances,
                } => {
                    // Content cache first: a hit replays the recorded
                    // outputs instead of dispatching the tool.
                    let content_key = options
                        .cache
                        .as_ref()
                        .map(|_| content_cache::invocation_key(schema, invocation));
                    if let (Some(cache), Some(key)) = (&options.cache, &content_key) {
                        if let Some(outputs) = cache.lookup(key).and_then(|entry| {
                            content_cache::outputs_from_entry(schema, &entry, &self.output_entities)
                        }) {
                            content_hits += 1;
                            options.tracer.instant("content_cache_hit", task_span, |a| {
                                a.str("key", key.to_hex().as_str());
                            });
                            results.push(RunResult::Replayed {
                                tool_instance: *tool_instance,
                                input_instances: input_instances.clone(),
                                outputs,
                            });
                            continue;
                        }
                    }
                    let (result, used) = self.run_one(
                        schema,
                        invocation,
                        options,
                        self.retry_salt(run_index, options.jitter_seed),
                        task_span,
                    );
                    attempts = attempts.max(used);
                    match result {
                        Ok(outputs) => {
                            // Write the fresh result back for future
                            // sessions; insert is non-blocking (memory
                            // now, persistent tiers asynchronously).
                            if let (Some(cache), Some(key)) = (&options.cache, &content_key) {
                                cache.insert(
                                    key,
                                    &content_cache::entry_from_outputs(
                                        *key,
                                        schema,
                                        invocation,
                                        &outputs,
                                        options.clock.wall_unix_ms(),
                                    ),
                                );
                            }
                            results.push(RunResult::Produced {
                                tool_instance: *tool_instance,
                                input_instances: input_instances.clone(),
                                outputs,
                            })
                        }
                        Err(error) => {
                            let duration = options.clock.since(started);
                            options
                                .metrics
                                .observe_duration("exec.task_wall_ns", duration);
                            let msg = error.to_string();
                            options.tracer.end_with(task_span, |a| {
                                a.bool("ok", false);
                                a.uint("attempts", u64::from(attempts));
                                a.str("error", msg.as_str());
                            });
                            return SubtaskOutcome {
                                result: Err(error),
                                attempts,
                                duration,
                                started: started_offset,
                            };
                        }
                    }
                }
            }
        }
        let duration = options.clock.since(started);
        options
            .metrics
            .observe_duration("exec.task_wall_ns", duration);
        options.tracer.end_with(task_span, |a| {
            a.bool("ok", true);
            a.uint("attempts", u64::from(attempts));
            a.uint("content_hits", content_hits);
        });
        SubtaskOutcome {
            result: Ok(results),
            attempts,
            duration,
            started: started_offset,
        }
    }
}

/// Runs every prepared subtask of a wave on its own thread — the
/// "separate branches can be executed in parallel" of Fig. 6.
fn run_parallel(
    prepared: &[PreparedSubtask],
    flow: &TaskGraph,
    options: &ExecOptions,
    wave: &DispatchCtx,
) -> Vec<SubtaskOutcome> {
    let schema = flow.schema();
    std::thread::scope(|scope| {
        let handles: Vec<_> = prepared
            .iter()
            .map(|p| scope.spawn(move || p.run_all(schema, options, wave)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                // run_all catches tool panics itself; this guards the
                // engine against panics in its own plumbing so one
                // subtask thread can never abort the whole execution.
                h.join().unwrap_or_else(|payload| SubtaskOutcome {
                    result: Err(ExecError::ToolPanicked {
                        tool: "subtask worker".into(),
                        message: supervise::panic_message(payload.as_ref()),
                    }),
                    attempts: 0,
                    duration: Duration::ZERO,
                    started: options.clock.since(wave.epoch),
                })
            })
            .collect()
    })
}

/// Groups the interior nodes of a flow into subtasks: nodes sharing the
/// same tool node *and* the same data-input set form one multi-output
/// subtask (Fig. 5).
fn group_subtasks(flow: &TaskGraph) -> Result<Vec<Subtask>, ExecError> {
    let order = flow.topo_order()?;
    let mut subtasks: Vec<Subtask> = Vec::new();
    for node in order {
        if !flow.is_expanded(node) {
            continue;
        }
        let tool = flow.tool_of(node);
        let mut inputs = flow.data_inputs_of(node);
        inputs.sort();
        if let Some(existing) = subtasks
            .iter_mut()
            .find(|s| s.tool == tool && tool.is_some() && s.inputs == inputs)
        {
            existing.outputs.push(node);
            continue;
        }
        subtasks.push(Subtask {
            outputs: vec![node],
            tool,
            inputs,
        });
    }
    Ok(subtasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{self, TextTool};
    use hercules_flow::Expansion;
    use hercules_schema::fixtures;
    use std::sync::Arc;
    use std::time::Duration;

    fn setup() -> (Arc<hercules_schema::TaskSchema>, HistoryDb, Executor) {
        let schema = Arc::new(fixtures::fig1());
        let mut db = HistoryDb::new(schema.clone());
        toy::seed_everything(&mut db, "setup");
        let executor = Executor::new(toy::text_registry(&schema));
        (schema, db, executor)
    }

    fn perf_flow(schema: &Arc<hercules_schema::TaskSchema>) -> (TaskGraph, NodeId) {
        let mut flow = TaskGraph::new(schema.clone());
        let perf = flow
            .seed(schema.require("Performance").expect("known"))
            .expect("ok");
        flow.expand(perf).expect("ok");
        (flow, perf)
    }

    #[test]
    fn executes_single_task_and_records_derivation() {
        let (schema, mut db, executor) = setup();
        let (mut flow, perf) = perf_flow(&schema);
        let circuit = flow.data_inputs_of(perf)[0];
        flow.expand(circuit).expect("ok");
        let netlist = flow.data_inputs_of(circuit)[1];
        flow.specialize(netlist, schema.require("EditedNetlist").expect("known"))
            .expect("ok");
        flow.expand(netlist).expect("ok");

        let mut binding = Binding::new();
        assert!(binding.bind_latest(&flow, &db).is_empty());
        let before = db.len();
        let report = executor.execute(&flow, &binding, &mut db).expect("runs");
        assert_eq!(report.runs(), 3, "editor, compose, simulator");
        assert_eq!(db.len(), before + 3);

        let inst = report.single(perf);
        let text = String::from_utf8_lossy(db.data_of(inst).expect("ok").expect("data"));
        assert_eq!(
            text,
            "Simulator(Circuit(DeviceModels, CircuitEditor()), Stimuli)"
        );
        // The derivation records the immediate tool and inputs.
        let d = db
            .instance(inst)
            .expect("ok")
            .derivation()
            .expect("derived");
        assert!(d.tool.is_some());
        assert_eq!(d.inputs.len(), 2);
    }

    #[test]
    fn unbound_leaf_fails() {
        let (schema, mut db, executor) = setup();
        let (flow, _) = perf_flow(&schema);
        let binding = Binding::new();
        assert!(matches!(
            executor.execute(&flow, &binding, &mut db).unwrap_err(),
            ExecError::UnboundLeaf { .. }
        ));
    }

    #[test]
    fn missing_encapsulation_fails() {
        let (schema, mut db, _) = setup();
        let (flow, _) = perf_flow(&schema);
        let mut binding = Binding::new();
        binding.bind_latest(&flow, &db);
        let empty = Executor::new(EncapsulationRegistry::new());
        assert!(matches!(
            empty.execute(&flow, &binding, &mut db).unwrap_err(),
            ExecError::MissingEncapsulation { .. }
        ));
    }

    #[test]
    fn multi_output_subtask_runs_tool_once() {
        let (schema, mut db, executor) = setup();
        let mut flow = TaskGraph::new(schema.clone());
        let ext = flow
            .seed(schema.require("ExtractedNetlist").expect("known"))
            .expect("ok");
        let created = flow.expand(ext).expect("ok");
        let (extractor, layout) = (created[0], created[1]);
        let stats = flow
            .seed(schema.require("ExtractionStatistics").expect("known"))
            .expect("ok");
        flow.expand_with(
            stats,
            &Expansion::new()
                .reusing(schema.require("Extractor").expect("known"), extractor)
                .reusing(schema.require("Layout").expect("known"), layout),
        )
        .expect("ok");
        // Layout is interior-free here (a leaf); bind it and the tool.
        let mut binding = Binding::new();
        binding.bind_latest(&flow, &db);
        let report = executor.execute(&flow, &binding, &mut db).expect("runs");
        assert_eq!(report.tasks.len(), 1, "one grouped subtask");
        assert_eq!(report.runs(), 1, "tool invoked once for two outputs");
        let ext_text =
            String::from_utf8_lossy(db.data_of(report.single(ext)).expect("ok").expect("d"))
                .into_owned();
        let stats_text =
            String::from_utf8_lossy(db.data_of(report.single(stats)).expect("ok").expect("d"))
                .into_owned();
        assert!(ext_text.contains(".ExtractedNetlist"));
        assert!(stats_text.contains(".ExtractionStatistics"));
        // Both derivations share the same tool and inputs.
        let d1 = db
            .instance(report.single(ext))
            .expect("ok")
            .derivation()
            .cloned();
        let d2 = db
            .instance(report.single(stats))
            .expect("ok")
            .derivation()
            .cloned();
        assert_eq!(d1, d2);
    }

    #[test]
    fn multi_instance_selection_fans_out() {
        let (schema, mut db, executor) = setup();
        let (flow, perf) = perf_flow(&schema);
        // Three stimulus sets selected at once (§4.1).
        let stim_ty = schema.require("Stimuli").expect("known");
        let extra1 = db
            .record_primary(stim_ty, Metadata::by("u").named("s2"), b"S2")
            .expect("ok");
        let extra2 = db
            .record_primary(stim_ty, Metadata::by("u").named("s3"), b"S3")
            .expect("ok");
        let mut binding = Binding::new();
        binding.bind_latest(&flow, &db);
        let stim_leaf = flow
            .leaves()
            .into_iter()
            .find(|&l| flow.entity_of(l).expect("live") == stim_ty)
            .expect("stimuli leaf");
        let first = db.instances_of(stim_ty)[0];
        binding.bind_many(stim_leaf, &[first, extra1, extra2]);

        let report = executor.execute(&flow, &binding, &mut db).expect("runs");
        assert_eq!(report.runs(), 3, "one run per selected stimulus");
        assert_eq!(report.instances_of(perf).len(), 3);
    }

    #[test]
    fn single_call_mode_receives_all_instances() {
        let (schema, mut db, _) = setup();
        let (flow, perf) = perf_flow(&schema);
        let stim_ty = schema.require("Stimuli").expect("known");
        let extra = db
            .record_primary(stim_ty, Metadata::by("u").named("s2"), b"S2")
            .expect("ok");
        let mut binding = Binding::new();
        binding.bind_latest(&flow, &db);
        let stim_leaf = flow
            .leaves()
            .into_iter()
            .find(|&l| flow.entity_of(l).expect("live") == stim_ty)
            .expect("leaf");
        let first = db.instances_of(stim_ty)[0];
        binding.bind_many(stim_leaf, &[first, extra]);

        let registry = toy::text_registry_with(
            &schema,
            TextTool {
                mode: MultiInstanceMode::SingleCall,
                work: Duration::ZERO,
            },
        );
        let executor = Executor::new(registry);
        let report = executor.execute(&flow, &binding, &mut db).expect("runs");
        assert_eq!(report.runs(), 1, "all instances in one call");
        let text =
            String::from_utf8_lossy(db.data_of(report.single(perf)).expect("ok").expect("d"))
                .into_owned();
        assert!(text.contains("Stimuli") && text.contains("S2"));
    }

    #[test]
    fn fanout_limit_is_enforced() {
        let (schema, mut db, mut_exec) = setup();
        let mut executor = mut_exec;
        executor.options_mut().fanout_limit = 2;
        let (flow, _) = perf_flow(&schema);
        let stim_ty = schema.require("Stimuli").expect("known");
        let mut stims = vec![db.instances_of(stim_ty)[0]];
        for i in 0..3 {
            stims.push(
                db.record_primary(stim_ty, Metadata::by("u"), format!("s{i}").as_bytes())
                    .expect("ok"),
            );
        }
        let mut binding = Binding::new();
        binding.bind_latest(&flow, &db);
        let stim_leaf = flow
            .leaves()
            .into_iter()
            .find(|&l| flow.entity_of(l).expect("live") == stim_ty)
            .expect("leaf");
        binding.bind_many(stim_leaf, &stims);
        assert!(matches!(
            executor.execute(&flow, &binding, &mut db).unwrap_err(),
            ExecError::FanOutTooLarge { .. }
        ));
    }

    #[test]
    fn caching_reuses_current_results() {
        let (schema, mut db, mut executor) = setup();
        executor.options_mut().reuse_cached = true;
        let (flow, perf) = perf_flow(&schema);
        let mut binding = Binding::new();
        binding.bind_latest(&flow, &db);

        let first = executor.execute(&flow, &binding, &mut db).expect("runs");
        assert_eq!(first.runs(), 1);
        let len_after_first = db.len();

        let second = executor.execute(&flow, &binding, &mut db).expect("runs");
        assert_eq!(second.runs(), 0, "cache hit");
        assert_eq!(second.cache_hits(), 1);
        assert_eq!(db.len(), len_after_first, "nothing re-recorded");
        assert_eq!(second.single(perf), first.single(perf));
    }

    #[test]
    fn content_cache_hits_across_fresh_histories() {
        let (schema, _, _) = setup();
        let cache = hercules_cache::ContentCache::in_memory(
            hercules_cache::MemoryBudget::default(),
            Clock::real(),
            Metrics::disabled(),
        );
        // Two executions against *separate* history databases — the
        // content cache is the only thing they share, as if two
        // workspaces ran the same extraction.
        let run = |cache: hercules_cache::ContentCache| -> (ExecReport, Vec<u8>, usize) {
            let mut db = HistoryDb::new(schema.clone());
            toy::seed_everything(&mut db, "setup");
            let mut executor = Executor::new(toy::text_registry(&schema));
            executor.options_mut().cache = Some(cache);
            let (flow, perf) = perf_flow(&schema);
            let mut binding = Binding::new();
            binding.bind_latest(&flow, &db);
            let report = executor.execute(&flow, &binding, &mut db).expect("runs");
            let data = db
                .data_of(report.single(perf))
                .expect("ok")
                .expect("d")
                .to_vec();
            (report, data, db.len())
        };
        let (cold, cold_data, cold_len) = run(cache.clone());
        assert_eq!(cold.runs(), 1, "cold run invokes the simulator");
        let (warm, warm_data, warm_len) = run(cache.clone());
        assert_eq!(warm.runs(), 0, "warm run replays the cached result");
        assert_eq!(warm.cache_hits(), 1);
        assert_eq!(warm_data, cold_data, "byte-identical output");
        assert_eq!(warm_len, cold_len, "same history shape");
        let stats = cache.stats();
        assert_eq!(stats.tiers[0].hits, 1);
        assert_eq!(stats.inserts, 1);
    }

    #[test]
    fn without_caching_tasks_rerun() {
        let (schema, mut db, executor) = setup();
        let (flow, _) = perf_flow(&schema);
        let mut binding = Binding::new();
        binding.bind_latest(&flow, &db);
        executor.execute(&flow, &binding, &mut db).expect("runs");
        let report = executor.execute(&flow, &binding, &mut db).expect("runs");
        assert_eq!(report.runs(), 1, "no caching by default");
    }

    #[test]
    fn parallel_and_serial_agree() {
        let (schema, _, _) = setup();
        let flow = hercules_flow::fixtures::fig6(schema.clone()).expect("fixture");

        let run = |parallel: bool| -> Vec<u8> {
            let mut db = HistoryDb::new(schema.clone());
            toy::seed_everything(&mut db, "setup");
            let registry = toy::text_registry_with(
                &schema,
                TextTool {
                    mode: MultiInstanceMode::RunPerInstance,
                    work: Duration::from_millis(2),
                },
            );
            let mut executor = Executor::new(registry);
            executor.options_mut().parallel = parallel;
            let mut binding = Binding::new();
            binding.bind_latest(&flow, &db);
            let report = executor.execute(&flow, &binding, &mut db).expect("runs");
            let out = flow.outputs()[0];
            db.data_of(report.single(out))
                .expect("ok")
                .expect("d")
                .to_vec()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn parallel_branches_are_faster_with_real_work() {
        let (schema, _, _) = setup();
        let flow = hercules_flow::fixtures::fig6(schema.clone()).expect("fixture");
        let time = |parallel: bool| -> std::time::Duration {
            let mut db = HistoryDb::new(schema.clone());
            toy::seed_everything(&mut db, "setup");
            let registry = toy::text_registry_with(
                &schema,
                TextTool {
                    mode: MultiInstanceMode::RunPerInstance,
                    work: Duration::from_millis(25),
                },
            );
            let mut executor = Executor::new(registry);
            executor.options_mut().parallel = parallel;
            let mut binding = Binding::new();
            binding.bind_latest(&flow, &db);
            let start = std::time::Instant::now();
            executor.execute(&flow, &binding, &mut db).expect("runs");
            start.elapsed()
        };
        let serial = time(false);
        let parallel = time(true);
        assert!(
            parallel < serial,
            "disjoint branches should overlap: {parallel:?} vs {serial:?}"
        );
    }

    #[test]
    fn full_fig5_flow_executes() {
        let (schema, mut db, executor) = setup();
        let flow = hercules_flow::fixtures::fig5(schema.clone()).expect("fixture");
        let mut binding = Binding::new();
        assert!(binding.bind_latest(&flow, &db).is_empty());
        let report = executor.execute(&flow, &binding, &mut db).expect("runs");
        // Subtasks: editor?? fig5 leaves are primary; interior: verification,
        // extraction (multi-output), compose, performance, plot = 5
        // subtasks but extraction groups two outputs.
        assert_eq!(report.tasks.len(), 5);
        for out in flow.outputs() {
            assert_eq!(report.instances_of(out).len(), 1);
        }
    }

    #[test]
    fn failing_tool_propagates_in_parallel_mode_too() {
        let (schema, mut db, _) = setup();
        let flow = hercules_flow::fixtures::fig6(schema.clone()).expect("fixture");
        let mut registry = toy::text_registry(&schema);
        let verifier = schema.require("Verifier").expect("known");
        registry.register(verifier, std::sync::Arc::new(crate::toy::FailingTool));
        let mut binding = Binding::new();
        binding.bind_latest(&flow, &db);
        let mut executor = Executor::new(registry);
        executor.options_mut().parallel = true;
        assert!(matches!(
            executor.execute(&flow, &binding, &mut db).unwrap_err(),
            ExecError::ToolFailed { .. }
        ));
        // The branches that succeeded before the failure were recorded;
        // the failed product was not (only the seed instance exists).
        let verification = schema.require("Verification").expect("known");
        assert_eq!(db.instances_of(verification).len(), 1, "seed only");
    }

    #[test]
    fn empty_report_edge_cases() {
        let report = ExecReport::default();
        assert!(report.is_complete(), "vacuously complete");
        assert!(report.first_error().is_none());
        assert_eq!(report.runs(), 0);
        assert_eq!(report.cache_hits(), 0);
        assert_eq!(report.failed(), 0);
        assert_eq!(report.skipped(), 0);
        assert_eq!(report.instances_of(NodeId::from_index(0)), &[]);
        assert!(matches!(
            report.try_single(NodeId::from_index(0)),
            Err(ExecError::NotSingleInstance { count: 0, .. })
        ));
        assert_eq!(report.produced().count(), 0);
    }

    #[test]
    fn only_skipped_report_edge_cases() {
        let node = NodeId::from_index(7);
        let report = ExecReport::from_parts(
            HashMap::new(),
            vec![
                TaskRecord {
                    outputs: vec![node],
                    action: TaskAction::Skipped,
                    attempts: 0,
                    duration: Duration::ZERO,
                    started: Duration::ZERO,
                },
                TaskRecord {
                    outputs: vec![NodeId::from_index(8)],
                    action: TaskAction::Skipped,
                    attempts: 0,
                    duration: Duration::ZERO,
                    started: Duration::ZERO,
                },
            ],
        );
        assert!(!report.is_complete(), "skipped subtasks are incomplete");
        assert!(
            report.first_error().is_none(),
            "skips carry no error of their own"
        );
        assert_eq!(report.runs(), 0);
        assert_eq!(report.cache_hits(), 0);
        assert_eq!(report.failed(), 0);
        assert_eq!(report.skipped(), 2);
        assert!(matches!(
            report.try_single(node),
            Err(ExecError::NotSingleInstance { count: 0, .. })
        ));
    }

    #[test]
    fn report_round_trips_through_parts() {
        let (schema, mut db, executor) = setup();
        let (flow, perf) = perf_flow(&schema);
        let mut binding = Binding::new();
        binding.bind_latest(&flow, &db);
        let report = executor.execute(&flow, &binding, &mut db).expect("runs");
        let produced: HashMap<NodeId, Vec<InstanceId>> =
            report.produced().map(|(n, v)| (n, v.to_vec())).collect();
        let rebuilt = ExecReport::from_parts(produced, report.tasks.clone());
        assert_eq!(rebuilt.single(perf), report.single(perf));
        assert_eq!(rebuilt.tasks, report.tasks);
        assert_eq!(rebuilt.is_complete(), report.is_complete());
    }

    #[test]
    fn failing_tool_propagates() {
        let (schema, mut db, _) = setup();
        let (flow, _) = perf_flow(&schema);
        let mut registry = EncapsulationRegistry::new();
        let sim = schema.require("Simulator").expect("known");
        registry.register(sim, std::sync::Arc::new(crate::toy::FailingTool));
        let mut binding = Binding::new();
        binding.bind_latest(&flow, &db);
        let executor = Executor::new(registry);
        assert!(matches!(
            executor.execute(&flow, &binding, &mut db).unwrap_err(),
            ExecError::ToolFailed { .. }
        ));
    }
}
