//! Instance bindings: selecting database instances for leaf nodes.

use std::collections::HashMap;

use hercules_flow::{NodeId, TaskGraph};
use hercules_history::{HistoryDb, InstanceId};

use crate::error::ExecError;

/// A selection of instances for the leaf nodes of a flow.
///
/// "It is possible to select more than one instance, or a set of
/// instances — causing the task to be run for each data instance
/// specified" (§4.1): each leaf may carry several instances, and the
/// executor fans the affected tasks out.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Binding {
    map: HashMap<NodeId, Vec<InstanceId>>,
}

impl Binding {
    /// Creates an empty binding.
    pub fn new() -> Binding {
        Binding::default()
    }

    /// Binds a leaf to one instance (replacing previous selections).
    pub fn bind(&mut self, node: NodeId, instance: InstanceId) -> &mut Binding {
        self.map.insert(node, vec![instance]);
        self
    }

    /// Binds a leaf to several instances (multi-select fan-out).
    pub fn bind_many(&mut self, node: NodeId, instances: &[InstanceId]) -> &mut Binding {
        self.map.insert(node, instances.to_vec());
        self
    }

    /// Returns the instances bound to a node.
    pub fn get(&self, node: NodeId) -> &[InstanceId] {
        self.map.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Returns the number of bound nodes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(node, instances)` pairs in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[InstanceId])> + '_ {
        let mut keys: Vec<NodeId> = self.map.keys().copied().collect();
        keys.sort();
        keys.into_iter().map(move |k| (k, self.get(k)))
    }

    /// Validates the binding against a flow and database:
    ///
    /// * every leaf of the flow must be bound to at least one instance;
    /// * every bound node must be a leaf;
    /// * every instance's entity must belong to the node's entity
    ///   family.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnboundLeaf`],
    /// [`ExecError::BoundInteriorNode`] or a history type error.
    pub fn validate(&self, flow: &TaskGraph, db: &HistoryDb) -> Result<(), ExecError> {
        for leaf in flow.leaves() {
            if self.get(leaf).is_empty() {
                let entity = flow.entity_of(leaf)?;
                return Err(ExecError::UnboundLeaf {
                    node: leaf,
                    entity: flow.schema().entity(entity).name().to_owned(),
                });
            }
        }
        for (&node, instances) in &self.map {
            if flow.is_expanded(node) {
                return Err(ExecError::BoundInteriorNode(node));
            }
            let entity = flow.entity_of(node)?;
            for &inst in instances {
                db.check_type(inst, entity)?;
            }
        }
        Ok(())
    }

    /// Convenience: binds every unbound leaf to the latest instance of
    /// its entity family, returning the leaves that could not be
    /// auto-bound.
    pub fn bind_latest(&mut self, flow: &TaskGraph, db: &HistoryDb) -> Vec<NodeId> {
        let mut unbound = Vec::new();
        for leaf in flow.leaves() {
            if !self.get(leaf).is_empty() {
                continue;
            }
            let Ok(entity) = flow.entity_of(leaf) else {
                continue;
            };
            match db.latest_of_family(entity) {
                Some(inst) => {
                    self.bind(leaf, inst);
                }
                None => unbound.push(leaf),
            }
        }
        unbound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hercules_history::Metadata;
    use hercules_schema::fixtures;
    use std::sync::Arc;

    fn setup() -> (Arc<hercules_schema::TaskSchema>, TaskGraph, HistoryDb) {
        let schema = Arc::new(fixtures::fig1());
        let mut flow = TaskGraph::new(schema.clone());
        let perf = flow
            .seed(schema.require("Performance").expect("known"))
            .expect("ok");
        flow.expand(perf).expect("ok");
        let db = HistoryDb::new(schema.clone());
        (schema, flow, db)
    }

    #[test]
    fn unbound_leaf_is_reported() {
        let (_, flow, db) = setup();
        let binding = Binding::new();
        assert!(matches!(
            binding.validate(&flow, &db).unwrap_err(),
            ExecError::UnboundLeaf { .. }
        ));
    }

    #[test]
    fn full_binding_validates() {
        let (_schema, flow, mut db) = setup();
        let mut binding = Binding::new();
        for leaf in flow.leaves() {
            let entity = flow.entity_of(leaf).expect("live");
            let inst = db
                .record_primary(entity, Metadata::by("u"), b"data")
                .expect("ok");
            binding.bind(leaf, inst);
        }
        binding.validate(&flow, &db).expect("complete binding");
        assert_eq!(binding.len(), 3);
        assert_eq!(binding.iter().count(), 3);
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let (schema, flow, mut db) = setup();
        let stim_ty = schema.require("Stimuli").expect("known");
        let wrong = db
            .record_primary(stim_ty, Metadata::by("u"), b"s")
            .expect("ok");
        let mut binding = Binding::new();
        for leaf in flow.leaves() {
            binding.bind(leaf, wrong); // stimulus everywhere: two wrong
        }
        assert!(matches!(
            binding.validate(&flow, &db).unwrap_err(),
            ExecError::History(_)
        ));
    }

    #[test]
    fn interior_node_cannot_be_bound() {
        let (schema, flow, mut db) = setup();
        let perf_node = flow.interior()[0];
        let stim_ty = schema.require("Stimuli").expect("known");
        let inst = db
            .record_primary(stim_ty, Metadata::by("u"), b"s")
            .expect("ok");
        let mut binding = Binding::new();
        for leaf in flow.leaves() {
            let entity = flow.entity_of(leaf).expect("live");
            let i = db
                .record_primary(entity, Metadata::by("u"), b"d")
                .expect("ok");
            binding.bind(leaf, i);
        }
        binding.bind(perf_node, inst);
        assert!(matches!(
            binding.validate(&flow, &db).unwrap_err(),
            ExecError::BoundInteriorNode(_)
        ));
    }

    #[test]
    fn bind_latest_uses_newest_instances() {
        let (schema, flow, mut db) = setup();
        for leaf in flow.leaves() {
            let entity = flow.entity_of(leaf).expect("live");
            db.record_primary(entity, Metadata::by("u"), b"old")
                .expect("ok");
        }
        // A newer stimuli instance.
        let stim_ty = schema.require("Stimuli").expect("known");
        let newest = db
            .record_primary(stim_ty, Metadata::by("u"), b"new")
            .expect("ok");
        let mut binding = Binding::new();
        let unbound = binding.bind_latest(&flow, &db);
        assert!(unbound.is_empty());
        binding.validate(&flow, &db).expect("bound");
        let stim_leaf = flow
            .leaves()
            .into_iter()
            .find(|&l| flow.entity_of(l).expect("live") == stim_ty)
            .expect("stimuli leaf");
        assert_eq!(binding.get(stim_leaf), &[newest]);
    }

    #[test]
    fn bind_latest_reports_unbindable_leaves() {
        let (_, flow, db) = setup();
        let mut binding = Binding::new();
        let unbound = binding.bind_latest(&flow, &db);
        assert_eq!(unbound.len(), 3, "empty database binds nothing");
    }

    #[test]
    fn bind_many_enables_fanout() {
        let mut binding = Binding::new();
        let n = NodeId::from_index(0);
        binding.bind_many(n, &[InstanceId::from_raw(1), InstanceId::from_raw(2)]);
        assert_eq!(binding.get(n).len(), 2);
    }
}
