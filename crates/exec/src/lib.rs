//! Flow execution for the Hercules task manager.
//!
//! This crate turns a validated, fully bound task graph into recorded
//! design history:
//!
//! * [`Encapsulation`] is the tool boundary of §3.3 — tools consume and
//!   produce bytes; multi-function tools, shared encapsulations and
//!   tools-as-data all live here;
//! * [`Binding`] selects database instances for the leaf nodes,
//!   including the multi-instance selections of §4.1 that fan a task
//!   out per instance;
//! * [`Executor`] sequences subtasks automatically from the
//!   dependencies (flow automation), groups shared tool applications
//!   into multi-output subtasks (Fig. 5), optionally runs disjoint
//!   ready subtasks in parallel (Fig. 6), reuses current cached results
//!   (§3.3), and records every product with its immediate derivation;
//! * [`retrace`] recalls the flow behind an instance and re-executes it
//!   against the newest input versions — design-consistency
//!   maintenance;
//! * every tool invocation is *supervised* ([`run_supervised`]): panics
//!   and watchdog-deadline overruns become structured errors, failed
//!   invocations retry per [`RetryPolicy`], and under
//!   [`FailurePolicy::ContinueDisjoint`] a permanent failure only skips
//!   its downstream cone while disjoint branches complete — the
//!   [`fault`] module injects deterministic faults to test all of this.
//!
//! # Examples
//!
//! ```
//! use hercules_exec::{toy, Binding, Executor};
//! use hercules_flow::TaskGraph;
//! use hercules_history::HistoryDb;
//! use hercules_schema::fixtures;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let schema = std::sync::Arc::new(fixtures::fig1());
//! let mut db = HistoryDb::new(schema.clone());
//! toy::seed_everything(&mut db, "setup");
//!
//! // Goal-based: simulate a circuit's performance.
//! let mut flow = TaskGraph::new(schema.clone());
//! let perf = flow.seed(schema.require("Performance")?)?;
//! flow.expand(perf)?;
//! let circuit = flow.data_inputs_of(perf)[0];
//! flow.expand(circuit)?;
//! let netlist = flow.data_inputs_of(circuit)[1];
//! flow.specialize(netlist, schema.require("EditedNetlist")?)?;
//! flow.expand(netlist)?;
//!
//! let mut binding = Binding::new();
//! binding.bind_latest(&flow, &db);
//! let executor = Executor::new(toy::text_registry(&schema));
//! let report = executor.execute(&flow, &binding, &mut db)?;
//! let result = db.data_of(report.single(perf))?.expect("produced");
//! assert_eq!(
//!     String::from_utf8_lossy(result),
//!     "Simulator(Circuit(DeviceModels, CircuitEditor()), Stimuli)"
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binding;
pub mod cluster;
pub mod content_cache;
mod encapsulation;
mod engine;
mod error;
pub mod fault;
mod policy;
mod retrace;
mod supervise;
pub mod trace;

pub mod toy;

pub use binding::Binding;
pub use encapsulation::{
    Encapsulation, EncapsulationRegistry, Invocation, MultiInstanceMode, ToolInput, ToolOutput,
};
pub use engine::{ExecOptions, ExecReport, Executor, SchedulerKind, TaskAction, TaskRecord};
pub use error::ExecError;
pub use fault::{FaultPlan, FaultyEncapsulation};
pub use policy::{FailurePolicy, RetryPolicy};
pub use retrace::{retrace, RetraceReport};
pub use supervise::run_supervised;
pub use trace::{report_to_trace, schedule_to_trace};
