//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` crate with a hand-rolled token parser (the real
//! `syn`/`quote` stack is unavailable offline). Supported input shapes
//! are exactly what this workspace uses:
//!
//! * named-field structs, with the field attributes
//!   `#[serde(default)]` and `#[serde(skip_serializing_if = "path")]`
//!   and the container attributes `#[serde(try_from = "Type")]` /
//!   `#[serde(into = "Type")]`;
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays);
//! * enums with unit, tuple and struct variants (externally tagged,
//!   like real serde).
//!
//! Generics are intentionally unsupported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Container- or field-level `#[serde(...)]` options.
#[derive(Default, Clone)]
struct SerdeOpts {
    default: bool,
    skip_serializing_if: Option<String>,
    try_from: Option<String>,
    into: Option<String>,
}

#[derive(Clone)]
struct Field {
    name: String,
    ty: String,
    opts: SerdeOpts,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
        opts: SerdeOpts,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------
// Token-level parsing.
// ---------------------------------------------------------------------

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes leading attributes, folding `#[serde(...)]` contents into
/// one options struct (doc comments and other attrs are skipped).
fn parse_attrs(tokens: &mut Tokens) -> SerdeOpts {
    let mut opts = SerdeOpts::default();
    while let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() != '#' {
            break;
        }
        tokens.next();
        let Some(TokenTree::Group(group)) = tokens.next() else {
            panic!("expected attribute body after `#`");
        };
        let mut inner = group.stream().into_iter();
        match (inner.next(), inner.next()) {
            (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
                if name.to_string() == "serde" =>
            {
                parse_serde_args(args.stream(), &mut opts);
            }
            _ => {} // doc comments, derives, lint attrs…
        }
    }
    opts
}

/// Parses `default`, `skip_serializing_if = "…"`, `try_from = "…"`,
/// `into = "…"` from one `serde(...)` argument list.
fn parse_serde_args(stream: TokenStream, opts: &mut SerdeOpts) {
    let mut tokens = stream.into_iter().peekable();
    while let Some(token) = tokens.next() {
        let TokenTree::Ident(key) = token else {
            continue;
        };
        let key = key.to_string();
        let mut value = None;
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '=' {
                tokens.next();
                if let Some(TokenTree::Literal(lit)) = tokens.next() {
                    let text = lit.to_string();
                    value = Some(text.trim_matches('"').to_owned());
                }
            }
        }
        match key.as_str() {
            "default" => opts.default = true,
            "skip_serializing_if" => opts.skip_serializing_if = value,
            "try_from" => opts.try_from = value,
            "into" => opts.into = value,
            other => panic!("unsupported serde attribute `{other}` (vendored serde_derive)"),
        }
    }
}

/// Skips `pub` / `pub(crate)` visibility if present.
fn skip_visibility(tokens: &mut Tokens) {
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Collects a type's tokens up to a top-level `,` (respecting `<>`
/// nesting) and renders them back to source text.
fn parse_type(tokens: &mut Tokens) -> String {
    let mut depth = 0i32;
    let mut out = String::new();
    while let Some(token) = tokens.peek() {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => break,
                _ => {}
            }
        }
        out.push_str(&tokens.next().expect("peeked").to_string());
        out.push(' ');
    }
    out
}

/// Parses the named fields of a brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let opts = parse_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            break;
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        let ty = parse_type(&mut tokens);
        fields.push(Field {
            name: name.to_string(),
            ty,
            opts,
        });
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            _ => break,
        }
    }
    fields
}

/// Counts the fields of a tuple group (`(pub(crate) u32, …)`).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        parse_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        parse_type(&mut tokens);
        count += 1;
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            _ => break,
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        parse_attrs(&mut tokens);
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            break;
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantShape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantShape::Tuple(arity)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant {
            name: name.to_string(),
            shape,
        });
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            _ => break,
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    let opts = parse_attrs(&mut tokens);
    skip_visibility(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic types (`{name}`)");
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
                opts,
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            other => panic!("unsupported struct shape for `{name}`: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("expected enum body for `{name}`, got {other:?}"),
        },
        other => panic!("cannot derive for `{other}`"),
    }
}

// ---------------------------------------------------------------------
// Code generation (source text, reparsed into a TokenStream).
// ---------------------------------------------------------------------

fn serialize_named_fields(fields: &[Field], access: &str) -> String {
    let mut body = String::from(
        "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        let push = format!(
            "entries.push((\"{n}\".to_string(), \
             ::serde::Serialize::serialize_value({access}{n})));\n",
            n = f.name,
        );
        match &f.opts.skip_serializing_if {
            Some(path) => {
                body.push_str(&format!(
                    "if !({path})({access}{n}) {{ {push} }}\n",
                    n = f.name,
                ));
            }
            None => body.push_str(&push),
        }
    }
    body.push_str("::serde::Value::Map(entries)\n");
    body
}

fn deserialize_named_fields(fields: &[Field], container: &str, ctor: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        let missing = if f.opts.default {
            "::core::default::Default::default()".to_owned()
        } else {
            format!(
                "return ::core::result::Result::Err(::serde::DeError::custom(\
                 \"missing field `{n}` in `{container}`\"))",
                n = f.name,
            )
        };
        inits.push_str(&format!(
            "{n}: match value.get(\"{n}\") {{\n\
             Some(v) => <{ty} as ::serde::Deserialize>::deserialize_value(v)?,\n\
             None => {missing},\n\
             }},\n",
            n = f.name,
            ty = f.ty,
        ));
    }
    format!(
        "match value {{\n\
         ::serde::Value::Map(_) => ::core::result::Result::Ok({ctor} {{ {inits} }}),\n\
         other => ::core::result::Result::Err(::serde::DeError::custom(format!(\
         \"expected object for `{container}`, found {{}}\", other.kind()))),\n\
         }}"
    )
}

fn generate_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields, opts } => {
            let body = if let Some(into) = &opts.into {
                format!(
                    "let via: {into} = ::core::convert::Into::into(\
                     ::core::clone::Clone::clone(self));\n\
                     ::serde::Serialize::serialize_value(&via)"
                )
            } else {
                serialize_named_fields(fields, "&self.")
            };
            impl_serialize(name, &body)
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::serialize_value(&self.0)".to_owned()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
            };
            impl_serialize(name, &body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::serialize_value(f0))]),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Map(vec![(\
                             \"{vn}\".to_string(), ::serde::Value::Seq(vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", "),
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let inner = serialize_named_fields(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\nlet inner = {{ {inner} }};\n\
                             ::serde::Value::Map(vec![(\"{vn}\".to_string(), inner)])\n}}\n",
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}\n}}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(value: &::serde::Value) \
         -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

fn generate_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields, opts } => {
            let body = if let Some(try_from) = &opts.try_from {
                format!(
                    "let via = <{try_from} as ::serde::Deserialize>::deserialize_value(value)?;\n\
                     ::core::convert::TryFrom::try_from(via)\
                     .map_err(::serde::DeError::custom)"
                )
            } else {
                deserialize_named_fields(fields, name, name)
            };
            impl_deserialize(name, &body)
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!(
                    "::core::result::Result::Ok({name}(\
                     ::serde::Deserialize::deserialize_value(value)?))"
                )
            } else {
                let mut fields = String::new();
                for i in 0..*arity {
                    fields.push_str(&format!(
                        "::serde::Deserialize::deserialize_value(\
                         items.get({i}).ok_or_else(|| ::serde::DeError::custom(\
                         \"tuple struct `{name}` too short\"))?)?,\n"
                    ));
                }
                format!(
                    "match value {{\n\
                     ::serde::Value::Seq(items) => \
                     ::core::result::Result::Ok({name}({fields})),\n\
                     other => ::core::result::Result::Err(::serde::DeError::custom(\
                     format!(\"expected array for `{name}`, found {{}}\", other.kind()))),\n\
                     }}"
                )
            };
            impl_deserialize(name, &body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantShape::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize_value(inner)?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let mut items = String::new();
                        for i in 0..*n {
                            items.push_str(&format!(
                                "::serde::Deserialize::deserialize_value(\
                                 items.get({i}).ok_or_else(|| ::serde::DeError::custom(\
                                 \"variant `{vn}` too short\"))?)?,\n"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => match inner {{\n\
                             ::serde::Value::Seq(items) => \
                             ::core::result::Result::Ok({name}::{vn}({items})),\n\
                             other => ::core::result::Result::Err(::serde::DeError::custom(\
                             format!(\"expected array for variant `{vn}`, found {{}}\", \
                             other.kind()))),\n}},\n"
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let inner_match = deserialize_named_fields(
                            fields,
                            &format!("{name}::{vn}"),
                            &format!("{name}::{vn}"),
                        )
                        .replace("match value {", "match inner {")
                        .replace("value.get(", "inner.get(");
                        tagged_arms.push_str(&format!("\"{vn}\" => {inner_match},\n"));
                    }
                }
            }
            let body = format!(
                "match value {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\n\
                 other => ::core::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{other}}` of `{name}`\"))),\n}},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n{tagged_arms}\n\
                 other => ::core::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{other}}` of `{name}`\"))),\n}}\n}},\n\
                 other => ::core::result::Result::Err(::serde::DeError::custom(\
                 format!(\"expected variant of `{name}`, found {{}}\", other.kind()))),\n\
                 }}"
            );
            impl_deserialize(name, &body)
        }
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}
