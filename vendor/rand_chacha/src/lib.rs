//! Offline stand-in for `rand_chacha`.
//!
//! [`ChaCha8Rng`] and [`ChaCha20Rng`] here are *deterministic seeded
//! generators with the same construction API* as the real crate, not
//! actual ChaCha implementations — the workspace uses them for
//! reproducible simulation, never for cryptography, so a strong 64-bit
//! mixer (xoshiro256**) suffices. Streams are stable per seed across
//! runs and platforms.

use rand::{RngCore, SeedableRng};

/// Deterministic generator standing in for the real ChaCha with 8
/// rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

/// Deterministic generator standing in for the real ChaCha with 20
/// rounds.
#[derive(Debug, Clone)]
pub struct ChaCha20Rng {
    s: [u64; 4],
}

fn seed_state(seed: u64) -> [u64; 4] {
    // Expand the seed through SplitMix64, per xoshiro seeding guidance.
    let mut sm = seed;
    let mut next = || {
        sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = sm;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    [next(), next(), next(), next()]
}

fn xoshiro_next(s: &mut [u64; 4]) -> u64 {
    let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
    let t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = s[3].rotate_left(45);
    result
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng {
            s: seed_state(seed),
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        xoshiro_next(&mut self.s)
    }
}

impl SeedableRng for ChaCha20Rng {
    fn seed_from_u64(seed: u64) -> ChaCha20Rng {
        ChaCha20Rng {
            // Distinct stream from ChaCha8Rng for the same seed.
            s: seed_state(seed ^ 0x5DEE_CE66_D201_3E05),
        }
    }
}

impl RngCore for ChaCha20Rng {
    fn next_u64(&mut self) -> u64 {
        xoshiro_next(&mut self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha20Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn rng_trait_methods_work() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let x: f64 = rng.random();
        assert!((0.0..1.0).contains(&x));
        let _: bool = rng.random();
    }
}
