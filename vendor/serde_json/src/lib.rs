//! Offline stand-in for `serde_json`: a complete JSON printer/parser
//! over the vendored `serde` crate's [`Value`] tree.
//!
//! Supports the workspace's usage surface: [`to_string`],
//! [`to_string_pretty`], [`to_vec`], [`from_str`], [`from_slice`] and
//! the [`Error`] type.

use serde::{Deserialize, Serialize, Value};

/// A serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.message)
    }
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Infallible for tree-shaped values; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON text (two-space indent).
///
/// # Errors
///
/// Infallible for tree-shaped values.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Serializes a value to JSON bytes.
///
/// # Errors
///
/// Infallible for tree-shaped values.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::deserialize_value(&value).map_err(Error::from)
}

/// Parses a value from JSON bytes.
///
/// # Errors
///
/// Invalid UTF-8, malformed JSON, or a shape mismatch with `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

// ---------------------------------------------------------------------
// Printer.
// ---------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Like serde_json: always distinguishable from integers.
                let text = format!("{x}");
                out.push_str(&text);
                if !text.contains('.') && !text.contains('e') && !text.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else {
            match text.parse::<u64>() {
                Ok(n) if n <= i64::MAX as u64 => Ok(Value::Int(n as i64)),
                Ok(n) => Ok(Value::UInt(n)),
                Err(_) => Err(Error::new(format!("bad number `{text}`"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<u64> = vec![1, 2, 3];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,2,3]");
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, v);

        let s = "quote \" backslash \\ newline \n unicode é".to_owned();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parses_nested_json() {
        let v: Vec<(String, Option<f64>)> = from_str(r#"[["pi", 3.25], ["none", null]]"#).unwrap();
        assert_eq!(v[0].1, Some(3.25));
        assert_eq!(v[1].1, None);
    }

    #[test]
    fn pretty_print_is_reparseable() {
        let v: Vec<Vec<u8>> = vec![vec![1], vec![], vec![2, 3]];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Vec<Vec<u8>> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("12x").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<bool>("maybe").is_err());
    }
}
