//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! Provides [`RngCore`], [`Rng`] (with `random`, `random_range`,
//! `random_bool`), [`SeedableRng`] and [`seq::IndexedRandom`] — enough
//! for the workspace's deterministic seeded generators. Statistical
//! quality is "good enough for simulation", not cryptographic.

/// The core source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable by [`Rng::random`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Samples one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-samplable type.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Slice sampling helpers.
pub mod seq {
    use super::RngCore;

    /// Random selection from slices.
    pub trait IndexedRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[idx])
            }
        }
    }
}

/// A small default generator (SplitMix64), used by the vendored
/// `rand_chacha` and available directly for tests.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng { state: seed }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64: solid 64-bit mixing, trivially seedable.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::seq::IndexedRandom as _;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_and_floats_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let n = rng.random_range(3usize..17);
            assert!((3..17).contains(&n));
        }
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = SmallRng::seed_from_u64(1);
        let pool = [10, 20, 30];
        for _ in 0..50 {
            assert!(pool.contains(pool.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
