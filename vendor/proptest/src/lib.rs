//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`, [`prop_oneof!`], integer-range and
//! tuple strategies, `prop::collection::{vec, btree_set}`,
//! `prop::option::of`, `prop::bool::ANY`, and the `prop_assert*` /
//! `prop_assume!` macros. Cases are generated from a generator seeded
//! by the test name, so runs are fully deterministic; failing inputs
//! are reported but **not shrunk**.

use std::fmt;

/// Deterministic case generator (SplitMix64 seeded from the test
/// name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator whose stream is a pure function of `name`.
    pub fn new(name: &str) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniform in `[0, bound)`; `bound` must be > 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A failed or rejected test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration, honoured by the [`proptest!`] macro.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
///
/// Object safe: `prop_oneof!` and `prop::collection` box strategies as
/// `Box<dyn Strategy<Value = T>>`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Boxes a strategy; used by [`prop_oneof!`] so type inference can
/// unify the variants' value types.
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives, built by
/// [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over non-empty `options`.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::collections::BTreeSet;
        use std::ops::Range;

        /// Strategy for vectors with length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Generates `Vec`s of `element` values, sized within `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for ordered sets with size drawn from `size`.
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generates `BTreeSet`s of `element` values, sized within
        /// `size` when the element domain allows it.
        pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            assert!(size.start < size.end, "empty size range");
            BTreeSetStrategy { element, size }
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let span = (self.size.end - self.size.start) as u64;
                let target = self.size.start + rng.below(span) as usize;
                let mut set = BTreeSet::new();
                // Duplicates shrink the set below target; bound the
                // attempts so narrow domains still terminate.
                for _ in 0..target.saturating_mul(4) {
                    if set.len() >= target {
                        break;
                    }
                    set.insert(self.element.generate(rng));
                }
                set
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy yielding `None` about a quarter of the time.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// Wraps `inner`'s values in `Option`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Uniform boolean strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniformly random booleans.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Skips the current case when the assumption does not hold.
///
/// The stub counts skipped cases as passes instead of re-drawing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strategy)),+])
    };
}

/// Defines deterministic property tests.
///
/// Supports the form used in this workspace: an optional
/// `#![proptest_config(..)]` header followed by `#[test]` functions
/// whose arguments are `ident in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::TestRng::new(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_each! { ($config) $($rest)* }
    };
    (($config:expr)) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::new("x");
        let mut b = crate::TestRng::new("x");
        let mut c = crate::TestRng::new("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u8..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0u32..8, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for x in &v {
                prop_assert!(*x < 8);
            }
        }

        #[test]
        fn oneof_and_map_compose(op in prop_oneof![
            (0usize..4).prop_map(|n| n * 2),
            (0usize..4).prop_map(|n| n * 2 + 1),
        ]) {
            prop_assert!(op < 8);
        }

        #[test]
        fn options_and_sets_generate(
            o in prop::option::of(0u64..10),
            s in prop::collection::btree_set(0u32..8, 0..8),
            b in prop::bool::ANY,
        ) {
            if let Some(x) = o {
                prop_assert!(x < 10);
            }
            prop_assert!(s.len() < 8);
            prop_assume!(b || s.len() < 8);
            prop_assert_eq!(s.iter().filter(|&&x| x < 8).count(), s.len());
            prop_assert_ne!(10u64, 11u64);
        }
    }
}
