//! Offline stand-in for the `serde` crate.
//!
//! The build container has no network access, so the workspace vendors a
//! minimal serialization framework under the same crate name. It keeps
//! the *surface* the workspace actually uses — `#[derive(Serialize,
//! Deserialize)]` with the `default`, `skip_serializing_if`, `try_from`
//! and `into` attributes — but simplifies the data model: values
//! serialize into an owned JSON-like [`value::Value`] tree instead of
//! driving a streaming `Serializer`. `serde_json` (also vendored)
//! renders and parses that tree.

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The JSON-like value tree all (de)serialization goes through.
pub mod value {
    /// An owned, JSON-shaped value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// JSON `null`.
        Null,
        /// JSON boolean.
        Bool(bool),
        /// Signed integer.
        Int(i64),
        /// Unsigned integer too large for `i64`.
        UInt(u64),
        /// Floating-point number.
        Float(f64),
        /// String.
        Str(String),
        /// Array.
        Seq(Vec<Value>),
        /// Object, in insertion order.
        Map(Vec<(String, Value)>),
    }

    impl Value {
        /// Looks up a key in a map value.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// A short name for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::Int(_) | Value::UInt(_) => "integer",
                Value::Float(_) => "number",
                Value::Str(_) => "string",
                Value::Seq(_) => "array",
                Value::Map(_) => "object",
            }
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    /// Human-readable reason.
    pub message: String,
}

impl DeError {
    /// Creates an error with a message.
    pub fn custom(message: impl std::fmt::Display) -> DeError {
        DeError {
            message: message.to_string(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

fn expected(what: &str, got: &Value) -> DeError {
    DeError::custom(format!("expected {what}, found {}", got.kind()))
}

/// A type that can render itself into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn serialize_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on shape or type mismatches.
    fn deserialize_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------

// `Value` round-trips through itself, so callers can deserialize
// arbitrary JSON (`serde_json::from_str::<Value>`) the way real
// serde_json's `Value` allows — the telemetry postmortem reader uses
// this to validate records without a fixed schema.
impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom("integer out of range")),
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom("integer out of range")),
                    other => Err(expected("integer", other)),
                }
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Int(n) if *n >= 0 => <$t>::try_from(*n as u64)
                        .map_err(|_| DeError::custom("integer out of range")),
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom("integer out of range")),
                    other => Err(expected("unsigned integer", other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            other => Err(expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        f64::deserialize_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(expected("single-character string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        T::deserialize_value(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            $name::deserialize_value(
                                it.next().ok_or_else(|| {
                                    DeError::custom("tuple too short")
                                })?,
                            )?,
                        )+);
                        if it.next().is_some() {
                            return Err(DeError::custom("tuple too long"));
                        }
                        Ok(out)
                    }
                    other => Err(expected("array", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys: JSON objects only have string keys, so integer keys render
/// through their decimal form (the behaviour of real `serde_json`).
pub trait MapKey: Sized {
    /// Renders the key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the text does not parse.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse()
                    .map_err(|_| DeError::custom("invalid integer map key"))
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.serialize_value()))
            .collect();
        // Deterministic output regardless of hash order.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize_value(v)?)))
                .collect(),
            other => Err(expected("object", other)),
        }
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize_value(v)?)))
                .collect(),
            other => Err(expected("object", other)),
        }
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(expected("array", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(42u64.serialize_value(), Value::UInt(42));
        assert_eq!(u64::deserialize_value(&Value::UInt(42)).unwrap(), 42);
        assert_eq!(
            Option::<String>::deserialize_value(&Value::Null).unwrap(),
            None
        );
        let v = vec![1u32, 2, 3];
        assert_eq!(
            Vec::<u32>::deserialize_value(&v.serialize_value()).unwrap(),
            v
        );
    }

    #[test]
    fn integer_map_keys_stringify() {
        let mut m: HashMap<u64, (Vec<u8>, usize)> = HashMap::new();
        m.insert(7, (vec![1, 2], 3));
        let v = m.serialize_value();
        assert!(v.get("7").is_some());
        let back = HashMap::<u64, (Vec<u8>, usize)>::deserialize_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
