//! Offline stand-in for the `criterion` crate.
//!
//! Runs each benchmark for a bounded number of samples, measures
//! wall-clock time with `std::time::Instant`, and prints a mean/min/max
//! summary. No statistical analysis, plots, or baseline storage — just
//! enough to keep `cargo bench` (and `cargo test --benches`) working
//! offline with the criterion 0.3 API this workspace uses.

use std::fmt;
use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost; accepted for API
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Identifier for one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id like `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; drives the measured iterations.
pub struct Bencher {
    samples: usize,
    /// Accumulated per-sample durations for the summary line.
    timings: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            timings: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.timings.push(start.elapsed());
            drop(out);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.timings.push(start.elapsed());
            drop(out);
        }
    }
}

fn summarize(label: &str, timings: &[Duration]) {
    if timings.is_empty() {
        println!("bench {label}: no samples");
        return;
    }
    let total: Duration = timings.iter().sum();
    let mean = total / timings.len() as u32;
    let min = timings.iter().min().expect("non-empty");
    let max = timings.iter().max().expect("non-empty");
    println!(
        "bench {label}: mean {mean:?} min {min:?} max {max:?} ({} samples)",
        timings.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    criterion: &'c Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Accepted for parity; the stub does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for parity; the stub measures a fixed sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs a benchmark identified by `id` over a borrowed `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.samples());
        f(&mut bencher, input);
        summarize(&format!("{}/{}", self.name, id), &bencher.timings);
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.samples());
        f(&mut bencher);
        summarize(&format!("{}/{}", self.name, name), &bencher.timings);
    }

    /// Ends the group. No-op beyond parity with criterion.
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for parity; the stub does not warm up.
    pub fn warm_up_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Accepted for parity; the stub measures a fixed sample count.
    pub fn measurement_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        summarize(&name.to_string(), &bencher.timings);
    }
}

/// Reads a value, hiding it from the optimiser as well as safe code
/// can.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sized", 8), &8u64, |b, &n| {
            b.iter_batched(
                || vec![1u64; n as usize],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn harness_runs_benchmarks() {
        let mut criterion = Criterion::default().sample_size(3);
        sample_bench(&mut criterion);
        criterion.bench_function("plain", |b| b.iter(|| black_box(21) * 2));
    }
}
