//! Fig. 9: the Hercules user interface, scripted.
//!
//! The same text interface serves all four design approaches; this
//! example drives a goal-based session through the command loop and
//! prints the transcript — catalogs, expansion menu, instance browser,
//! execution and history.
//!
//! ```sh
//! cargo run --example interactive_session
//! ```

use hercules::ui::Ui;
use hercules::Session;

fn main() -> Result<(), hercules::HerculesError> {
    let mut ui = Ui::new(Session::odyssey("sutton"));

    // The scripted session. Each line is exactly what a user would
    // type; `show` renders the Fig. 9 task window.
    let script = "\
        catalogs\n\
        goal Performance\n\
        expand n0\n\
        expand n2\n\
        specialize n5 EditedNetlist\n\
        expand n5\n\
        expand n4\n\
        browse n6\n\
        show\n";
    print!("{}", ui.run_script(script)?);

    // Pick the operational-amplifier editor script from the browser by
    // name (the inverse-video selection of Fig. 9).
    let browse = ui.execute("browse n6")?;
    let id = browse
        .lines()
        .find(|l| l.contains("Operational Amplifier"))
        .and_then(|l| l.trim().split('\u{201c}').next())
        .map(str::trim)
        .expect("seeded script");
    print!("{}", ui.execute(&format!("select n6 {id}"))?);

    // The op-amp needs its own stimuli; switch the default selection.
    let session = ui.session_mut();
    let schema = session.schema().clone();
    let stimuli_entity = schema.require("Stimuli")?;
    let mut opamp_stimuli = hercules::eda::Stimuli::new("diff step");
    opamp_stimuli.set(0, "plus", hercules::eda::Logic::Zero);
    opamp_stimuli.set(0, "minus", hercules::eda::Logic::Zero);
    opamp_stimuli.set(25, "plus", hercules::eda::Logic::One);
    let inst = session.db_mut().record_primary(
        stimuli_entity,
        hercules::history::Metadata::by("sutton").named("diff step"),
        &opamp_stimuli.to_bytes(),
    )?;
    print!("{}", ui.execute(&format!("select n3 i{}", inst.raw()))?);

    print!("{}", ui.execute("bind-latest")?);
    print!("{}", ui.execute("show")?);
    print!("{}", ui.execute("run")?);

    // History of the produced performance, through the same UI.
    let report = ui.session().last_report().expect("ran").clone();
    let perf = report.single(hercules::flow::NodeId::from_index(0));
    print!("{}", ui.execute(&format!("history i{}", perf.raw()))?);

    // Store the flow for the next designer (plan-based approach).
    print!("{}", ui.execute("store simulate-opamp")?);
    print!("{}", ui.execute("clear")?);
    print!("{}", ui.execute("plan simulate-opamp")?);
    Ok(())
}
