//! Figs. 7–8: view management as flows.
//!
//! The three views of a cell (logic, transistor, physical) are related
//! by flows: a synthesis flow produces the physical view from the
//! netlist, a verification flow checks their correspondence by
//! extraction and LVS comparison.
//!
//! ```sh
//! cargo run --example view_management
//! ```

use hercules::{eda, history::Derivation, history::Metadata, views, Session};

fn main() -> Result<(), hercules::HerculesError> {
    // Fig. 7: the three views of an inverter cell.
    let inverter = eda::inverter_views();
    println!("== Fig. 7: three views of the inverter ==");
    println!("logic view     : {}", inverter.logic);
    println!("transistor view: {}", inverter.transistor);
    println!(
        "physical view  : {} cell(s), area {}\n",
        inverter.physical.cells.len(),
        inverter.physical.area()
    );

    // Record the full adder as the design to manage.
    let mut session = Session::odyssey("jbb");
    let schema = session.schema().clone();
    let editor_inst = session.db().instances_of(schema.require("CircuitEditor")?)[0];
    let netlist = session.db_mut().record_derived(
        schema.require("EditedNetlist")?,
        Metadata::by("jbb").named("full adder (transistor view)"),
        &eda::cells::full_adder().to_bytes(),
        Derivation::by_tool(editor_inst, []),
    )?;

    // Fig. 8a: synthesize the physical view.
    let layout = views::synthesize_physical(&mut session, netlist)?;
    let bytes = session.db().data_of(layout)?.expect("produced");
    let decoded = eda::Layout::from_bytes(bytes)?;
    println!("== Fig. 8a: synthesis flow ==");
    println!(
        "physical view {layout}: {} cells, area {}, wire length {}\n",
        decoded.cells.len(),
        decoded.area(),
        decoded.total_wire_length()
    );

    // Fig. 8b: verify the correspondence.
    let report = views::verify_views(&mut session, netlist, layout)?;
    println!("== Fig. 8b: verification flow ==");
    println!(
        "{} — {}",
        session.db().instance(report.verification)?.meta().name,
        if report.report.matched {
            "views correspond"
        } else {
            "views diverge!"
        }
    );

    // Tamper with the layout and watch verification fail.
    let mut broken = decoded.clone();
    broken.cells[0].kind = eda::GateKind::Nor;
    let placer_inst = session.db().instances_of(schema.require("Placer")?)[0];
    let tampered = session.db_mut().record_derived(
        schema.require("Layout")?,
        Metadata::by("jbb").named("hand-hacked layout"),
        &broken.to_bytes(),
        Derivation::by_tool(placer_inst, [netlist]),
    )?;
    let report = views::verify_views(&mut session, netlist, tampered)?;
    println!("\n== tampered layout ==");
    println!(
        "matched: {} ({} mismatch(es))",
        report.report.matched,
        report.report.mismatches.len()
    );
    for m in report.report.mismatches.iter().take(3) {
        println!("  {}", m.description);
    }
    Ok(())
}
