//! Crash-safe durable workspace: journaled persistence, torn-write
//! recovery, and resuming an interrupted flow run.
//!
//! A designer saves their session to a workspace directory, builds and
//! partially runs the Fig. 6 verification flow (the placer crashes,
//! the disjoint editor branch commits), and then the process "dies" —
//! tearing the journal mid-frame for good measure. A fresh process
//! reopens the workspace, recovers everything acknowledged before the
//! crash, and `resume` finishes the flow re-running only the failed
//! subtasks, with the committed branch served from the design history.
//!
//! ```sh
//! cargo run --release --example durable_session
//! ```

use std::fs::OpenOptions;
use std::io::Write as _;

use hercules::exec::{FailurePolicy, FaultPlan, FaultyEncapsulation};
use hercules::history::{Derivation, Metadata};
use hercules::ui::Ui;
use hercules::{eda, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("hercules-durable-demo-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();

    // ------------------------------------------------------------------
    // Act 1: a journaled session, interrupted.
    // ------------------------------------------------------------------
    let mut session = Session::odyssey("jbb");
    session.executor_mut().options_mut().failure = FailurePolicy::ContinueDisjoint;

    // Sabotage the placer so the run fails partially, and seed a
    // netlist for the flow to consume.
    let schema = session.schema().clone();
    let placer = schema.require("Placer")?;
    let real = session
        .executor_mut()
        .registry()
        .lookup(&schema, placer)
        .expect("placer registered")
        .clone();
    session.executor_mut().registry_mut().register(
        placer,
        FaultyEncapsulation::wrap(real, FaultPlan::AlwaysPanic),
    );
    let editor = schema.require("CircuitEditor")?;
    let edited = schema.require("EditedNetlist")?;
    let editor_tool = session.db().instances_of(editor)[0];
    let cell = eda::cells::full_adder();
    let seeded = session.db_mut().record_derived(
        edited,
        Metadata::by("jbb").named(&cell.name),
        &cell.to_bytes(),
        Derivation::by_tool(editor_tool, []),
    )?;

    let mut ui = Ui::new(session);
    println!("{}", ui.execute(&format!("save {}", root.display()))?);
    let script = format!(
        "goal Verification\n\
         expand n0\n\
         specialize n2 EditedNetlist\n\
         expand n2\n\
         expand n3\n\
         expand n6\n\
         select n8 i{}\n\
         bind-latest\n\
         run\n",
        seeded.raw()
    );
    println!("{}", ui.run_script(&script)?);
    drop(ui); // the process dies here

    // A torn write: the crash happened mid-append, leaving half a
    // frame at the journal's tail.
    let journal = root.join("journal-0.log");
    let mut f = OpenOptions::new().append(true).open(&journal)?;
    f.write_all(&[0x2a, 0x00, 0x00, 0x00, 0xde, 0xad])?;
    drop(f);
    println!("-- crash: journal torn mid-frame --\n");

    // ------------------------------------------------------------------
    // Act 2: recovery and resume in a fresh process.
    // ------------------------------------------------------------------
    let mut ui = Ui::new(Session::odyssey("jbb"));
    println!("{}", ui.execute(&format!("open {}", root.display()))?);
    println!("{}", ui.execute("log")?);
    println!("{}", ui.execute("resume")?);
    println!("{}", ui.execute("checkpoint")?);
    println!("{}", ui.execute("show")?);

    std::fs::remove_dir_all(&root).ok();
    Ok(())
}
