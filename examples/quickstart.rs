//! Quickstart: the paper's core loop in one sitting.
//!
//! Build a simulate task goal-first (Fig. 3 style), run it against the
//! simulated tools, then browse the design history it recorded
//! (Fig. 10 style).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hercules::{ui::render_task_window, Session};

fn main() -> Result<(), hercules::HerculesError> {
    // The standard Odyssey environment: Fig. 1 + Fig. 2 schema,
    // simulated tools, seeded library.
    let mut session = Session::odyssey("jbb");
    println!("== schema ==");
    println!(
        "{}",
        hercules::schema::render::to_text(session.schema())
            .lines()
            .take(12)
            .collect::<Vec<_>>()
            .join("\n")
    );
    println!("   … ({} entities)\n", session.schema().len());

    // Goal-based approach: "I want a Performance."
    let perf = session.start_from_goal("Performance")?;
    let created = session.expand(perf)?; // simulator, circuit, stimuli
    let circuit = created[1];
    let created = session.expand(circuit)?; // device models, netlist
    let netlist = created[1];
    session.specialize(netlist, "EditedNetlist")?;
    session.expand(netlist)?; // circuit editor

    // The flow in the paper's own notation (footnote 2).
    let flow = session.flow()?;
    println!("== the dynamically defined flow ==");
    println!(
        "task-graph form : {}",
        hercules::flow::render::to_sexpr(flow, perf)?
    );
    println!(
        "flowmap form    : {}\n",
        hercules::flow::render::to_call(flow, perf)?
    );

    // Browse the editor scripts and pick the full adder.
    let editor_node = session.flow()?.tool_of(netlist).expect("expanded");
    let script = session
        .browse(editor_node)?
        .into_iter()
        .find(|&i| {
            session
                .db()
                .instance(i)
                .map(|x| x.meta().name.contains("Full adder"))
                .unwrap_or(false)
        })
        .expect("seeded full-adder script");
    session.select(editor_node, script);
    session.bind_latest()?;

    println!("== task window (Fig. 9) ==");
    println!("{}", render_task_window(&session));

    // Run: automatic task sequencing executes editor → compose →
    // simulate.
    let report = session.run()?.clone();
    println!(
        "executed {} subtasks ({} tool invocations)\n",
        report.tasks.len(),
        report.runs()
    );

    // Decode the real performance artifact.
    let perf_instance = report.single(perf);
    let bytes = session.db().data_of(perf_instance)?.expect("produced");
    let decoded = hercules::eda::Performance::from_bytes(bytes)?;
    println!("== performance ==");
    println!(
        "circuit {} / stimuli {}: delay {:.1}, {} transitions, power {:.0}\n",
        decoded.circuit, decoded.stimuli, decoded.delay, decoded.transitions, decoded.power
    );

    // Fig. 10: the History menu — immediate tool and data.
    let history = session.history_of(perf_instance, Some(1))?;
    println!("== history of the performance (Fig. 10) ==");
    if let Some(tool) = history.tool {
        let name = session.db().instance(tool)?.meta().name.clone();
        println!("f← {name}");
    }
    for input in &history.inputs {
        let name = session.db().instance(input.instance)?.meta().name.clone();
        let entity = session.db().instance(input.instance)?.entity();
        println!(
            "d← {} ({})",
            if name.is_empty() {
                input.instance.to_string()
            } else {
                name
            },
            session.schema().entity(entity).name()
        );
    }
    Ok(())
}
