//! §3.3: design-consistency maintenance through the design history.
//!
//! Place and extract a circuit, then re-edit the source netlist: the
//! history detects the out-of-date layout, and an automatic retrace
//! recomputes exactly the affected tasks against the new version.
//!
//! ```sh
//! cargo run --example consistency
//! ```

use hercules::{eda, history::Derivation, history::Metadata, Session};

fn main() -> Result<(), hercules::HerculesError> {
    let mut session = Session::odyssey("jbb");
    let schema = session.schema().clone();
    let editor_inst = session.db().instances_of(schema.require("CircuitEditor")?)[0];

    // Version 1 of the design.
    let v1 = session.db_mut().record_derived(
        schema.require("EditedNetlist")?,
        Metadata::by("jbb").named("adder v1"),
        &eda::cells::ripple_adder(2).to_bytes(),
        Derivation::by_tool(editor_inst, []),
    )?;

    // Extraction flow: ExtractedNetlist <- Extractor <- Layout <-
    // Placer <- netlist.
    let ext = session.start_from_goal("ExtractedNetlist")?;
    let created = session.expand(ext)?;
    let layout_node = created[1];
    let created = session.expand(layout_node)?;
    session.select(created[1], v1);
    session.bind_latest()?;
    session.run()?;
    let report = session.last_report().expect("ran").clone();
    let layout = report.single(layout_node);
    let extracted = report.single(ext);
    println!("extracted {extracted} from layout {layout} (netlist v1)");
    println!(
        "everything current? {}\n",
        session.db().stale_instances()?.is_empty()
    );

    // The designer edits the netlist: version 2 (a 4-bit adder now).
    let v2 = session.db_mut().record_derived(
        schema.require("EditedNetlist")?,
        Metadata::by("jbb").named("adder v2"),
        &eda::cells::ripple_adder(4).to_bytes(),
        Derivation::by_tool(editor_inst, [v1]),
    )?;
    println!("edited the netlist: v2 = {v2}");
    for stale in session.db().stale_instances()? {
        let name = session.db().instance(stale.instance)?.meta().name.clone();
        println!(
            "  stale: {} {:?} (input {} superseded by {})",
            stale.instance, name, stale.outdated_input, stale.newer_version
        );
    }

    // Automatic retrace: only the affected tasks re-run.
    let retrace = session.retrace(extracted)?;
    println!(
        "\nretrace: {} invocation(s), {} cache hit(s), current again: {}",
        retrace.report.runs(),
        retrace.report.cache_hits(),
        !retrace.already_current
    );
    let new_extracted = retrace.goal_instances[0];
    let bytes = session.db().data_of(new_extracted)?.expect("produced");
    let decoded = eda::ExtractedNetlist::from_bytes(bytes)?;
    println!(
        "new extraction {new_extracted}: {} gates (v2 has more than v1's {})",
        decoded.netlist.gate_count(),
        eda::cells::ripple_adder(2).gate_count()
    );

    // Retracing again is a pure cache hit.
    let again = session.retrace(new_extracted)?;
    println!(
        "retrace again: already current = {}, {} invocation(s)",
        again.already_current,
        again.report.runs()
    );
    Ok(())
}
