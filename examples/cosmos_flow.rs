//! Fig. 2: a tool created during the design.
//!
//! The simulator compiler turns a netlist into a compiled switch-level
//! simulator — a design object that is itself a tool — which then runs
//! several stimulus sets. The example also shows why compiling is worth
//! it: the compiled program is reused across runs while the uncompiled
//! baseline re-derives everything per run.
//!
//! ```sh
//! cargo run --example cosmos_flow
//! ```

use std::time::Instant;

use hercules::{eda, history::Derivation, history::Metadata, Session};

fn main() -> Result<(), hercules::HerculesError> {
    let mut session = Session::odyssey("jbb");
    let schema = session.schema().clone();

    // Record the design to simulate.
    let editor = schema.require("CircuitEditor")?;
    let edited = schema.require("EditedNetlist")?;
    let editor_inst = session.db().instances_of(editor)[0];
    let netlist = session.db_mut().record_derived(
        edited,
        Metadata::by("jbb").named("8-bit adder"),
        &eda::cells::ripple_adder(8).to_bytes(),
        Derivation::by_tool(editor_inst, []),
    )?;

    // Flow 1: CompiledSimulator <- SimulatorCompiler <- Netlist.
    let compiled_node = session.start_from_goal("CompiledSimulator")?;
    let created = session.expand(compiled_node)?;
    session.select(created[1], netlist);
    session.bind_latest()?;
    let compile_start = Instant::now();
    session.run()?;
    let compile_time = compile_start.elapsed();
    let compiled = session.last_report().expect("ran").single(compiled_node);
    println!(
        "compiled simulator instance {compiled} in {compile_time:?} — a tool with a derivation:"
    );
    let d = session
        .db()
        .instance(compiled)?
        .derivation()
        .expect("created during the design")
        .clone();
    println!("  f← {:?}  d← {:?}\n", d.tool, d.inputs);

    // Record a batch of stimulus sets.
    let inputs: Vec<String> = (0..8)
        .flat_map(|i| [format!("a{i}"), format!("b{i}")])
        .chain(["cin".to_owned()])
        .collect();
    let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
    let stimuli_entity = schema.require("Stimuli")?;
    let mut selections = Vec::new();
    for seed in 0..5u64 {
        let s = eda::Stimuli::random(&input_refs, 32, 10, seed);
        selections.push(session.db_mut().record_primary(
            stimuli_entity,
            Metadata::by("jbb").named(&format!("random batch {seed}")),
            &s.to_bytes(),
        )?);
    }

    // Flow 2: SwitchSimulation <- CompiledSimulator <- Stimuli, fanned
    // out over all five stimulus sets with one multi-select (§4.1).
    session.clear_flow();
    let sim_node = session.start_from_goal("SwitchSimulation")?;
    let created = session.expand(sim_node)?;
    session.select(created[0], compiled);
    session.select_many(created[1], &selections);
    let run_start = Instant::now();
    session.run()?;
    let run_time = run_start.elapsed();
    let report = session.last_report().expect("ran").clone();
    println!(
        "ran the compiled simulator {} times in {run_time:?} (compile once, run many)",
        report.runs()
    );
    for &inst in report.instances_of(sim_node) {
        let bytes = session.db().data_of(inst)?.expect("produced");
        let sim = eda::SwitchSimulation::from_bytes(bytes)?;
        println!(
            "  {} on {:<16} — {} vectors, {} relaxation iterations",
            inst, sim.stimuli, sim.vectors, sim.iterations
        );
    }

    // Baseline: the uncompiled path re-derives the channel structure
    // for every stimulus set.
    let netlist_bytes = session.db().data_of(netlist)?.expect("present").to_vec();
    let gate_netlist = eda::Netlist::from_bytes(&netlist_bytes)?;
    let xtors = eda::to_transistor_level(&gate_netlist)?;
    let interp_start = Instant::now();
    for seed in 0..5u64 {
        let s = eda::Stimuli::random(&input_refs, 32, 10, seed);
        eda::cosmos::interpret(&xtors, &s)?;
    }
    println!(
        "\nuncompiled baseline (recompile per run): {:?}",
        interp_start.elapsed()
    );
    println!("(see the fig02 bench for the measured crossover)");
    Ok(())
}
