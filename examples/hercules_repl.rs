//! An interactive Hercules shell.
//!
//! Reads Fig. 9 commands from stdin (`goal`, `expand`, `specialize`,
//! `browse`, `select`, `bind-latest`, `run`, `history`, `uses`,
//! `store`, `plan`, `show`, `catalogs`, `clear`, plus the durable
//! workspace commands `save <dir>`, `open <dir>`, `checkpoint`, and
//! `resume`, and the static analyzer as `lint`); when stdin is closed
//! or empty a short demo script runs instead.
//!
//! ```sh
//! cargo run --example hercules_repl            # demo script
//! cargo run --example hercules_repl -- -i      # interactive (pipe commands)
//! ```

use std::io::BufRead as _;

use hercules::ui::Ui;
use hercules::Session;
use hercules_analyze::{lint_session, Diagnostics};

const DEMO: &str = "\
catalogs
goal Performance
expand n0
expand n2
specialize n5 EditedNetlist
expand n5
expand n4
browse n6
select n6 i12
bind-latest
show
lint
run
lint
";

/// Handles one command line: `lint` runs `herclint`'s session passes
/// over the live session; everything else goes to the Fig. 9 parser.
fn dispatch(ui: &mut Ui, line: &str) -> Result<String, hercules::HerculesError> {
    if line == "lint" {
        let mut out = Diagnostics::new();
        lint_session(ui.session(), &mut out);
        out.sort();
        if out.is_empty() {
            return Ok(String::from("lint: clean\n"));
        }
        return Ok(out.render_text());
    }
    ui.execute(line)
}

fn main() {
    let interactive = std::env::args().any(|a| a == "-i" || a == "--interactive");
    let mut ui = Ui::new(Session::odyssey("designer"));

    if !interactive {
        println!("(running the demo script; pass -i and pipe commands for interactive use)\n");
        for line in DEMO.lines() {
            println!("> {line}");
            match dispatch(&mut ui, line) {
                Ok(out) => print!("{out}"),
                Err(e) => {
                    eprintln!("demo failed: {e}");
                    return;
                }
            }
        }
        return;
    }

    println!("Hercules task manager — type commands, ctrl-d to exit.");
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        match dispatch(&mut ui, line) {
            Ok(out) => print!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
