//! An interactive Hercules shell.
//!
//! Reads Fig. 9 commands from stdin (`goal`, `expand`, `specialize`,
//! `browse`, `select`, `bind-latest`, `run`, `history`, `uses`,
//! `store`, `plan`, `show`, `catalogs`, `clear`, plus the durable
//! workspace commands `save <dir>`, `open <dir>`, `checkpoint`, and
//! `resume`, and the static analyzer as `lint`); when stdin is closed
//! or empty a short demo script runs instead.
//!
//! ```sh
//! cargo run --example hercules_repl            # demo script
//! cargo run --example hercules_repl -- -i      # interactive (pipe commands)
//! ```

use std::io::BufRead as _;

use hercules::ui::Ui;
use hercules::Session;

const DEMO: &str = "\
catalogs
goal Performance
expand n0
expand n2
specialize n5 EditedNetlist
expand n5
expand n4
browse n6
select n6 i12
bind-latest
show
lint
run
lint
";

fn main() {
    let interactive = std::env::args().any(|a| a == "-i" || a == "--interactive");
    let mut ui = Ui::new(Session::odyssey("designer"));

    if !interactive {
        println!("(running the demo script; pass -i and pipe commands for interactive use)\n");
        for line in DEMO.lines() {
            println!("> {line}");
            match ui.execute(line) {
                Ok(out) => print!("{out}"),
                Err(e) => {
                    eprintln!("demo failed: {e}");
                    return;
                }
            }
        }
        return;
    }

    println!("Hercules task manager — type commands, ctrl-d to exit.");
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        match ui.execute(line) {
            Ok(out) => print!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
