//! Fig. 6: disjoint branches execute in parallel.
//!
//! The verification flow has two independent input branches (the edited
//! netlist and the extraction chain); with parallel execution enabled
//! the engine runs ready subtasks of a wave on separate threads.
//!
//! ```sh
//! cargo run --release --example parallel_branches
//! ```

use std::time::{Duration, Instant};

use hercules::exec::{toy, Binding, Executor, MultiInstanceMode};
use hercules::flow::fixtures;
use hercules::history::HistoryDb;
use hercules::schema::fixtures as schemas;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Arc::new(schemas::fig1());
    let flow = fixtures::fig6(schema.clone())?;
    println!(
        "Fig. 6 flow: {} nodes, {} outputs",
        flow.len(),
        flow.outputs().len()
    );
    let verification = flow.outputs()[0];
    let inputs = flow.data_inputs_of(verification);
    println!(
        "the verification's two input branches are node-disjoint: {}\n",
        flow.ancestors(inputs[0])
            .iter()
            .all(|x| !flow.ancestors(inputs[1]).contains(x))
    );

    // Simulated tool work of 40 ms per invocation makes the overlap
    // visible; the real EDA tools are too fast for wall-clock drama.
    let work = Duration::from_millis(40);
    let mut results = Vec::new();
    for parallel in [false, true] {
        let mut db = HistoryDb::new(schema.clone());
        toy::seed_everything(&mut db, "setup");
        let registry = toy::text_registry_with(
            &schema,
            toy::TextTool {
                mode: MultiInstanceMode::RunPerInstance,
                work,
            },
        );
        let mut executor = Executor::new(registry);
        executor.options_mut().parallel = parallel;
        let mut binding = Binding::new();
        binding.bind_latest(&flow, &db);
        let start = Instant::now();
        let report = executor.execute(&flow, &binding, &mut db)?;
        let elapsed = start.elapsed();
        println!(
            "{}: {} subtasks, {} invocations, {elapsed:?}",
            if parallel { "parallel" } else { "serial  " },
            report.tasks.len(),
            report.runs()
        );
        results.push((
            elapsed,
            db.data_of(report.single(verification))?
                .expect("produced")
                .to_vec(),
        ));
    }
    assert_eq!(results[0].1, results[1].1, "identical results");
    println!(
        "\nspeedup from overlapping the disjoint branches: {:.2}x",
        results[0].0.as_secs_f64() / results[1].0.as_secs_f64()
    );
    Ok(())
}
