//! Fault-tolerant execution: retries, watchdog deadlines, and
//! partial-failure reporting, demonstrated by injecting faults into the
//! Odyssey Placer.
//!
//! A flaky placer fails twice and lands on the third attempt under a
//! retry policy; then a placer that panics outright fails one branch of
//! the Fig. 6 verification flow while the disjoint editor branch still
//! completes and commits — the report and the session event log carry
//! the full audit trail.
//!
//! ```sh
//! cargo run --release --example chaos_flow
//! ```

use hercules::exec::{FailurePolicy, FaultPlan, FaultyEncapsulation, RetryPolicy};
use hercules::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // Act 1: a flaky tool recovers under retry.
    // ------------------------------------------------------------------
    let mut session = Session::odyssey("chaos");
    let schema = session.schema().clone();
    let placer = schema.require("Placer")?;
    let real = session
        .executor_mut()
        .registry()
        .lookup(&schema, placer)
        .expect("placer registered")
        .clone();
    let flaky = FaultyEncapsulation::wrap(real.clone(), FaultPlan::FailTimes(2));
    session
        .executor_mut()
        .registry_mut()
        .register(placer, flaky.clone());
    session.executor_mut().options_mut().retry = RetryPolicy::attempts(3);

    let layout = session.start_from_goal("Layout")?;
    let created = session.expand(layout)?; // placer, netlist, rules
    let netlist = created[1];
    session.specialize(netlist, "EditedNetlist")?;
    session.expand(netlist)?; // editor
    session.bind_latest()?;
    let report = session.run()?.clone();
    let record = report
        .tasks
        .iter()
        .find(|t| t.outputs.contains(&layout))
        .expect("placer subtask recorded");
    println!(
        "flaky placer: {} call(s), subtask took {} attempt(s) in {:?} — layout {}",
        flaky.calls(),
        record.attempts,
        record.duration,
        report.try_single(layout)?,
    );

    // ------------------------------------------------------------------
    // Act 2: a panicking tool fails one Fig. 6 branch; the disjoint
    // branch completes anyway.
    // ------------------------------------------------------------------
    let mut session = Session::odyssey("chaos");
    session.executor_mut().registry_mut().register(
        placer,
        FaultyEncapsulation::wrap(real, FaultPlan::AlwaysPanic),
    );
    session.executor_mut().options_mut().failure = FailurePolicy::ContinueDisjoint;

    let verification = session.start_from_goal("Verification")?;
    let created = session.expand(verification)?;
    let edited = created[1];
    let extracted = created[2];
    session.specialize(edited, "EditedNetlist")?;
    session.expand(edited)?; // editor branch
    let created = session.expand(extracted)?; // extractor, layout
    let created = session.expand(created[1])?; // placer, netlist, rules
    let placer_netlist = created[1];
    session.specialize(placer_netlist, "EditedNetlist")?;
    session.expand(placer_netlist)?; // a second editor run feeds the placer
    session.bind_latest()?;

    let report = session.run()?.clone();
    println!(
        "\npanicking placer under ContinueDisjoint: {} subtask(s), {} failed, {} skipped",
        report.tasks.len(),
        report.failed(),
        report.skipped()
    );
    println!(
        "  disjoint editor branch committed: {}",
        report.try_single(edited)?
    );
    println!(
        "  verification produced {} instance(s); first failure: {}",
        report.instances_of(verification).len(),
        report.first_error().expect("one failed")
    );
    for event in session.events() {
        println!(
            "  event `{}`: {} task(s), {} failed, {} skipped",
            event.operation, event.tasks, event.failed, event.skipped
        );
    }
    Ok(())
}
