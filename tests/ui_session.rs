//! Experiment F9: the scripted Fig. 9 session — one user interface for
//! every approach, with browser, selection, execution and history
//! browsing driven through the text UI.

use hercules::ui::{render_task_window, Ui};
use hercules::Session;

#[test]
fn full_scripted_session() {
    let mut ui = Ui::new(Session::odyssey("sutton"));

    // Build the simulate flow goal-first, exactly as §4.1 narrates.
    let transcript = ui
        .run_script(
            "goal Performance\n\
             expand n0\n\
             expand n2\n\
             specialize n5 EditedNetlist\n\
             expand n5\n\
             expand n4\n\
             show\n",
        )
        .expect("script runs");
    assert!(transcript.contains("started from goal Performance"));
    assert!(transcript.contains("Simulator"));
    assert!(transcript.contains("CircuitEditor"));

    // Browse the editor scripts (Fig. 9b) and select the full adder.
    let browse = ui.execute("browse n6").expect("browses");
    assert!(browse.contains("Full adder"));
    assert!(browse.contains("Low pass filter"));
    let adder_line = browse
        .lines()
        .find(|l| l.contains("Full adder"))
        .expect("listed");
    let id = adder_line
        .trim()
        .split('\u{201c}')
        .next()
        .expect("id prefix")
        .trim()
        .to_owned();
    ui.execute(&format!("select n6 {id}")).expect("selects");

    // Bind the rest, run, and check the report line.
    let out = ui.execute("bind-latest").expect("binds");
    assert!(out.contains("0 leaf(s) still unbound"));
    let out = ui.execute("run").expect("runs");
    assert!(out.contains("invocation(s)"));

    // History menu on the produced performance.
    let report = ui.session().last_report().expect("ran").clone();
    let perf = report.single(hercules::flow::NodeId::from_index(0));
    let out = ui
        .execute(&format!("history i{}", perf.raw()))
        .expect("chains");
    assert!(out.contains("f←"), "tool revealed: {out}");
    assert!(out.contains("d←"), "inputs revealed: {out}");

    // The task window now shows bound leaves.
    let window = render_task_window(ui.session());
    assert!(window.contains("⇐"));
    assert!(!window.contains("(unbound)"));
}

#[test]
fn store_and_replay_through_the_ui() {
    let mut ui = Ui::new(Session::odyssey("jbb"));
    ui.run_script(
        "goal Layout\n\
         expand n0\n\
         store place-netlist\n\
         clear\n",
    )
    .expect("script runs");
    // Plan-based restart from the catalog.
    let out = ui.execute("plan place-netlist").expect("instantiates");
    assert!(out.contains("instantiated flow"));
    assert_eq!(ui.session().flow().expect("instantiated").len(), 4);
}

#[test]
fn catalogs_command_lists_tools_and_flows() {
    let mut ui = Ui::new(Session::odyssey("jbb"));
    let out = ui.execute("catalogs").expect("lists");
    assert!(out.contains("[T] Simulator"));
    assert!(out.contains("[D] Netlist"));
}

#[test]
fn errors_are_reported_not_panicked() {
    let mut ui = Ui::new(Session::odyssey("jbb"));
    assert!(ui.execute("expand n0").is_err(), "no flow yet");
    assert!(ui.execute("wibble").is_err());
    ui.execute("goal Performance").expect("starts");
    assert!(ui.execute("specialize n0 Layout").is_err(), "not a subtype");
}
