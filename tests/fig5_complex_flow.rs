//! Experiment F5: the Fig. 5 complex flow — entity reuse across
//! subtasks, multiple flow outputs, and multiple outputs from one
//! subtask — executed end-to-end against the real simulated tools.

use hercules::{eda, flow::fixtures, history::Metadata, Session};

/// Seeds a full-adder edited netlist the flow's shared `Netlist` node
/// will bind to.
fn seed_adder(session: &mut Session) -> hercules::history::InstanceId {
    let schema = session.schema().clone();
    let editor = schema.require("CircuitEditor").expect("known");
    let edited = schema.require("EditedNetlist").expect("known");
    let tool = session.db().instances_of(editor)[0];
    session
        .db_mut()
        .record_derived(
            edited,
            Metadata::by("tester").named("fa"),
            &eda::cells::full_adder().to_bytes(),
            hercules::history::Derivation::by_tool(tool, []),
        )
        .expect("records")
}

#[test]
fn fig5_executes_with_real_tools_and_three_outputs() {
    let mut session = Session::odyssey("tester");
    let netlist_instance = seed_adder(&mut session);
    let schema = session.schema().clone();

    // Seed a prior Layout (the Fig. 5 extraction input): place the
    // adder once through the placer.
    let placer = schema.require("Placer").expect("known");
    let layout_entity = schema.require("Layout").expect("known");
    let placer_inst = session.db().instances_of(placer)[0];
    let layout =
        eda::place(&eda::cells::full_adder(), &eda::PlacementRules::default()).expect("places");
    session
        .db_mut()
        .record_derived(
            layout_entity,
            Metadata::by("tester").named("adder layout"),
            &layout.to_bytes(),
            hercules::history::Derivation::by_tool(placer_inst, [netlist_instance]),
        )
        .expect("records");

    let flow = fixtures::fig5(schema.clone()).expect("fixture");
    let outputs = flow.outputs();
    assert_eq!(outputs.len(), 3);

    // Identify the shared netlist node and bind it to the adder.
    let netlist_node = flow
        .nodes()
        .find(|(_, n)| schema.entity(n.entity()).name() == "Netlist")
        .map(|(id, _)| id)
        .expect("shared netlist node");
    session.install_flow(flow);
    session.select(netlist_node, netlist_instance);
    let unbound = session.bind_latest().expect("flow installed");
    assert!(unbound.is_empty(), "library covers all leaves: {unbound:?}");

    let report = session.run().expect("executes").clone();

    // The extraction subtask ran once for two outputs.
    let multi = report
        .tasks
        .iter()
        .find(|t| t.outputs.len() == 2)
        .expect("multi-output subtask");
    assert_eq!(
        multi.action,
        hercules::exec::TaskAction::Ran { runs: 1 },
        "one invocation, two products"
    );

    // Decode each real artifact.
    let flow_ref = session.flow().expect("installed");
    for out in flow_ref.outputs() {
        let inst = report.single(out);
        let entity = session.db().instance(inst).expect("present").entity();
        let name = schema.entity(entity).name().to_owned();
        let bytes = session
            .db()
            .data_of(inst)
            .expect("ok")
            .expect("has data")
            .to_vec();
        match name.as_str() {
            "Verification" => {
                let v = eda::Verification::from_bytes(&bytes).expect("decodes");
                assert!(v.matched, "extracted netlist matches: {:?}", v.mismatches);
            }
            "ExtractionStatistics" => {
                let s = eda::ExtractionStatistics::from_bytes(&bytes).expect("decodes");
                assert_eq!(s.cell_count, 5, "full adder has five gates");
                assert!(s.area > 0);
            }
            "PerformancePlot" => {
                let p = eda::Plot::from_bytes(&bytes).expect("decodes");
                assert!(p.to_text().contains("sum"));
            }
            other => panic!("unexpected output entity {other}"),
        }
    }

    // Entity reuse is visible in the recorded history: the netlist
    // instance has at least two direct dependents (the verification and
    // the circuit composite).
    let dependents = session
        .db()
        .direct_dependents(netlist_instance)
        .expect("present");
    assert!(
        dependents.len() >= 2,
        "netlist reused by several subtasks: {dependents:?}"
    );
}

#[test]
fn fig5_bipartite_view_groups_the_extraction() {
    let schema = std::sync::Arc::new(hercules::schema::fixtures::fig1());
    let flow = fixtures::fig5(schema).expect("fixture");
    let diagram = hercules::flow::FlowDiagram::from_task_graph(&flow).expect("acyclic");
    let extraction = diagram
        .activities()
        .iter()
        .find(|a| a.name == "Extractor")
        .expect("extraction activity");
    assert_eq!(extraction.outputs.len(), 2, "Fig. 5 multi-output subtask");
}
