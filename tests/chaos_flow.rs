//! Chaos suite: drives the Fig. 5 / Fig. 6 flows through injected
//! faults to prove the engine's fault tolerance — supervised runs,
//! retry policies, watchdog deadlines, and partial-failure semantics.

use std::sync::Arc;
use std::time::Duration;

use hercules::exec::{
    ExecError, FailurePolicy, FaultPlan, FaultyEncapsulation, RetryPolicy, TaskAction,
};
use hercules::flow::NodeId;
use hercules::history::{Derivation, InstanceId, Metadata};
use hercules::ui::{Command, Ui};
use hercules::{eda, HerculesError, Session};

/// Wraps the registered encapsulation of `tool` in a fault injector and
/// re-registers the wrapper; returns it for call-count inspection.
fn inject(session: &mut Session, tool: &str, plan: FaultPlan) -> Arc<FaultyEncapsulation> {
    let schema = session.schema().clone();
    let entity = schema.require(tool).expect("known tool");
    let executor = session.executor_mut();
    let inner = executor
        .registry()
        .lookup(&schema, entity)
        .expect("tool registered")
        .clone();
    let faulty = FaultyEncapsulation::wrap(inner, plan);
    executor.registry_mut().register(entity, faulty.clone());
    faulty
}

/// Records one EditedNetlist instance so abstract netlist leaves have
/// something to bind to.
fn seed_netlist(session: &mut Session) -> InstanceId {
    let schema = session.schema().clone();
    let editor = schema.require("CircuitEditor").expect("known");
    let edited = schema.require("EditedNetlist").expect("known");
    let tool = session.db().instances_of(editor)[0];
    let cell = eda::cells::full_adder();
    session
        .db_mut()
        .record_derived(
            edited,
            Metadata::by("chaos").named(&cell.name),
            &cell.to_bytes(),
            Derivation::by_tool(tool, []),
        )
        .expect("records")
}

/// Builds the Layout flow (Placer ← editor-produced netlist + rules)
/// and binds it; returns (layout node, placer-subtask output node).
fn layout_flow(session: &mut Session) -> NodeId {
    let layout = session.start_from_goal("Layout").expect("starts");
    let created = session.expand(layout).expect("expands"); // placer, netlist, rules
    let netlist = created[1];
    session
        .specialize(netlist, "EditedNetlist")
        .expect("specializes");
    session.expand(netlist).expect("expands"); // editor
    session.bind_latest().expect("binds");
    layout
}

#[test]
fn flaky_tool_succeeds_under_retry_recording_attempts() {
    let mut session = Session::odyssey("chaos");
    let faulty = inject(&mut session, "Placer", FaultPlan::FailTimes(2));
    let layout = layout_flow(&mut session);
    session.executor_mut().options_mut().retry = RetryPolicy::attempts(3);

    let report = session.run().expect("third attempt lands").clone();
    assert!(report.is_complete());
    assert!(report.try_single(layout).is_ok(), "layout produced");
    let record = report
        .tasks
        .iter()
        .find(|t| t.outputs.contains(&layout))
        .expect("placer subtask recorded");
    assert_eq!(record.action, TaskAction::Ran { runs: 1 });
    assert_eq!(record.attempts, 3, "two failures + one success");
    assert!(record.duration >= Duration::from_millis(20), "backed off");
    assert_eq!(faulty.calls(), 3);
    assert!(session.events()[0].is_clean());
}

#[test]
fn exhausted_retries_surface_the_final_error() {
    let mut session = Session::odyssey("chaos");
    let faulty = inject(&mut session, "Placer", FaultPlan::FailTimes(5));
    layout_flow(&mut session);
    session.executor_mut().options_mut().retry = RetryPolicy::attempts(2);

    let err = session.run().expect_err("two attempts cannot clear five");
    assert!(
        matches!(&err, HerculesError::Exec(ExecError::ToolFailed { .. })),
        "{err}"
    );
    assert_eq!(faulty.calls(), 2, "stopped at max_attempts");
    let event = &session.events()[0];
    assert!(!event.is_clean());
    assert!(event.error.as_deref().unwrap().contains("injected fault"));
}

#[test]
fn panicking_tool_reports_instead_of_aborting_the_process() {
    let mut session = Session::odyssey("chaos");
    let schema = session.schema().clone();
    let placer = schema.require("Placer").expect("known");
    let real = session
        .executor_mut()
        .registry()
        .lookup(&schema, placer)
        .expect("registered")
        .clone();
    inject(&mut session, "Placer", FaultPlan::AlwaysPanic);
    layout_flow(&mut session);

    let err = session.run().expect_err("panic becomes an error");
    match &err {
        HerculesError::Exec(ExecError::ToolPanicked { tool, message }) => {
            assert_eq!(tool, "Placer");
            assert!(message.contains("injected panic"), "{message}");
        }
        other => panic!("expected ToolPanicked, got {other}"),
    }
    // The process (and the session) survived: a clean rerun works once
    // the fault is lifted.
    session.executor_mut().registry_mut().register(placer, real);
    session.run().expect("recovered");
}

#[test]
fn hung_tool_trips_the_watchdog_deadline() {
    let mut session = Session::odyssey("chaos");
    inject(
        &mut session,
        "Placer",
        FaultPlan::SleepFor(Duration::from_millis(300)),
    );
    layout_flow(&mut session);
    let options = session.executor_mut().options_mut();
    options.deadline = Some(Duration::from_millis(40));
    options.retry.retry_timeouts = false;

    let err = session.run().expect_err("watchdog fires");
    assert!(
        matches!(
            &err,
            HerculesError::Exec(ExecError::ToolTimedOut {
                deadline_ms: 40,
                ..
            })
        ),
        "{err}"
    );
}

#[test]
fn slow_then_fast_tool_recovers_when_timeouts_retry() {
    let mut session = Session::odyssey("chaos");
    let faulty = inject(
        &mut session,
        "Placer",
        FaultPlan::SleepTimes {
            times: 1,
            duration: Duration::from_millis(300),
        },
    );
    let layout = layout_flow(&mut session);
    let options = session.executor_mut().options_mut();
    options.deadline = Some(Duration::from_millis(60));
    options.retry = RetryPolicy::attempts(2); // retry_timeouts on by default

    let report = session.run().expect("second attempt is prompt").clone();
    assert!(report.try_single(layout).is_ok());
    assert_eq!(faulty.calls(), 2);
}

#[test]
fn corrupt_outputs_are_never_retried() {
    let mut session = Session::odyssey("chaos");
    let faulty = inject(&mut session, "Placer", FaultPlan::CorruptOutputs);
    layout_flow(&mut session);
    session.executor_mut().options_mut().retry = RetryPolicy::attempts(3);

    let err = session.run().expect_err("output count mismatch");
    assert!(
        matches!(&err, HerculesError::Exec(ExecError::WrongOutputs { .. })),
        "{err}"
    );
    assert_eq!(faulty.calls(), 1, "structural errors retry nothing");
}

/// Builds the Fig. 6 verification flow with BOTH branches expanded:
/// branch A is an editor run producing the edited netlist, branch B is
/// placer → extractor producing the extracted netlist.
struct Fig6 {
    verification: NodeId,
    edited: NodeId,
    layout: NodeId,
    extracted: NodeId,
}

fn fig6_flow(session: &mut Session, parallel: bool) -> Fig6 {
    let seeded = seed_netlist(session);
    session.executor_mut().options_mut().parallel = parallel;
    let verification = session.start_from_goal("Verification").expect("starts");
    let created = session.expand(verification).expect("expands");
    let edited = created[1];
    let extracted = created[2];
    session
        .specialize(edited, "EditedNetlist")
        .expect("specializes");
    session.expand(edited).expect("expands"); // editor
    let created = session.expand(extracted).expect("expands"); // extractor, layout
    let layout = created[1];
    let created = session.expand(layout).expect("expands"); // placer, netlist, rules
    session.select(created[1], seeded);
    session.bind_latest().expect("binds");
    Fig6 {
        verification,
        edited,
        layout,
        extracted,
    }
}

fn assert_disjoint_branch_survives(parallel: bool) {
    let mut session = Session::odyssey("chaos");
    session.executor_mut().options_mut().failure = FailurePolicy::ContinueDisjoint;
    inject(&mut session, "Placer", FaultPlan::AlwaysPanic);
    let nodes = fig6_flow(&mut session, parallel);

    let report = session.run().expect("continues past the failure").clone();
    assert!(!report.is_complete());
    assert_eq!(report.failed(), 1, "exactly the placer subtask failed");
    assert_eq!(report.skipped(), 2, "extractor + verification skipped");

    // The disjoint editor branch committed its product.
    assert!(report.try_single(nodes.edited).is_ok(), "branch A landed");
    // The failed subtask and its downstream cone produced nothing.
    for node in [nodes.layout, nodes.extracted, nodes.verification] {
        assert!(report.instances_of(node).is_empty());
        assert!(matches!(
            report.try_single(node),
            Err(ExecError::NotSingleInstance { count: 0, .. })
        ));
    }
    let failed = report
        .tasks
        .iter()
        .find(|t| matches!(t.action, TaskAction::Failed { .. }))
        .expect("failure recorded");
    assert_eq!(failed.outputs, vec![nodes.layout]);
    assert!(matches!(
        &failed.action,
        TaskAction::Failed {
            error: ExecError::ToolPanicked { .. }
        }
    ));
    assert!(
        report
            .first_error()
            .expect("present")
            .to_string()
            .contains("panicked"),
        "first_error surfaces the root cause"
    );

    // The session event log carries the partial-failure audit trail.
    let event = session.events().last().expect("recorded");
    assert_eq!((event.failed, event.skipped), (1, 2));
    assert!(
        event.failures[0].contains("panicked"),
        "{:?}",
        event.failures
    );
}

#[test]
fn continue_disjoint_completes_independent_branches_serially() {
    assert_disjoint_branch_survives(false);
}

#[test]
fn continue_disjoint_completes_independent_branches_in_parallel() {
    assert_disjoint_branch_survives(true);
}

#[test]
fn ui_surfaces_partial_failures_and_the_event_log() {
    let mut session = Session::odyssey("chaos");
    session.executor_mut().options_mut().failure = FailurePolicy::ContinueDisjoint;
    inject(&mut session, "Placer", FaultPlan::AlwaysPanic);
    fig6_flow(&mut session, false);

    let mut ui = Ui::new(session);
    let out = ui.apply(Command::Run).expect("continues");
    assert!(out.contains("1 failed, 2 skipped"), "{out}");
    assert!(out.contains("first failure:"), "{out}");
    let log = ui.execute("log").expect("lists");
    assert!(log.contains("1 failed, 2 skipped"), "{log}");
    assert!(log.contains("✗"), "failures itemized: {log}");
}
