//! Experiment F11: version trees vs flow traces (Fig. 11). The same
//! five-version editing scenario is recorded three ways:
//!
//! * the derivation history (this paper) — from which both the version
//!   tree *and* the tools are recoverable;
//! * a conventional [`VersionTreeStore`] — which loses the tools;
//!
//! demonstrating "a flow trace is a semantically richer superset of a
//! version tree".

use hercules::baseline::VersionTreeStore;
use hercules::history::{Derivation, FlowTrace, HistoryDb, InstanceId, Metadata};
use hercules::schema::fixtures;
use std::sync::Arc;

/// Records the Fig. 11 scenario: c1 → c2 → {c3, c4 → c5} edited with a
/// circuit editor.
fn record_scenario() -> (HistoryDb, Vec<InstanceId>) {
    let schema = Arc::new(fixtures::fig1());
    let mut db = HistoryDb::new(schema.clone());
    let editor = db
        .record_primary(
            schema.require("CircuitEditor").expect("known"),
            Metadata::by("cad").named("Cct E."),
            b"sced",
        )
        .expect("records");
    let edited = schema.require("EditedNetlist").expect("known");
    let edit = |db: &mut HistoryDb, name: &str, from: Option<InstanceId>| {
        db.record_derived(
            edited,
            Metadata::by("jbb").named(name),
            name.as_bytes(),
            Derivation::by_tool(editor, from),
        )
        .expect("records")
    };
    let c1 = edit(&mut db, "c1", None);
    let c2 = edit(&mut db, "c2", Some(c1));
    let c3 = edit(&mut db, "c3", Some(c2));
    let c4 = edit(&mut db, "c4", Some(c2));
    let c5 = edit(&mut db, "c5", Some(c4));
    (db, vec![editor, c1, c2, c3, c4, c5])
}

#[test]
fn version_tree_is_a_projection_of_the_history() {
    let (db, ids) = record_scenario();
    let schema = db.schema().clone();
    let forest = db
        .version_forest(schema.require("EditedNetlist").expect("known"))
        .expect("builds");

    // Fig. 11a exactly.
    assert_eq!(forest.roots(), &[ids[1]]);
    assert_eq!(forest.children(ids[2]), &[ids[3], ids[4]]);
    assert_eq!(forest.children(ids[4]), &[ids[5]]);
    assert_eq!(forest.depth(ids[5]), 3);
}

#[test]
fn flow_trace_shows_the_tools_a_version_tree_loses() {
    let (db, ids) = record_scenario();

    // Flow trace of c5 (Fig. 11b): versions AND the editor.
    let trace = FlowTrace::backward(&db, &[ids[5]]).expect("builds");
    assert!(
        trace.node_of(ids[0]).is_some(),
        "the editor is in the trace"
    );
    let text = trace.to_text(&db);
    assert!(text.contains("Cct E."), "tool shown per version");

    // The equivalent conventional version tree records the same data
    // relationships but cannot answer "which tool created c2".
    let mut store = VersionTreeStore::new();
    let v1 = store.check_in("c1", None);
    let v2 = store.check_in("c2", Some(v1));
    let _v3 = store.check_in("c3", Some(v2));
    let v4 = store.check_in("c4", Some(v2));
    let _v5 = store.check_in("c5", Some(v4));
    assert_eq!(store.len(), 5);
    // Structure matches ...
    assert_eq!(store.children(v2).len(), 2);
    // ... but the record type has no tool field at all: the superset
    // claim. (Nothing to assert beyond the API shape; the richer trace
    // above answered the tool query.)
}

#[test]
fn trace_is_reexecutable_as_a_flow() {
    // "It also allows previously executed tasks to be recalled,
    // possibly modified, and executed."
    let (db, ids) = record_scenario();
    let trace = FlowTrace::backward(&db, &[ids[2]]).expect("builds");
    let graph = trace.graph();
    graph.validate().expect("a trace is a valid task graph");
    assert_eq!(graph.len(), 3, "editor + c1 + c2");
    // The c2 node's producer edges mirror the derivation.
    let c2_node = trace.node_of(ids[2]).expect("member");
    assert_eq!(graph.tool_of(c2_node), trace.node_of(ids[0]));
}

#[test]
fn shared_physical_data_across_versions() {
    // Footnote 5: identical payloads share one stored blob.
    let (mut db, ids) = record_scenario();
    let schema = db.schema().clone();
    let edited = schema.require("EditedNetlist").expect("known");
    let editor = ids[0];
    let blobs_before = db.store().blob_count();
    // A "new version" whose bytes are identical to c5's.
    db.record_derived(
        edited,
        Metadata::by("jbb").named("c5-copy"),
        b"c5",
        Derivation::by_tool(editor, [ids[5]]),
    )
    .expect("records");
    assert_eq!(db.store().blob_count(), blobs_before, "blob shared");
}
