//! Workspace lint (`HL04xx`) tests: a clean workspace, a torn journal
//! tail, a corrupt frame, a missing manifest, an orphan generation, a
//! replay failure — plus the whole-analyzer breadth check.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hercules::audit::lint_workspace;
use hercules::store::{encode_frame, Workspace};
use hercules::{JournalOp, Session};
use hercules_analyze::{lint_flow, lint_schema_spec, Diagnostics, Layer, Severity};
use hercules_flow::TaskGraph;
use hercules_schema::fixtures;

fn temp_root(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let root = std::env::temp_dir().join(format!("herclint-ws-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

/// A saved session with some journaled work on top.
fn seeded_workspace(tag: &str) -> PathBuf {
    let root = temp_root(tag);
    let session = Session::odyssey("auditor");
    let mut ws = Workspace::create(&root, &session).expect("creates");
    let op = JournalOp::Flow(hercules::FlowOp::Seed {
        entity: "Performance".to_owned(),
    });
    ws.append(&op).expect("appends");
    root
}

fn lint(root: &std::path::Path) -> Diagnostics {
    let mut out = Diagnostics::new();
    lint_workspace(root, &mut out);
    out
}

#[test]
fn clean_workspace_has_no_workspace_findings() {
    let root = seeded_workspace("clean");
    let out = lint(&root);
    assert!(
        !out.iter().any(|d| d.code.starts_with("HL04")),
        "got:\n{}",
        out.render_text()
    );
    assert_eq!(out.count(Severity::Error), 0);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn missing_manifest_is_an_error() {
    let root = temp_root("nomanifest");
    fs::create_dir_all(&root).expect("mkdir");
    let out = lint(&root);
    let d = out.iter().find(|d| d.code == "HL0401").expect("HL0401");
    assert_eq!(d.severity, Severity::Error);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn corrupt_manifest_is_an_error() {
    let root = temp_root("badmanifest");
    fs::create_dir_all(&root).expect("mkdir");
    fs::write(root.join("MANIFEST"), b"not a manifest").expect("writes");
    let out = lint(&root);
    assert!(out.iter().any(|d| d.code == "HL0402"));
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn torn_journal_tail_is_a_warning_not_an_error() {
    let root = seeded_workspace("torn");
    let journal = root.join("journal-0.log");
    let mut buf = fs::read(&journal).expect("reads");
    buf.extend_from_slice(&[0xde, 0xad, 0xbe]); // 3 torn bytes
    fs::write(&journal, &buf).expect("writes");
    let out = lint(&root);
    let d = out.iter().find(|d| d.code == "HL0406").expect("HL0406");
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.message.contains("3 byte(s)"));
    // The valid prefix still replays; no replay errors.
    assert!(!out.iter().any(|d| d.code == "HL0408"));
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn checksummed_garbage_frame_is_an_error() {
    let root = seeded_workspace("badframe");
    let journal = root.join("journal-0.log");
    let mut buf = fs::read(&journal).expect("reads");
    buf.extend_from_slice(&encode_frame(b"not an operation"));
    fs::write(&journal, &buf).expect("writes");
    let out = lint(&root);
    let d = out.iter().find(|d| d.code == "HL0407").expect("HL0407");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.span.name.contains("frame 1"), "span: {}", d.span);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn unreplayable_operation_is_an_error() {
    let root = seeded_workspace("badreplay");
    let journal = root.join("journal-0.log");
    let op = JournalOp::Flow(hercules::FlowOp::Seed {
        entity: "NoSuchEntity".to_owned(),
    });
    let payload = serde_json::to_vec(&op).expect("serializes");
    let mut buf = fs::read(&journal).expect("reads");
    buf.extend_from_slice(&encode_frame(&payload));
    fs::write(&journal, &buf).expect("writes");
    let out = lint(&root);
    let d = out.iter().find(|d| d.code == "HL0408").expect("HL0408");
    assert_eq!(d.severity, Severity::Error);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn missing_checkpoint_and_journal_are_errors() {
    let root = seeded_workspace("missingfiles");
    fs::remove_file(root.join("checkpoint-0.json")).expect("removes");
    fs::remove_file(root.join("journal-0.log")).expect("removes");
    let out = lint(&root);
    assert!(out.iter().any(|d| d.code == "HL0403"));
    assert!(out.iter().any(|d| d.code == "HL0405"));
    let _ = fs::remove_dir_all(&root);
}

/// Rewrites the MANIFEST with an explicit segment chain (and fencing
/// token), leaving checkpoint/journal/generation untouched.
fn rewrite_manifest(root: &std::path::Path, segments: &[&str], journal: &str, token: u64) {
    let segs = segments
        .iter()
        .map(|s| format!("\"{s}\""))
        .collect::<Vec<_>>()
        .join(",");
    fs::write(
        root.join("MANIFEST"),
        format!(
            "{{\"generation\":0,\"checkpoint\":\"checkpoint-0.json\",\
             \"journal\":\"{journal}\",\"segments\":[{segs}],\"fencing_token\":{token}}}"
        ),
    )
    .expect("writes manifest");
}

#[test]
fn segment_chain_gap_and_misorder_are_errors() {
    let root = seeded_workspace("seggap");
    // A gap: sequence 2 sits where 1 should be.
    fs::write(root.join("journal-0.2.log"), b"").expect("writes");
    rewrite_manifest(
        &root,
        &["journal-0.log", "journal-0.2.log"],
        "journal-0.2.log",
        1,
    );
    let out = lint(&root);
    let d = out.iter().find(|d| d.code == "HL0410").expect("HL0410");
    assert_eq!(d.severity, Severity::Error);
    assert!(
        d.message.contains("gap, duplicate, or misordered"),
        "{}",
        d.message
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn segment_chain_not_ending_at_active_journal_is_an_error() {
    let root = seeded_workspace("segactive");
    fs::write(root.join("journal-0.1.log"), b"").expect("writes");
    // `journal` names the first segment, not the chain's last.
    rewrite_manifest(
        &root,
        &["journal-0.log", "journal-0.1.log"],
        "journal-0.log",
        1,
    );
    let out = lint(&root);
    assert!(
        out.iter()
            .any(|d| d.code == "HL0410" && d.message.contains("ends at")),
        "got:\n{}",
        out.render_text()
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn well_formed_segment_chain_is_clean() {
    let root = seeded_workspace("segclean");
    let head = fs::read(root.join("journal-0.log")).expect("reads");
    // Split the real journal: frames stay in seq 0, seq 1 starts empty.
    fs::write(root.join("journal-0.1.log"), b"").expect("writes");
    fs::write(root.join("journal-0.log"), &head).expect("writes");
    rewrite_manifest(
        &root,
        &["journal-0.log", "journal-0.1.log"],
        "journal-0.1.log",
        1,
    );
    let out = lint(&root);
    assert!(
        !out.iter().any(|d| d.code.starts_with("HL04")),
        "got:\n{}",
        out.render_text()
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn quarantine_files_are_reported_as_info() {
    let root = seeded_workspace("quarantine");
    fs::write(root.join("journal-0.log.quarantined-0"), b"\xde\xad").expect("writes");
    let out = lint(&root);
    let d = out.iter().find(|d| d.code == "HL0411").expect("HL0411");
    assert_eq!(d.severity, Severity::Info);
    assert!(d.message.contains("quarantined"), "{}", d.message);
    // Quarantine files are not miscounted as orphan generations.
    assert!(!out.iter().any(|d| d.code == "HL0409"));
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn expired_and_superseded_leases_are_warnings() {
    let root = seeded_workspace("lease");
    // Expired: a plausible owner whose expiry is long past.
    fs::write(
        root.join("LEASE"),
        b"{\"owner\":\"ghost\",\"expires_unix_ms\":1000,\"token\":1}",
    )
    .expect("writes");
    let out = lint(&root);
    let d = out.iter().find(|d| d.code == "HL0412").expect("HL0412");
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.message.contains("expired"), "{}", d.message);

    // Superseded: token behind the manifest's fencing token.
    rewrite_manifest(&root, &["journal-0.log"], "journal-0.log", 7);
    let far = u64::MAX / 2;
    fs::write(
        root.join("LEASE"),
        format!("{{\"owner\":\"ghost\",\"expires_unix_ms\":{far},\"token\":1}}"),
    )
    .expect("writes");
    let out = lint(&root);
    let d = out.iter().find(|d| d.code == "HL0412").expect("HL0412");
    assert!(d.message.contains("deposed"), "{}", d.message);

    // Live and matching: no finding.
    fs::write(
        root.join("LEASE"),
        format!("{{\"owner\":\"ghost\",\"expires_unix_ms\":{far},\"token\":7}}"),
    )
    .expect("writes");
    let out = lint(&root);
    assert!(
        !out.iter().any(|d| d.code == "HL0412"),
        "got:\n{}",
        out.render_text()
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn stray_generation_files_are_reported() {
    let root = seeded_workspace("orphan");
    fs::write(root.join("checkpoint-99.json"), b"{}").expect("writes");
    fs::write(root.join("journal-99.log"), b"").expect("writes");
    let out = lint(&root);
    let orphans: Vec<_> = out.iter().filter(|d| d.code == "HL0409").collect();
    assert_eq!(orphans.len(), 2, "got:\n{}", out.render_text());
    assert!(orphans.iter().all(|d| d.severity == Severity::Info));
    let _ = fs::remove_dir_all(&root);
}

/// The acceptance breadth check: across schema, flow, hazard, and
/// workspace targets herclint reports at least ten distinct stable
/// codes spanning at least three registry layers.
#[test]
fn at_least_ten_distinct_codes_across_layers() {
    let mut all = Diagnostics::new();

    // Schema layer: a cyclic spec plus a gate-valid spec with every
    // schema-pass defect (mirrors the golden tests).
    use hercules_schema::{DepKind, DepSpec, EntityKind, EntitySpec, SchemaSpec};
    let ent = |name: &str, kind| EntitySpec {
        name: name.to_owned(),
        kind: Some(kind),
        supertype: None,
        description: String::new(),
        composite: false,
    };
    let sub = |name: &str, sup: &str| EntitySpec {
        name: name.to_owned(),
        kind: None,
        supertype: Some(sup.to_owned()),
        description: String::new(),
        composite: false,
    };
    let dep = |target: &str, source: &str, kind, optional| DepSpec {
        target: target.to_owned(),
        source: source.to_owned(),
        kind,
        optional,
    };
    let cyclic = SchemaSpec {
        entities: vec![ent("A", EntityKind::Data), ent("B", EntityKind::Data)],
        deps: vec![
            dep("A", "B", DepKind::Data, false),
            dep("B", "A", DepKind::Data, false),
        ],
    };
    lint_schema_spec(&cyclic, &mut all);
    let bad = SchemaSpec {
        entities: vec![
            ent("Ghost", EntityKind::Data),
            ent("Src", EntityKind::Data),
            ent("IdleTool", EntityKind::Tool),
            ent("Base", EntityKind::Data),
            ent("Maker", EntityKind::Tool),
            sub("Sub", "Base"),
            ent("Root", EntityKind::Data),
            sub("Inert", "Root"),
            ent("SelfMade", EntityKind::Tool),
            ent("User", EntityKind::Data),
            ent("UserMaker", EntityKind::Tool),
            ent("Lonely", EntityKind::Data),
        ],
        deps: vec![
            dep("Ghost", "Src", DepKind::Data, false),
            dep("Base", "Maker", DepKind::Functional, false),
            dep("SelfMade", "Src", DepKind::Data, false),
            dep("User", "SelfMade", DepKind::Data, false),
            dep("User", "UserMaker", DepKind::Functional, false),
        ],
    };
    lint_schema_spec(&bad, &mut all);

    // Flow + hazard layers: seeded defects and a seeded conflict.
    let schema = Arc::new(fixtures::fig1());
    let mut flow = TaskGraph::new(schema.clone());
    let edited = schema.require("EditedNetlist").expect("known");
    let a = flow.seed(edited).expect("seeds");
    flow.expand(a).expect("expands");
    let b = flow.seed(edited).expect("seeds");
    flow.expand(b).expect("expands");
    flow.add_node_raw(schema.require("Simulator").expect("known"))
        .expect("node");
    lint_flow(&flow, &mut all);

    // Workspace layer: a torn tail and an orphan generation.
    let root = seeded_workspace("breadth");
    let journal = root.join("journal-0.log");
    let mut buf = fs::read(&journal).expect("reads");
    buf.extend_from_slice(&[0xff; 5]);
    fs::write(&journal, &buf).expect("writes");
    fs::write(root.join("checkpoint-7.json"), b"{}").expect("writes");
    lint_workspace(&root, &mut all);
    let _ = fs::remove_dir_all(&root);

    let codes = all.codes();
    assert!(
        codes.len() >= 10,
        "expected >= 10 distinct codes, got {}: {:?}",
        codes.len(),
        codes
    );
    let layers: std::collections::BTreeSet<Layer> = codes
        .iter()
        .filter_map(|c| hercules_analyze::pass(c))
        .map(|p| p.layer)
        .collect();
    assert!(
        layers.len() >= 3,
        "expected >= 3 layers, got {layers:?} from {codes:?}"
    );
}
