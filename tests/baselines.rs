//! Experiment E1: quantifying §2's comparison — dynamically defined
//! flows vs predefined flows vs raw traces, over randomized designer
//! sessions on both the paper's schema and larger synthetic schemas.

use hercules::baseline::{
    flexibility::{evaluate, Outcome},
    random_session, DynamicManager, FlowManager, StaticFlowManager, TraceManager,
};
use hercules::schema::{fixtures, synth::SynthConfig, TaskSchema};

fn total_outcome<F>(schema: &TaskSchema, sessions: usize, mut make: F) -> Outcome
where
    F: FnMut() -> Box<dyn FlowManager>,
{
    let mut total = Outcome::default();
    for seed in 0..sessions as u64 {
        let session = random_session(schema, 60, 0.7, seed);
        let mut manager = make();
        total.merge(evaluate(schema, manager.as_mut(), &session));
    }
    total
}

fn run_comparison(schema: &TaskSchema) -> (Outcome, Outcome, Outcome) {
    let dynamic = total_outcome(schema, 25, || Box::new(DynamicManager::new(schema)));
    let static_ = total_outcome(schema, 25, || {
        Box::new(StaticFlowManager::reference_flow(schema))
    });
    let trace = total_outcome(schema, 25, || Box::new(TraceManager::new()));
    (dynamic, static_, trace)
}

#[test]
fn fig1_schema_ordering() {
    let schema = fixtures::fig1();
    let (dynamic, static_, trace) = run_comparison(&schema);

    // Dynamic: perfect on both axes.
    assert_eq!(dynamic.flexibility(), 1.0);
    assert_eq!(dynamic.enforcement(), 1.0);

    // Static: enforces but rejects a substantial share of valid moves
    // (the straight-jacket).
    assert!(static_.enforcement() > 0.9);
    assert!(
        static_.flexibility() < 0.7,
        "straight-jacket visible: {}",
        static_.flexibility()
    );

    // Trace: flexible but enforcement-free.
    assert_eq!(trace.flexibility(), 1.0);
    assert_eq!(trace.enforcement(), 0.0);
}

#[test]
fn ordering_holds_on_larger_synthetic_schemas() {
    for cfg in [
        SynthConfig {
            layers: 4,
            width: 4,
            fanin: 2,
            subtypes: 0,
        },
        SynthConfig {
            layers: 6,
            width: 8,
            fanin: 3,
            subtypes: 0,
        },
    ] {
        let schema = cfg.generate();
        let (dynamic, static_, trace) = run_comparison(&schema);
        let combined = |o: &Outcome| o.flexibility() + o.enforcement();
        assert!(
            combined(&dynamic) >= combined(&static_),
            "{cfg:?}: dynamic {} vs static {}",
            combined(&dynamic),
            combined(&static_)
        );
        assert!(combined(&dynamic) >= combined(&trace));
        assert_eq!(dynamic.flexibility(), 1.0);
        assert_eq!(dynamic.enforcement(), 1.0);
    }
}

#[test]
fn trace_prototype_replay_is_as_rigid_as_a_static_flow() {
    // Casotto's only reuse mechanism — replaying a trace as a prototype
    // — reintroduces the straight-jacket it avoided while recording.
    let schema = fixtures::fig1();
    let mut recorder = TraceManager::new();
    let session = random_session(&schema, 30, 1.0, 7);
    evaluate(&schema, &mut recorder, &session);
    let mut replay = recorder.as_prototype();
    let other = random_session(&schema, 30, 1.0, 8);
    let outcome = evaluate(&schema, &mut replay, &other);
    assert!(
        outcome.flexibility() < 1.0,
        "prototype replay rejects valid moves"
    );
}
