//! Experiment E2: design-consistency maintenance (§3.3). After an
//! input is re-edited, the derived data is detected out-of-date and an
//! automatic retrace re-runs exactly the affected tasks.

use hercules::{eda, history::Derivation, history::Metadata, Session};

/// Runs extraction over a placed full adder; returns (session, netlist
/// instance, layout instance, extracted instance).
fn place_and_extract() -> (
    Session,
    hercules::history::InstanceId,
    hercules::history::InstanceId,
    hercules::history::InstanceId,
) {
    let mut session = Session::odyssey("tester");
    let schema = session.schema().clone();

    // Record the source netlist.
    let editor = schema.require("CircuitEditor").expect("known");
    let edited = schema.require("EditedNetlist").expect("known");
    let editor_inst = session.db().instances_of(editor)[0];
    let netlist = session
        .db_mut()
        .record_derived(
            edited,
            Metadata::by("tester").named("adder v1"),
            &eda::cells::full_adder().to_bytes(),
            Derivation::by_tool(editor_inst, []),
        )
        .expect("records");

    // Flow: ExtractedNetlist <- Extractor <- Layout <- Placer <- netlist.
    let ext = session.start_from_goal("ExtractedNetlist").expect("starts");
    let created = session.expand(ext).expect("expands"); // extractor, layout
    let layout_node = created[1];
    let created = session.expand(layout_node).expect("expands"); // placer, netlist, rules
    let netlist_node = created[1];
    session.select(netlist_node, netlist);
    session.bind_latest().expect("binds");
    session.run().expect("runs");
    let report = session.last_report().expect("ran").clone();
    (
        session,
        netlist,
        report.single(layout_node),
        report.single(ext),
    )
}

#[test]
fn fresh_results_are_up_to_date() {
    let (session, _, layout, extracted) = place_and_extract();
    assert!(session.db().is_up_to_date(layout).expect("checks"));
    assert!(session.db().is_up_to_date(extracted).expect("checks"));
    assert!(session.db().stale_instances().expect("scans").is_empty());
}

#[test]
fn editing_an_input_marks_derived_data_stale_and_retrace_updates_it() {
    let (mut session, netlist, layout, _extracted) = place_and_extract();
    let schema = session.schema().clone();

    // Re-edit the netlist: v2 supersedes v1 (an 8-bit adder now).
    let editor = schema.require("CircuitEditor").expect("known");
    let edited = schema.require("EditedNetlist").expect("known");
    let editor_inst = session.db().instances_of(editor)[0];
    let v2 = session
        .db_mut()
        .record_derived(
            edited,
            Metadata::by("tester").named("adder v2"),
            &eda::cells::ripple_adder(2).to_bytes(),
            Derivation::by_tool(editor_inst, [netlist]),
        )
        .expect("records");

    // The layout is now out of date with respect to its netlist input.
    let stale = session
        .db()
        .staleness_of(layout)
        .expect("checks")
        .expect("stale");
    assert_eq!(stale.outdated_input, netlist);
    assert_eq!(stale.newer_version, v2);

    // Automatic retrace: re-run the flow behind the layout against the
    // newest versions.
    let before = session.db().len();
    let retrace = session.retrace(layout).expect("retraces");
    assert!(!retrace.already_current);
    assert_eq!(retrace.goal_instances.len(), 1);
    let new_layout = retrace.goal_instances[0];
    assert_ne!(new_layout, layout, "a new layout version was produced");
    assert!(session.db().len() > before);

    // The new layout is derived from v2 and is current.
    let derivation = session
        .db()
        .instance(new_layout)
        .expect("present")
        .derivation()
        .expect("derived")
        .clone();
    assert!(derivation.inputs.contains(&v2));
    assert!(session.db().is_up_to_date(new_layout).expect("checks"));

    // Its contents really are the new circuit.
    let bytes = session
        .db()
        .data_of(new_layout)
        .expect("present")
        .expect("data");
    let decoded = eda::Layout::from_bytes(bytes).expect("layout");
    assert_eq!(decoded.name, "adder2", "placed from the v2 netlist");
}

#[test]
fn retrace_with_no_changes_reuses_everything() {
    let (mut session, _, layout, _) = place_and_extract();
    let before = session.db().len();
    let retrace = session.retrace(layout).expect("retraces");
    assert!(retrace.already_current, "nothing to re-run");
    assert_eq!(retrace.goal_instances, vec![layout]);
    assert_eq!(session.db().len(), before, "no new instances");
}

#[test]
fn cached_query_answers_has_this_extraction_been_performed() {
    let (session, _, layout, extracted) = place_and_extract();
    let schema = session.schema().clone();
    let extractor = schema.require("Extractor").expect("known");
    let ext_entity = schema.require("ExtractedNetlist").expect("known");
    let extractor_inst = session.db().instances_of(extractor)[0];

    // §3.3: "a query such as 'find the netlist that was extracted from
    // this layout' could determine whether such an extraction had yet
    // been performed".
    assert_eq!(
        session
            .db()
            .current_cached(ext_entity, Some(extractor_inst), &[layout]),
        Some(extracted)
    );
    // An extraction that never happened.
    let other = session.db().instances_of(extractor)[0];
    assert_eq!(
        session
            .db()
            .current_cached(ext_entity, Some(other), &[extractor_inst]),
        None
    );
}
