//! Trace/journal round-trip (ISSUE 4 satellite): execute the Fig. 5
//! fixture in parallel with tracing on, persist the session to a
//! durable workspace, reopen it in a "fresh process", and assert the
//! span tree reconstructed from the persisted report matches the live
//! trace — same tasks, same parents, same dependency DAG, same
//! ordering, and the same concurrency (overlapping disjoint branches).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

use hercules::exec::{report_to_trace, toy};
use hercules::obs::profile::{self, ProfileReport};
use hercules::{Session, Workspace};

fn temp_root(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("hercules-trace-rt-{tag}-{}", std::process::id()))
}

/// Task label → sorted dependency labels, from a profile.
fn dag_of(prof: &ProfileReport) -> BTreeMap<String, BTreeSet<String>> {
    prof.tasks
        .iter()
        .map(|t| (t.label.clone(), t.deps.iter().cloned().collect()))
        .collect()
}

#[test]
fn fig5_trace_survives_the_durable_workspace() {
    let schema = Arc::new(hercules::schema::fixtures::fig1());
    let registry = toy::text_registry_with(
        &schema,
        toy::TextTool {
            work: Duration::from_millis(4),
            ..toy::TextTool::default()
        },
    );
    let mut session = Session::new(schema.clone(), registry, "jbb");
    session.executor_mut().options_mut().parallel = true;
    toy::seed_everything(session.db_mut(), "setup");
    let flow = hercules::flow::fixtures::fig5(schema.clone()).expect("fixture");
    session.install_flow(flow);
    session.bind_latest().expect("binds");
    session.run().expect("runs");

    // --- The live trace: a real span tree from the executor. ---
    let live_events = session.trace_events();
    let live_spans = profile::build_spans(&live_events);
    let live = profile::profile(&live_events);
    assert!(
        live.achieved_parallelism > 1.0,
        "fig5's disjoint branches must overlap: {:.2}x",
        live.achieved_parallelism
    );
    // Parents in the live tree: execute → epoch → task → attempt.
    let roots: Vec<_> = live_spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "one root span");
    assert_eq!(roots[0].name, "execute");
    for task in live_spans.iter().filter(|s| s.name == "task") {
        let parent = live_spans
            .iter()
            .find(|s| s.id == task.parent)
            .expect("task has a parent span");
        assert_eq!(
            parent.name, "epoch",
            "live tasks sit under the scheduler-epoch span"
        );
    }

    // --- Persist (checkpoint holds the report) and "crash". ---
    let root = temp_root("fig5");
    std::fs::remove_dir_all(&root).ok();
    Workspace::create(&root, &session).expect("persists");
    drop(session);

    // --- A fresh process recovers and resynthesizes the trace. ---
    let (_ws, restored, recovery) =
        Workspace::open_session(&root, |s| toy::text_registry(s)).expect("reopens");
    assert_eq!(recovery.ops_replayed, 0, "all state is in the checkpoint");
    let report = restored.last_report().expect("report survived");
    let replay_events = report_to_trace(report, restored.flow().ok());
    let replay_spans = profile::build_spans(&replay_events);
    let replayed = profile::profile(&replay_events);

    // Parents: every replayed task hangs off the single execute root.
    let replay_root: Vec<_> = replay_spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(replay_root.len(), 1);
    assert_eq!(replay_root[0].name, "execute");
    for task in replay_spans.iter().filter(|s| s.name == "task") {
        assert_eq!(task.parent, replay_root[0].id);
    }

    // Same tasks, same dependency DAG.
    assert_eq!(dag_of(&live), dag_of(&replayed), "task DAG round-trips");

    // Ordering: a dependency finishes (commit is serial) before its
    // consumer starts. Start offsets are persisted at µs grain, so
    // allow 1µs of truncation slack.
    let replay_task = |label: &str| {
        replayed
            .tasks
            .iter()
            .find(|t| t.label == label)
            .expect("task present")
    };
    for task in &replayed.tasks {
        for dep in &task.deps {
            let dep = replay_task(dep);
            assert!(
                dep.start_ns + dep.total_ns <= task.start_ns + 1_000,
                "dependency `{}` runs past the start of `{}`",
                dep.label,
                task.label
            );
        }
    }
    // Live start order is preserved by the persisted offsets (ties
    // allowed — the journal stores microseconds).
    let order = |prof: &ProfileReport| -> Vec<String> {
        let mut tasks: Vec<_> = prof.tasks.iter().collect();
        tasks.sort_by_key(|t| (t.start_ns / 1_000, t.label.clone()));
        tasks.into_iter().map(|t| t.label.clone()).collect()
    };
    assert_eq!(order(&live), order(&replayed), "start order round-trips");

    // Concurrency: the replayed intervals still overlap — disjoint
    // branches ran in parallel, and the synthesized lanes show it.
    assert!(
        replayed.achieved_parallelism > 1.0,
        "replayed parallelism: {:.2}x",
        replayed.achieved_parallelism
    );
    let lanes: BTreeSet<u64> = replay_spans
        .iter()
        .filter(|s| s.name == "task")
        .map(|s| s.tid)
        .collect();
    assert!(lanes.len() > 1, "overlap forces multiple lanes: {lanes:?}");

    // And the Chrome export works from the replayed stream too.
    let chrome = hercules::obs::chrome::to_chrome_trace(&replay_events);
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("replayed"));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn old_journals_without_timestamps_still_load() {
    // ExecEvent gained wall/mono stamps and TaskRecordSpec gained
    // started_us; both are serde-defaulted. A spec JSON written before
    // this PR (no such fields) must still restore.
    let event: hercules::ExecEvent = serde_json::from_str(
        r#"{"operation":"run","tasks":2,"runs":2,"cache_hits":0,
            "failed":0,"skipped":0,"failures":[],"error":null}"#,
    )
    .expect("old event parses");
    assert_eq!(event.wall_unix_ms, 0);
    assert_eq!(event.mono_ns, 0);

    let record: hercules::TaskRecordSpec =
        serde_json::from_str(r#"{"outputs":[0],"action":"Cached","attempts":1,"duration_ms":42}"#)
            .expect("old record parses");
    assert_eq!(record.started_us, 0);
}
