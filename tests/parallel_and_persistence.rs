//! Experiment F6 (parallel disjoint branches) with the real tools, and
//! persistence round trips for schema, history and flow catalog.

use hercules::{eda, history::Derivation, history::HistorySpec, history::Metadata, Session};

fn seed_two_netlists(session: &mut Session) -> Vec<hercules::history::InstanceId> {
    let schema = session.schema().clone();
    let editor = schema.require("CircuitEditor").expect("known");
    let edited = schema.require("EditedNetlist").expect("known");
    let tool = session.db().instances_of(editor)[0];
    [eda::cells::full_adder(), eda::cells::full_adder_pla()]
        .iter()
        .map(|n| {
            session
                .db_mut()
                .record_derived(
                    edited,
                    Metadata::by("tester").named(&n.name),
                    &n.to_bytes(),
                    Derivation::by_tool(tool, []),
                )
                .expect("records")
        })
        .collect()
}

/// Builds the Fig. 6 verification flow with its two disjoint input
/// branches and runs it with the given parallelism; returns the
/// verification payload.
fn run_fig6(parallel: bool) -> Vec<u8> {
    let mut session = Session::odyssey("tester");
    session.executor_mut().options_mut().parallel = parallel;
    let ids = seed_two_netlists(&mut session);

    // Verification <- (Netlist branch, ExtractedNetlist branch).
    let verification = session.start_from_goal("Verification").expect("starts");
    let created = session.expand(verification).expect("expands");
    let netlist_node = created[1];
    let extracted_node = created[2];
    session.select(netlist_node, ids[0]);
    let created = session.expand(extracted_node).expect("expands"); // extractor, layout
    let layout_node = created[1];
    let created = session.expand(layout_node).expect("expands"); // placer, netlist, rules
    session.select(created[1], ids[0]);
    session.bind_latest().expect("binds");
    session.run().expect("runs");
    let report = session.last_report().expect("ran").clone();
    session
        .db()
        .data_of(report.single(verification))
        .expect("present")
        .expect("data")
        .to_vec()
}

#[test]
fn parallel_and_serial_executions_agree_with_real_tools() {
    let serial = run_fig6(false);
    let parallel = run_fig6(true);
    assert_eq!(serial, parallel);
    let report = eda::Verification::from_bytes(&serial).expect("decodes");
    assert!(report.matched, "{:?}", report.mismatches);
}

#[test]
fn history_database_persists_and_reloads() {
    let mut session = Session::odyssey("tester");
    seed_two_netlists(&mut session);

    // Run something so the history has derivations.
    let layout = session.start_from_goal("Layout").expect("starts");
    session.expand(layout).expect("expands");
    session.bind_latest().expect("binds");
    session.run().expect("runs");

    let spec = HistorySpec::from_db(session.db());
    let json = serde_json::to_string(&spec).expect("serializes");
    let back: HistorySpec = serde_json::from_str(&json).expect("deserializes");
    let reloaded = back.load(session.schema().clone()).expect("replays");
    assert_eq!(reloaded.len(), session.db().len());
    // Derivations survive byte-for-byte.
    for (a, b) in session.db().instances().zip(reloaded.instances()) {
        assert_eq!(a.derivation(), b.derivation());
        assert_eq!(a.meta(), b.meta());
    }
}

#[test]
fn schema_and_catalog_persist_and_reload() {
    let mut session = Session::odyssey("tester");
    let layout = session.start_from_goal("Layout").expect("starts");
    session.expand(layout).expect("expands");
    session
        .store_flow("place", "placement flow")
        .expect("stores");

    // Schema round trip.
    let schema_json = serde_json::to_string(session.schema().as_ref()).expect("serializes");
    let schema_back: hercules::schema::TaskSchema =
        serde_json::from_str(&schema_json).expect("deserializes + revalidates");
    assert_eq!(&schema_back, session.schema().as_ref());

    // Catalog round trip, instantiated against the reloaded schema.
    let catalog_json = serde_json::to_string(session.catalog()).expect("serializes");
    let catalog_back: hercules::flow::FlowCatalog =
        serde_json::from_str(&catalog_json).expect("deserializes");
    let flow = catalog_back
        .instantiate("place", std::sync::Arc::new(schema_back))
        .expect("instantiates");
    assert_eq!(flow.len(), 4);
}
