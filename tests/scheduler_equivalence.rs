//! Property test (ISSUE 5 satellite): the dataflow scheduler is
//! observationally equivalent to the legacy wave executor on random
//! layered DAGs.
//!
//! For every generated flow the wave schedule (serial) is the oracle;
//! the dataflow scheduler — serial and parallel — must produce the same
//! data for every output node, the same multiset of task actions (the
//! invocation cache hands `Ran` to whichever twin commits first, so
//! per-node `Ran`/`Cached` assignment is schedule-dependent but the
//! counts are not), and, with a failing tool injected, the same
//! `Failed` and `Skipped` subtask sets under
//! [`FailurePolicy::ContinueDisjoint`] and an error under
//! [`FailurePolicy::Abort`]. Data equality across every output also
//! certifies dependency order: a consumer prepared before its producer
//! committed would read stale or missing inputs and change the bytes.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use hercules::exec::{
    toy, Binding, Encapsulation, EncapsulationRegistry, Executor, FailurePolicy, SchedulerKind,
    TaskAction, TaskRecord,
};
use hercules::flow::TaskGraph;
use hercules::history::{HistoryDb, Metadata};
use hercules::schema::{EntityTypeId, SchemaBuilder, TaskSchema};
use proptest::prelude::*;

/// A generated layered DAG: its schema, the tool entities in creation
/// order, and the goal (last-layer) entities to seed the flow from.
struct Dag {
    schema: Arc<TaskSchema>,
    tools: Vec<EntityTypeId>,
    sources: Vec<EntityTypeId>,
    goals: Vec<EntityTypeId>,
}

/// Deterministic layered-DAG builder: layer 0 is `widths[0]` primary
/// source entities; every entity of layer `l > 0` is produced by its
/// own tool from one or two entities of layer `l − 1` chosen by a
/// seeded LCG (layer-to-layer edges keep the graph acyclic while the
/// seed varies fan-in and sharing).
fn build_dag(widths: &[usize], seed: u64) -> Dag {
    let mut state = seed | 1;
    let mut lcg = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut b = SchemaBuilder::new();
    let sources: Vec<EntityTypeId> = (0..widths[0].max(1))
        .map(|i| b.data(&format!("S{i}")))
        .collect();
    let mut prev = sources.clone();
    let mut tools = Vec::new();
    for (l, &w) in widths.iter().enumerate().skip(1) {
        let mut layer = Vec::new();
        for i in 0..w.max(1) {
            let tool = b.tool(&format!("T{l}_{i}"));
            let entity = b.data(&format!("D{l}_{i}"));
            b.functional(entity, tool);
            let mut deps = BTreeSet::new();
            deps.insert(lcg() % prev.len());
            if lcg() % 2 == 0 {
                deps.insert(lcg() % prev.len());
            }
            for k in deps {
                b.data_dep(entity, prev[k]);
            }
            tools.push(tool);
            layer.push(entity);
        }
        prev = layer;
    }
    Dag {
        schema: Arc::new(b.build().expect("layered DAG is a valid schema")),
        tools,
        sources,
        goals: prev,
    }
}

/// Seeds one instance per source entity (distinct payloads) and one per
/// tool, builds the flow by expanding every goal, and binds the leaves.
fn seed_and_bind(dag: &Dag) -> (TaskGraph, HistoryDb, Binding) {
    let mut db = HistoryDb::new(dag.schema.clone());
    for (i, &s) in dag.sources.iter().enumerate() {
        db.record_primary(
            s,
            Metadata::by("prop").named(&format!("s{i}")),
            format!("s{i}").as_bytes(),
        )
        .expect("source seeds");
    }
    for &t in &dag.tools {
        db.record_primary(t, Metadata::by("prop").named("tool"), b"")
            .expect("tool seeds");
    }
    let mut flow = TaskGraph::new(dag.schema.clone());
    for &goal in &dag.goals {
        let node = flow.seed(goal).expect("seeds");
        flow.expand_all(node).expect("expands");
    }
    let mut binding = Binding::new();
    binding.bind_latest(&flow, &db);
    (flow, db, binding)
}

/// Registry: the shared text tool everywhere, except `failing`, which
/// gets the always-failing tool.
fn registry(dag: &Dag, failing: Option<EntityTypeId>) -> EncapsulationRegistry {
    let text: Arc<dyn Encapsulation> = Arc::new(toy::TextTool::default());
    let fail: Arc<dyn Encapsulation> = Arc::new(toy::FailingTool);
    let mut reg = EncapsulationRegistry::new();
    for &t in &dag.tools {
        reg.register(
            t,
            if Some(t) == failing {
                fail.clone()
            } else {
                text.clone()
            },
        );
    }
    reg
}

struct Run {
    report: Result<hercules::exec::ExecReport, hercules::exec::ExecError>,
    db: HistoryDb,
}

fn run(
    dag: &Dag,
    flow: &TaskGraph,
    db: &HistoryDb,
    binding: &Binding,
    failing: Option<EntityTypeId>,
    (scheduler, parallel): (SchedulerKind, bool),
    policy: FailurePolicy,
) -> Run {
    let mut db = db.clone();
    let mut executor = Executor::new(registry(dag, failing));
    executor.options_mut().parallel = parallel;
    executor.options_mut().scheduler = scheduler;
    executor.options_mut().failure = policy;
    let report = executor.execute(flow, binding, &mut db);
    Run { report, db }
}

/// Record key: the sorted output nodes of the subtask.
fn keyed(tasks: &[TaskRecord]) -> BTreeMap<Vec<usize>, &TaskRecord> {
    tasks
        .iter()
        .map(|r| {
            let mut key: Vec<usize> = r.outputs.iter().map(|n| n.index()).collect();
            key.sort_unstable();
            (key, r)
        })
        .collect()
}

fn kind_counts(tasks: &[TaskRecord]) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for r in tasks {
        let kind = match r.action {
            TaskAction::Ran { .. } => "ran",
            TaskAction::Cached => "cached",
            TaskAction::Failed { .. } => "failed",
            TaskAction::Skipped => "skipped",
        };
        *counts.entry(kind).or_insert(0) += 1;
    }
    counts
}

fn terminal_keys(tasks: &[TaskRecord], want_failed: bool) -> BTreeSet<Vec<usize>> {
    keyed(tasks)
        .into_iter()
        .filter(|(_, r)| match r.action {
            TaskAction::Failed { .. } => want_failed,
            TaskAction::Skipped => !want_failed,
            _ => false,
        })
        .map(|(k, _)| k)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Success path: same bytes per output node, same action multiset,
    /// same subtask count, whichever scheduler runs the flow.
    #[test]
    fn dataflow_matches_wave_on_random_dags(
        widths in prop::collection::vec(1usize..4, 2..5),
        seed in 0u64..u64::MAX,
    ) {
        let dag = build_dag(&widths, seed);
        let (flow, db, binding) = seed_and_bind(&dag);
        let oracle = run(&dag, &flow, &db, &binding, None,
                         (SchedulerKind::Wave, false), FailurePolicy::Abort);
        let oracle_report = oracle.report.expect("wave oracle succeeds");
        for (scheduler, parallel) in [
            (SchedulerKind::Dataflow, false),
            (SchedulerKind::Dataflow, true),
            (SchedulerKind::Wave, true),
        ] {
            let got = run(&dag, &flow, &db, &binding, None,
                          (scheduler, parallel), FailurePolicy::Abort);
            let report = got.report.expect("scheduler succeeds");
            prop_assert_eq!(report.tasks.len(), oracle_report.tasks.len());
            prop_assert_eq!(kind_counts(&report.tasks), kind_counts(&oracle_report.tasks));
            for node in flow.outputs() {
                let want = oracle.db
                    .data_of(oracle_report.single(node)).expect("present").expect("has data");
                let have = got.db
                    .data_of(report.single(node)).expect("present").expect("has data");
                prop_assert_eq!(have, want, "output node {} bytes differ", node);
            }
        }
    }

    /// Failure path: inject one always-failing tool. Under
    /// `ContinueDisjoint` every scheduler reports the same `Failed` and
    /// `Skipped` subtask sets (the dead cone is structural, not
    /// schedule-dependent); under `Abort` every scheduler errors.
    #[test]
    fn failure_cones_match_between_schedulers(
        widths in prop::collection::vec(1usize..4, 2..5),
        seed in 0u64..u64::MAX,
        failing_seed in 0usize..1usize << 16,
    ) {
        let dag = build_dag(&widths, seed);
        let (flow, db, binding) = seed_and_bind(&dag);
        // Only tools a goal actually depends on appear in the flow;
        // pick the failing one from those so the cone is non-empty.
        let used: Vec<EntityTypeId> = {
            let present: BTreeSet<EntityTypeId> = flow
                .node_ids()
                .filter_map(|n| flow.entity_of(n).ok())
                .collect();
            dag.tools.iter().copied().filter(|t| present.contains(t)).collect()
        };
        prop_assert!(!used.is_empty());
        let failing = Some(used[failing_seed % used.len()]);
        let oracle = run(&dag, &flow, &db, &binding, failing,
                         (SchedulerKind::Wave, false), FailurePolicy::ContinueDisjoint);
        let oracle_report = oracle.report.expect("ContinueDisjoint still reports");
        let want_failed = terminal_keys(&oracle_report.tasks, true);
        let want_skipped = terminal_keys(&oracle_report.tasks, false);
        prop_assert!(!want_failed.is_empty(), "the failing tool is reachable");
        for (scheduler, parallel) in [
            (SchedulerKind::Dataflow, false),
            (SchedulerKind::Dataflow, true),
            (SchedulerKind::Wave, true),
        ] {
            let got = run(&dag, &flow, &db, &binding, failing,
                          (scheduler, parallel), FailurePolicy::ContinueDisjoint);
            let report = got.report.expect("ContinueDisjoint still reports");
            prop_assert_eq!(terminal_keys(&report.tasks, true), want_failed.clone());
            prop_assert_eq!(terminal_keys(&report.tasks, false), want_skipped.clone());

            let aborted = run(&dag, &flow, &db, &binding, failing,
                              (scheduler, parallel), FailurePolicy::Abort);
            prop_assert!(aborted.report.is_err(), "Abort surfaces the failure");
        }
    }
}
