//! Property tests for the durable store: journal-frame corruption
//! detection and whole-session document round-trips over generated
//! histories.

use hercules::encaps::odyssey_registry;
use hercules::history::{Derivation, Metadata};
use hercules::store::{encode_frame, scan_frames, JournalOp};
use hercules::{FlowOp, Session, SessionSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flipping any single byte anywhere in a framed journal is
    /// detected: the scan never returns the original payload sequence.
    /// (CRC32 detects every burst of up to 32 bits, which covers a
    /// one-byte flip; a flip in a length field makes the frame torn or
    /// fail its checksum.)
    #[test]
    fn corrupting_any_single_byte_of_a_frame_is_detected(
        payload in prop::collection::vec(0u8..=255, 0..48),
        extra in prop::collection::vec(0u8..=255, 0..16),
        pos_seed in 0usize..100_000,
        mask in 1u8..=255,
    ) {
        let mut buf = encode_frame(&payload);
        buf.extend_from_slice(&encode_frame(&extra));
        let clean = scan_frames(&buf);
        prop_assert_eq!(clean.payloads.len(), 2);
        prop_assert_eq!(clean.trailing, 0);

        let pos = pos_seed % buf.len();
        let mut dirty = buf.clone();
        dirty[pos] ^= mask;
        let scan = scan_frames(&dirty);
        prop_assert_ne!(scan.payloads, clean.payloads);
    }

    /// The frame checksum protects serialized session documents too:
    /// a one-byte flip in a framed `SessionSpec` never goes unnoticed
    /// (raw JSON could silently absorb a digit flip — the frame CRC is
    /// what rules that out in the journal).
    #[test]
    fn framed_session_documents_detect_single_byte_corruption(
        pos_seed in 0usize..100_000,
        mask in 1u8..=255,
    ) {
        let mut session = Session::odyssey("prop");
        session.start_from_goal("Layout").expect("starts");
        let json = SessionSpec::from_session(&session)
            .to_json()
            .expect("serializes");
        let buf = encode_frame(json.as_bytes());
        let pos = pos_seed % buf.len();
        let mut dirty = buf.clone();
        dirty[pos] ^= mask;
        let scan = scan_frames(&dirty);
        prop_assert_ne!(scan.payloads, vec![json.into_bytes()]);
    }

    /// Serialize → parse → restore → re-capture is the identity on
    /// session documents, over generated histories (arbitrary recorded
    /// data, optional flow construction, optional unexpand tombstones).
    #[test]
    fn session_documents_round_trip_over_generated_histories(
        cells in prop::collection::vec(
            (prop::collection::vec(0u8..=255, 0..32), 0u32..1000),
            0..4,
        ),
        build_flow in prop::bool::ANY,
        unexpand in prop::bool::ANY,
    ) {
        let mut session = Session::odyssey("prop");
        let schema = session.schema().clone();
        let editor = schema.require("CircuitEditor").expect("known");
        let edited = schema.require("EditedNetlist").expect("known");
        let tool = session.db().instances_of(editor)[0];
        for (data, tag) in &cells {
            session
                .db_mut()
                .record_derived(
                    edited,
                    Metadata::by("prop").named(&format!("cell-{tag}")),
                    data,
                    Derivation::by_tool(tool, []),
                )
                .expect("records");
        }
        if build_flow {
            let layout = session.start_from_goal("Layout").expect("starts");
            let created = session.expand(layout).expect("expands");
            session
                .specialize(created[1], "EditedNetlist")
                .expect("specializes");
            session.expand(created[1]).expect("expands");
            if unexpand {
                session.unexpand(created[1]).expect("unexpands");
            } else {
                session.bind_latest().expect("binds");
            }
        }

        let spec = SessionSpec::from_session(&session);
        let json = spec.to_json().expect("serializes");
        let parsed = SessionSpec::from_json(&json).expect("parses");
        prop_assert_eq!(&parsed, &spec);

        let restored = parsed
            .restore(odyssey_registry(session.schema()))
            .expect("restores");
        prop_assert_eq!(SessionSpec::from_session(&restored), spec);
    }

    /// Journal operations survive serialize → frame → scan → parse.
    #[test]
    fn journal_ops_round_trip_through_frames(
        seeds in prop::collection::vec((0usize..6, 0u64..50, 0usize..10), 1..12),
    ) {
        let ops: Vec<JournalOp> = seeds
            .iter()
            .map(|&(kind, a, b)| match kind {
                0 => JournalOp::Flow(FlowOp::Seed {
                    entity: format!("Entity{a}"),
                }),
                1 => JournalOp::Flow(FlowOp::Expand {
                    node: b,
                    optional: vec![format!("Opt{a}")],
                    reuse: vec![(format!("Reuse{a}"), b)],
                    reuse_existing: a % 2 == 0,
                }),
                2 => JournalOp::DataStart { instance: a },
                3 => JournalOp::Select {
                    node: b,
                    instances: vec![a, a + 1],
                },
                4 => JournalOp::BindLatest,
                _ => JournalOp::StoreFlow {
                    name: format!("flow-{a}"),
                    description: format!("description {b}"),
                },
            })
            .collect();

        let mut buf = Vec::new();
        for op in &ops {
            let payload = serde_json::to_vec(op).expect("encodes");
            buf.extend_from_slice(&encode_frame(&payload));
        }
        let scan = scan_frames(&buf);
        prop_assert_eq!(scan.trailing, 0);
        prop_assert_eq!(scan.payloads.len(), ops.len());
        let back: Vec<JournalOp> = scan
            .payloads
            .iter()
            .map(|p| serde_json::from_slice(p).expect("parses"))
            .collect();
        prop_assert_eq!(back, ops);
    }
}
