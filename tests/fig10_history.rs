//! Experiment F10: browsing the design history (Fig. 10) — backward
//! chaining reveals the tool and data behind a performance, forward
//! chaining finds dependents, and the flow doubles as a query template.

use hercules::{history::BrowserQuery, Session};

/// Runs the full simulate task once; returns (session, netlist editor
/// script instance, performance instance).
fn simulate_adder() -> (
    Session,
    hercules::history::InstanceId,
    hercules::history::InstanceId,
) {
    let mut session = Session::odyssey("jbb");
    let perf = session.start_from_goal("Performance").expect("starts");
    let created = session.expand(perf).expect("expands");
    let circuit = created[1];
    let created = session.expand(circuit).expect("expands");
    let netlist = created[1];
    session
        .specialize(netlist, "EditedNetlist")
        .expect("subtype");
    session.expand(netlist).expect("expands");
    let models = session.flow().expect("flow").data_inputs_of(circuit)[0];
    session.expand(models).expect("expands");

    // Select the full-adder editor script.
    let editor_node = session
        .flow()
        .expect("flow")
        .tool_of(netlist)
        .expect("tool");
    let script = session
        .browse(editor_node)
        .expect("browses")
        .into_iter()
        .find(|&i| {
            session
                .db()
                .instance(i)
                .map(|x| x.meta().name.contains("Full adder"))
                .unwrap_or(false)
        })
        .expect("seeded script");
    session.select(editor_node, script);
    session.bind_latest().expect("binds");
    session.run().expect("runs");

    let report = session.last_report().expect("ran").clone();
    let perf_instance = report.single(perf);
    (session, script, perf_instance)
}

#[test]
fn history_menu_reveals_tool_and_inputs_one_level_at_a_time() {
    let (session, _, perf) = simulate_adder();

    // Fig. 10: "the Simulator and Netlist entities do not appear until
    // after History is chosen."
    let level0 = session.history_of(perf, Some(0)).expect("chains");
    assert!(level0.tool.is_none() && level0.inputs.is_empty());

    let level1 = session.history_of(perf, Some(1)).expect("chains");
    let tool = level1.tool.expect("derived by the simulator");
    let tool_name = session
        .db()
        .instance(tool)
        .expect("present")
        .meta()
        .name
        .clone();
    assert!(
        tool_name.contains("hspice"),
        "simulator revealed: {tool_name}"
    );
    assert_eq!(level1.inputs.len(), 2, "circuit + stimuli revealed");
    // But the circuit's own derivation stays hidden at depth 1.
    assert!(level1.inputs[0].inputs.is_empty());

    // Unlimited chaining reaches the primary editor script:
    // perf ← circuit ← netlist (two data steps), with the script as the
    // netlist's tool.
    let full = session.history_of(perf, None).expect("chains");
    assert_eq!(full.depth(), 2);
    let flat = full.flatten();
    let has_script = flat.iter().any(|&i| {
        session
            .db()
            .instance(i)
            .map(|x| x.meta().name.contains("Full adder"))
            .unwrap_or(false)
    });
    assert!(has_script, "the editor script appears in the full chain");
}

#[test]
fn forward_chaining_finds_all_performances_of_a_netlist() {
    let (session, script, perf) = simulate_adder();
    let schema = session.schema().clone();
    let perf_entity = schema.require("Performance").expect("known");

    // "Finding all of the circuit performances derived from a given
    // netlist": chase forward from the editor script that produced it.
    let derived = session
        .db()
        .find_derived(script, perf_entity)
        .expect("chains");
    assert_eq!(derived, vec![perf]);
}

#[test]
fn flow_is_a_query_template() {
    let (session, _, perf) = simulate_adder();
    let schema = session.schema().clone();

    // Template: Performance <- (Simulator, Circuit, Stimuli).
    let mut template = hercules::flow::TaskGraph::new(schema.clone());
    let perf_node = template
        .seed(schema.require("Performance").expect("known"))
        .expect("seeds");
    template.expand(perf_node).expect("expands");

    let matches = session
        .db()
        .query_template(&template, &[], None)
        .expect("queries");
    assert_eq!(matches.len(), 1);
    let assigned = matches[0]
        .iter()
        .find(|(n, _)| *n == perf_node)
        .expect("assigned")
        .1;
    assert_eq!(assigned, perf);
}

#[test]
fn browser_filters_match_fig9() {
    let (session, _, _) = simulate_adder();
    let schema = session.schema().clone();
    let editor = schema.require("CircuitEditor").expect("known");

    // The Fig. 9 browser: filter CircuitEditor instances by user.
    let by_director = BrowserQuery::family(editor)
        .user("director")
        .run(session.db())
        .expect("queries");
    assert_eq!(by_director.len(), 1);
    let inst = session.db().instance(by_director[0]).expect("present");
    assert!(inst.meta().name.contains("Full adder"));

    // Keyword filter on stimuli.
    let stimuli = schema.require("Stimuli").expect("known");
    let exhaustive = BrowserQuery::family(stimuli)
        .keyword("exhaustive")
        .run(session.db())
        .expect("queries");
    assert_eq!(exhaustive.len(), 1);
}
