//! Experiment E4: §3.3's encapsulation techniques end to end —
//! three optimizer tool instances sharing one encapsulation, with a
//! `Simulator` passed to the optimizer *as data* ("an optimization
//! procedure may have a circuit simulator passed to it as an
//! argument").

use hercules::{eda, history::Derivation, history::Metadata, Session};

fn seed_netlist(session: &mut Session) -> hercules::history::InstanceId {
    let schema = session.schema().clone();
    let editor = schema.require("CircuitEditor").expect("known");
    let edited = schema.require("EditedNetlist").expect("known");
    let tool = session.db().instances_of(editor)[0];
    session
        .db_mut()
        .record_derived(
            edited,
            Metadata::by("tester").named("nand-under-optimization"),
            &eda::cosmos::nand2_transistors().to_bytes(),
            Derivation::by_tool(tool, []),
        )
        .expect("records")
}

#[test]
fn optimizer_flow_with_tool_as_data_input() {
    let mut session = Session::odyssey("tester");
    let schema = session.schema().clone();
    let netlist = seed_netlist(&mut session);

    // OptimizedNetlist <- Optimizer(f) <- Netlist, DeviceModels,
    // Simulator(d!) — the simulator is a data input here.
    let opt = session.start_from_goal("OptimizedNetlist").expect("starts");
    let created = session.expand(opt).expect("expands");
    // created = [Optimizer, Netlist, DeviceModels, Simulator-as-data].
    assert_eq!(created.len(), 4);
    let netlist_node = created[1];
    session.select(netlist_node, netlist);
    session.bind_latest().expect("binds");
    session.run().expect("runs");
    let report = session.last_report().expect("ran").clone();
    let optimized = report.single(opt);

    // The product is a re-sized transistor netlist.
    let bytes = session
        .db()
        .data_of(optimized)
        .expect("present")
        .expect("data");
    let decoded = eda::Netlist::from_bytes(bytes).expect("netlist bytes");
    assert!(decoded.is_transistor_level());
    assert_eq!(decoded.mos_count(), 4);

    // The derivation records the simulator *instance* among the inputs.
    let simulator = schema.require("Simulator").expect("known");
    let sim_inst = session.db().instances_of(simulator)[0];
    let derivation = session
        .db()
        .instance(optimized)
        .expect("present")
        .derivation()
        .expect("derived")
        .clone();
    assert!(
        derivation.inputs.contains(&sim_inst),
        "the tool-as-data input is part of the derivation history"
    );
}

#[test]
fn three_optimizer_instances_fan_out_through_one_encapsulation() {
    let mut session = Session::odyssey("tester");
    let schema = session.schema().clone();
    let netlist = seed_netlist(&mut session);

    let opt = session.start_from_goal("OptimizedNetlist").expect("starts");
    let created = session.expand(opt).expect("expands");
    let optimizer_node = created[0];
    let netlist_node = created[1];
    session.select(netlist_node, netlist);

    // Multi-select ALL THREE optimizer tool instances: the task runs
    // once per tool, all through the single shared encapsulation.
    let optimizer_entity = schema.require("Optimizer").expect("known");
    let all_three = session.db().instances_of(optimizer_entity);
    assert_eq!(all_three.len(), 3);
    session.select_many(optimizer_node, &all_three);
    session.bind_latest().expect("binds");
    session.run().expect("runs");
    let report = session.last_report().expect("ran").clone();
    assert_eq!(report.runs(), 3, "one run per optimizer instance");
    let results = report.instances_of(opt);
    assert_eq!(results.len(), 3);

    // Each product names the optimizer that made it, and all three are
    // distinct instances with distinct derivations.
    let mut names = Vec::new();
    for &r in results {
        let inst = session.db().instance(r).expect("present");
        names.push(inst.meta().name.clone());
    }
    assert!(names.iter().any(|n| n.contains("hillclimb")), "{names:?}");
    assert!(names.iter().any(|n| n.contains("anneal")), "{names:?}");
    assert!(names.iter().any(|n| n.contains("random")), "{names:?}");
}

#[test]
fn optimizer_results_are_deterministic_per_simulator_instance() {
    // Same inputs, same simulator => identical optimized netlist.
    let run = || {
        let mut session = Session::odyssey("tester");
        let netlist = seed_netlist(&mut session);
        let opt = session.start_from_goal("OptimizedNetlist").expect("starts");
        let created = session.expand(opt).expect("expands");
        session.select(created[1], netlist);
        session.bind_latest().expect("binds");
        session.run().expect("runs");
        let report = session.last_report().expect("ran").clone();
        session
            .db()
            .data_of(report.single(opt))
            .expect("present")
            .expect("data")
            .to_vec()
    };
    assert_eq!(run(), run());
}
