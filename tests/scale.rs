//! Scale test: a large synthetic schema driven end to end — hundreds of
//! subtasks sequenced automatically, recorded in the history, and
//! queried back.

use std::sync::Arc;

use hercules::exec::{toy, Binding, Executor};
use hercules::flow::TaskGraph;
use hercules::history::HistoryDb;
use hercules::schema::synth::SynthConfig;

#[test]
fn deep_wide_flow_executes_and_records_everything() {
    let cfg = SynthConfig {
        layers: 6,
        width: 8,
        fanin: 2,
        subtypes: 0,
    };
    let schema = Arc::new(cfg.generate());

    // One flow constructing every goal-layer entity, sharing whatever
    // intermediate nodes opportunistic reuse finds.
    let mut flow = TaskGraph::new(schema.clone());
    for goal in cfg.goal_layer(&schema) {
        let node = flow.seed(goal).expect("seeds");
        flow.expand_all(node).expect("expands");
    }
    flow.validate_for_execution().expect("complete");
    assert!(flow.len() > 200, "a genuinely large flow: {}", flow.len());

    let mut db = HistoryDb::new(schema.clone());
    toy::seed_everything(&mut db, "scale");
    let mut binding = Binding::new();
    assert!(binding.bind_latest(&flow, &db).is_empty());

    let executor = Executor::new(toy::text_registry(&schema));
    let before = db.len();
    let report = executor.execute(&flow, &binding, &mut db).expect("runs");
    // Identical transformations are deduplicated: exactly one run per
    // distinct (tool, inputs) pair — (layers-1) × width of them.
    assert_eq!(report.runs(), (cfg.layers - 1) * cfg.width);
    assert_eq!(db.len(), before + report.runs());

    // Every interior node produced exactly one instance, every
    // derivation is well-formed, and backward chains terminate.
    for node in flow.interior() {
        let instances = report.instances_of(node);
        assert_eq!(instances.len(), 1);
        let tree = db.backward_chain(instances[0], None).expect("chains");
        assert!(tree.depth() <= cfg.layers);
    }

    // Forward chain from one primary input fans across the layers.
    let primary = cfg.primary_layer(&schema)[0];
    let seed_inst = db.instances_of(primary)[0];
    let downstream = db.forward_chain(seed_inst).expect("chains");
    assert!(
        downstream.len() > 10,
        "primary input feeds many products: {}",
        downstream.len()
    );
}

#[test]
fn caching_makes_the_second_large_run_free() {
    let cfg = SynthConfig {
        layers: 5,
        width: 6,
        fanin: 2,
        subtypes: 0,
    };
    let schema = Arc::new(cfg.generate());
    let mut flow = TaskGraph::new(schema.clone());
    for goal in cfg.goal_layer(&schema) {
        let node = flow.seed(goal).expect("seeds");
        flow.expand_all(node).expect("expands");
    }
    let mut db = HistoryDb::new(schema.clone());
    toy::seed_everything(&mut db, "scale");
    let mut binding = Binding::new();
    binding.bind_latest(&flow, &db);

    let mut executor = Executor::new(toy::text_registry(&schema));
    executor.options_mut().reuse_cached = true;

    let first = executor.execute(&flow, &binding, &mut db).expect("runs");
    assert_eq!(first.runs(), (cfg.layers - 1) * cfg.width);
    let len_after_first = db.len();

    let second = executor.execute(&flow, &binding, &mut db).expect("runs");
    assert_eq!(second.runs(), 0, "everything cached");
    assert_eq!(second.cache_hits(), second.tasks.len());
    assert_eq!(db.len(), len_after_first);
}

#[test]
fn parallel_execution_matches_serial_at_scale() {
    let cfg = SynthConfig {
        layers: 4,
        width: 8,
        fanin: 2,
        subtypes: 0,
    };
    let schema = Arc::new(cfg.generate());
    let mut flow = TaskGraph::new(schema.clone());
    for goal in cfg.goal_layer(&schema) {
        let node = flow.seed(goal).expect("seeds");
        flow.expand_all(node).expect("expands");
    }

    let run = |parallel: bool| -> Vec<Vec<u8>> {
        let mut db = HistoryDb::new(schema.clone());
        toy::seed_everything(&mut db, "scale");
        let mut binding = Binding::new();
        binding.bind_latest(&flow, &db);
        let mut executor = Executor::new(toy::text_registry(&schema));
        executor.options_mut().parallel = parallel;
        let report = executor.execute(&flow, &binding, &mut db).expect("runs");
        flow.outputs()
            .into_iter()
            .map(|o| {
                db.data_of(report.single(o))
                    .expect("present")
                    .expect("data")
                    .to_vec()
            })
            .collect()
    };
    assert_eq!(run(false), run(true));
}
