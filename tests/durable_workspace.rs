//! Durability suite: crash-injection over the journaled workspace and
//! resumable execution.
//!
//! The crash test truncates the journal at *every* byte offset and
//! asserts that recovery (a) never fails or panics, (b) restores
//! exactly the state after the last fully journaled command — a prefix
//! of the acknowledged history — and (c) never resurrects state from
//! the torn tail.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hercules::encaps::odyssey_registry;
use hercules::exec::{ExecError, FailurePolicy, FaultPlan, FaultyEncapsulation, TaskAction};
use hercules::flow::NodeId;
use hercules::history::{Derivation, InstanceId, Metadata};
use hercules::store::{scan_frames, Workspace};
use hercules::ui::{Command, Ui};
use hercules::{eda, Session, SessionSpec};

fn temp_root(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("hercules-durable-{tag}-{}-{n}", std::process::id()))
}

/// Wraps the registered encapsulation of `tool` in a fault injector and
/// re-registers the wrapper; returns it for call-count inspection.
fn inject(session: &mut Session, tool: &str, plan: FaultPlan) -> Arc<FaultyEncapsulation> {
    let schema = session.schema().clone();
    let entity = schema.require(tool).expect("known tool");
    let executor = session.executor_mut();
    let inner = executor
        .registry()
        .lookup(&schema, entity)
        .expect("tool registered")
        .clone();
    let faulty = FaultyEncapsulation::wrap(inner, plan);
    executor.registry_mut().register(entity, faulty.clone());
    faulty
}

/// Records one EditedNetlist instance so abstract netlist leaves have
/// something to bind to.
fn seed_netlist(session: &mut Session) -> InstanceId {
    let schema = session.schema().clone();
    let editor = schema.require("CircuitEditor").expect("known");
    let edited = schema.require("EditedNetlist").expect("known");
    let tool = session.db().instances_of(editor)[0];
    let cell = eda::cells::full_adder();
    session
        .db_mut()
        .record_derived(
            edited,
            Metadata::by("chaos").named(&cell.name),
            &cell.to_bytes(),
            Derivation::by_tool(tool, []),
        )
        .expect("records")
}

/// The Fig. 6 verification flow with both branches expanded (see
/// `chaos_flow.rs`): branch A edits the netlist, branch B places and
/// extracts the layout, and the comparator consumes both.
struct Fig6 {
    verification: NodeId,
    edited: NodeId,
    layout: NodeId,
    extracted: NodeId,
}

fn fig6_flow(session: &mut Session) -> Fig6 {
    let seeded = seed_netlist(session);
    let verification = session.start_from_goal("Verification").expect("starts");
    let created = session.expand(verification).expect("expands");
    let edited = created[1];
    let extracted = created[2];
    session
        .specialize(edited, "EditedNetlist")
        .expect("specializes");
    session.expand(edited).expect("expands"); // editor
    let created = session.expand(extracted).expect("expands"); // extractor, layout
    let layout = created[1];
    let created = session.expand(layout).expect("expands"); // placer, netlist, rules
    session.select(created[1], seeded);
    session.bind_latest().expect("binds");
    Fig6 {
        verification,
        edited,
        layout,
        extracted,
    }
}

#[test]
fn crash_at_every_journal_byte_offset_recovers_a_committed_prefix() {
    let root = temp_root("crash");
    let mut ui = Ui::new(Session::odyssey("jbb"));
    ui.execute(&format!("save {}", root.display()))
        .expect("saves");

    // Seven mutating commands — each acknowledged, hence each one a
    // fsynced journal frame. Reference snapshots after each.
    let mut refs = vec![SessionSpec::from_session(ui.session())];
    for cmd in [
        "goal Layout",
        "expand n0",
        "specialize n2 EditedNetlist",
        "expand n2",
        "bind-latest",
        "run",
        "store place-flow",
    ] {
        ui.execute(cmd).expect(cmd);
        refs.push(SessionSpec::from_session(ui.session()));
    }
    drop(ui);

    let journal = fs::read(root.join("journal-0.log")).expect("journal exists");
    let scan = scan_frames(&journal);
    assert_eq!(scan.payloads.len(), 7, "one frame per mutating command");
    assert_eq!(scan.trailing, 0);

    for cut in 0..=journal.len() {
        // Simulate a crash that tore the journal at byte `cut`.
        let dir = temp_root("cut");
        fs::create_dir_all(&dir).expect("mkdir");
        fs::copy(root.join("MANIFEST"), dir.join("MANIFEST")).expect("manifest");
        fs::copy(
            root.join("checkpoint-0.json"),
            dir.join("checkpoint-0.json"),
        )
        .expect("checkpoint");
        fs::write(dir.join("journal-0.log"), &journal[..cut]).expect("prefix");

        // Recovery must never fail and never panic.
        let (_ws, session, report) = Workspace::open_session(&dir, |s| odyssey_registry(s))
            .unwrap_or_else(|e| panic!("recovery failed at byte {cut}: {e}"));

        // It restores exactly the last fully journaled command...
        let frames = scan.offsets.iter().filter(|&&end| end <= cut).count();
        assert_eq!(report.ops_replayed, frames, "at byte {cut}");
        assert_eq!(
            SessionSpec::from_session(&session),
            refs[frames],
            "state after recovery at byte {cut} must equal the state \
             after the {frames} committed command(s) — no more, no less"
        );

        // ...and truncates the torn remainder away.
        let valid = scan
            .offsets
            .get(frames.wrapping_sub(1))
            .copied()
            .unwrap_or(0);
        assert_eq!(
            report.bytes_discarded,
            (cut - valid) as u64,
            "at byte {cut}"
        );
        assert_eq!(
            fs::metadata(dir.join("journal-0.log")).expect("meta").len(),
            valid as u64,
            "journal truncated to the valid prefix at byte {cut}"
        );
        fs::remove_dir_all(&dir).ok();
    }
    fs::remove_dir_all(&root).ok();
}

#[test]
fn resume_reruns_only_failed_and_skipped_subtasks() {
    let mut session = Session::odyssey("chaos");
    session.executor_mut().options_mut().failure = FailurePolicy::ContinueDisjoint;
    let schema = session.schema().clone();
    let placer = schema.require("Placer").expect("known");
    let real = session
        .executor_mut()
        .registry()
        .lookup(&schema, placer)
        .expect("registered")
        .clone();
    let faulty = inject(&mut session, "Placer", FaultPlan::AlwaysPanic);
    let nodes = fig6_flow(&mut session);

    session.run().expect("continues past the failure");
    let first = session.last_report().expect("report").clone();
    assert_eq!((first.failed(), first.skipped()), (1, 2));
    let committed = first.try_single(nodes.edited).expect("branch A committed");

    // Lift the fault, then resume: only the failed cone re-runs.
    session.executor_mut().registry_mut().register(placer, real);
    let report = session.resume().expect("completes").clone();
    assert!(report.is_complete());
    assert_eq!(
        report.cache_hits(),
        1,
        "the committed editor branch came from the history"
    );
    assert_eq!(report.runs(), 3, "placer, extractor, comparator re-ran");
    assert_eq!(
        report.try_single(nodes.edited).expect("bound"),
        committed,
        "resume reuses the committed instance, not a re-run"
    );
    let record = report
        .tasks
        .iter()
        .find(|t| t.outputs.contains(&nodes.edited))
        .expect("recorded");
    assert_eq!(record.action, TaskAction::Cached);
    for node in [nodes.layout, nodes.extracted, nodes.verification] {
        assert!(report.try_single(node).is_ok(), "{node} produced");
    }
    assert_eq!(faulty.calls(), 1, "the faulty placer never ran again");

    let events = session.events();
    assert_eq!(events.len(), 2);
    assert_eq!(events[1].operation, "resume");
    assert!(events[1].is_clean());
    assert_eq!(events[1].cache_hits, 1);

    // A second resume has nothing left to do.
    assert!(matches!(
        session.resume(),
        Err(hercules::HerculesError::NothingToResume { .. })
    ));
}

#[test]
fn interrupted_run_resumes_after_reopen_from_disk() {
    let root = temp_root("resume");
    let mut session = Session::odyssey("jbb");
    session.executor_mut().options_mut().failure = FailurePolicy::ContinueDisjoint;
    inject(&mut session, "Placer", FaultPlan::AlwaysPanic);
    let seeded = seed_netlist(&mut session);

    let mut ui = Ui::new(session);
    ui.execute(&format!("save {}", root.display()))
        .expect("saves");
    for cmd in [
        "goal Verification".to_owned(),
        "expand n0".to_owned(),
        "specialize n2 EditedNetlist".to_owned(),
        "expand n2".to_owned(),
        "expand n3".to_owned(),
        "expand n6".to_owned(),
        format!("select n8 i{}", seeded.raw()),
        "bind-latest".to_owned(),
    ] {
        ui.execute(&cmd).expect(&cmd);
    }
    let out = ui.apply(Command::Run).expect("continues past the failure");
    assert!(out.contains("1 failed, 2 skipped"), "{out}");
    drop(ui); // crash

    // A fresh process recovers the partial execution from disk. `open`
    // attaches the standard (un-faulted) registry, so the placer works.
    let mut ui = Ui::new(Session::odyssey("someone-else"));
    ui.execute(&format!("open {}", root.display()))
        .expect("recovers");
    let report = ui.session().last_report().expect("restored");
    assert!(!report.is_complete());
    assert!(
        matches!(report.first_error(), Some(ExecError::Restored { .. })),
        "failures survive as restored (textual) errors"
    );

    let out = ui.execute("resume").expect("completes");
    assert!(out.contains("cache hit(s)"), "{out}");
    let report = ui.session().last_report().expect("resumed");
    assert!(report.is_complete());
    assert_eq!(report.cache_hits(), 1, "committed branch A reused");
    assert_eq!(report.runs(), 3, "only the failed cone re-ran");
    let record = report
        .tasks
        .iter()
        .find(|t| t.outputs.contains(&NodeId::from_index(2)))
        .expect("editor subtask recorded");
    assert_eq!(record.action, TaskAction::Cached);
    drop(ui); // crash again

    // The resume itself was journaled: a third process sees completion.
    let mut ui = Ui::new(Session::odyssey("third"));
    ui.execute(&format!("open {}", root.display()))
        .expect("reopens");
    assert!(ui.session().last_report().expect("present").is_complete());

    // Checkpoint rotates the generation; reopening lands on it.
    ui.execute("checkpoint").expect("rotates");
    drop(ui);
    let (ws, session, recovery) =
        Workspace::open_session(&root, |s| odyssey_registry(s)).expect("opens gen 1");
    assert_eq!(ws.generation(), 1);
    assert_eq!(recovery.ops_replayed, 0, "rotated journal is empty");
    assert!(session.last_report().expect("present").is_complete());
    fs::remove_dir_all(&root).ok();
}
