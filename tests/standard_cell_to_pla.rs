//! The Chiueh & Katz scenario from §2: "if a designer implemented a
//! logic circuit using standard cells and then wished to re-implement
//! the same circuit using a PLA, he or she could reposition a cursor to
//! the appropriate point in the standard cell activity trace and create
//! a new activity branch using a create-PLA task."
//!
//! Here both implementations are derived from the same point of the
//! history, verified functionally equivalent, and the branch structure
//! is visible in the forward chain.

use hercules::{eda, history::Derivation, history::Metadata, Session};

#[test]
fn standard_cell_and_pla_branches_share_history() {
    let mut session = Session::odyssey("tester");
    let schema = session.schema().clone();
    let editor = schema.require("CircuitEditor").expect("known");
    let edited = schema.require("EditedNetlist").expect("known");
    let editor_inst = session.db().instances_of(editor)[0];

    // The original standard-cell implementation.
    let std_cell = session
        .db_mut()
        .record_derived(
            edited,
            Metadata::by("tester").named("adder std-cell"),
            &eda::cells::full_adder().to_bytes(),
            Derivation::by_tool(editor_inst, []),
        )
        .expect("records");

    // Branch point: re-implement as a PLA, recorded as a new version
    // derived from the standard-cell netlist (the "create PLA task").
    let as_pla = session
        .db_mut()
        .record_derived(
            edited,
            Metadata::by("tester").named("adder PLA"),
            &eda::cells::full_adder_pla().to_bytes(),
            Derivation::by_tool(editor_inst, [std_cell]),
        )
        .expect("records");

    // Both branches appear in the version forest under one root.
    let forest = session.db().version_forest(edited).expect("builds");
    assert_eq!(forest.parent(as_pla), Some(std_cell));

    // Functional equivalence via the switch-level simulator: compile
    // both and compare exhaustive responses (with the PLA's inputs
    // renamed onto the adder's).
    let gate_adder = eda::cells::full_adder();
    let gate_pla = eda::cells::full_adder_pla();
    let x_adder = eda::to_transistor_level(&gate_adder).expect("synthesizes");
    let x_pla = eda::to_transistor_level(&gate_pla).expect("synthesizes");
    let sim_adder = eda::cosmos::compile(&x_adder).expect("compiles");
    let sim_pla = eda::cosmos::compile(&x_pla).expect("compiles");
    let walk_adder = eda::Stimuli::exhaustive(&["a", "b", "cin"], 10);
    let walk_pla = eda::Stimuli::exhaustive(&["i0", "i1", "i2"], 10);
    let r_adder = sim_adder.run(&walk_adder).expect("runs");
    let r_pla = sim_pla.run(&walk_pla).expect("runs");
    for v in 0..8u64 {
        let t = v * 10;
        assert_eq!(
            r_adder.output("sum").expect("sum").at(t),
            r_pla.output("o0").expect("o0").at(t),
            "sum equivalence at vector {v}"
        );
        assert_eq!(
            r_adder.output("cout").expect("cout").at(t),
            r_pla.output("o1").expect("o1").at(t),
            "cout equivalence at vector {v}"
        );
    }

    // Forward chaining from the standard-cell point finds the PLA
    // branch — the "activity threads" query of Chiueh & Katz, answered
    // by the derivation history.
    let downstream = session.db().forward_chain(std_cell).expect("chains");
    assert!(downstream.contains(&as_pla));
}

#[test]
fn both_branches_place_and_verify() {
    // Each implementation goes through the physical flow and passes
    // LVS against itself.
    for netlist in [eda::cells::full_adder(), eda::cells::full_adder_pla()] {
        let layout = eda::place(&netlist, &eda::PlacementRules::default()).expect("places");
        let (extracted, stats) = eda::extract(&layout);
        assert_eq!(stats.cell_count, netlist.gate_count());
        let report = eda::verify(&netlist, &extracted.netlist).expect("comparable");
        assert!(report.matched, "{}: {:?}", netlist.name, report.mismatches);
    }
}
