//! Deterministic simulation suite: the executor and the durable store
//! driven through seeded interleavings, mid-write crash points, fsync
//! reorderings, and a lying disk — all inside one process, with every
//! run a pure function of its seed.
//!
//! Every assertion failure prints the failing seed and a copy-paste
//! repro command (`HERCULES_SIM_SEED=<seed> cargo test --test
//! sim_harness <test> -- --nocapture`); set `HERCULES_SIM_SEED` to
//! replay a specific world.

use std::collections::HashSet;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use hercules::encaps::odyssey_registry;
use hercules::exec::{
    toy, Binding, Executor, FailurePolicy, FaultPlan, FaultyEncapsulation, RetryPolicy,
};
use hercules::flow::TaskGraph;
use hercules::history::{Derivation, HistoryDb, InstanceId, Metadata};
use hercules::obs::HealthStatus;
use hercules::schema::synth::SynthConfig;
use hercules::sim::{repro_command, SimEnv, SimRng, SIM_CRASH_MARKER};
use hercules::store::{
    scan_frames, DegradedReason, GroupCommitPolicy, JournalOp, StoreError, Workspace,
};
use hercules::ui::Ui;
use hercules::{eda, read_postmortem, HerculesError, Session, SessionSpec};

/// Master seed: the env override if set, a fixed default otherwise.
fn master_seed() -> u64 {
    std::env::var("HERCULES_SIM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDAC_1993)
}

/// Panics with the failing seed and its repro command attached.
#[track_caller]
fn sim_assert(cond: bool, seed: u64, test: &str, msg: &str) {
    if !cond {
        panic!(
            "{msg}\n  failing seed: {seed}\n  reproduce: {}",
            repro_command(seed, test)
        );
    }
}

/// Installs the full simulated environment into a fresh Odyssey
/// session: virtual clock, interleaved scheduler, seeded retry jitter.
fn sim_session(sim: &SimEnv, user: &str) -> Session {
    let mut session = Session::odyssey(user);
    session.set_sim(sim.clock(), sim.interleave(), sim.jitter_seed());
    session
}

/// Records one EditedNetlist instance so abstract netlist leaves have
/// something to bind to (mirrors the durability suite).
fn seed_netlist(session: &mut Session) -> InstanceId {
    let schema = session.schema().clone();
    let editor = schema.require("CircuitEditor").expect("known");
    let edited = schema.require("EditedNetlist").expect("known");
    let tool = session.db().instances_of(editor)[0];
    let cell = eda::cells::full_adder();
    session
        .db_mut()
        .record_derived(
            edited,
            Metadata::by("sim").named(&cell.name),
            &cell.to_bytes(),
            Derivation::by_tool(tool, []),
        )
        .expect("records")
}

/// Where the simulated workspace lives on the simulated disk.
const WS_ROOT: &str = "/ws/alpha";

/// Reference snapshots of the multi-session workload, grouped by
/// checkpoint generation: `refs[g][k]` is the session state after the
/// `k`-th acknowledged journal frame of generation `g` (`refs[g][0]`
/// is the state captured by generation `g`'s checkpoint itself).
struct Reference {
    by_gen: Vec<Vec<SessionSpec>>,
}

/// Drives the multi-session workload: save, build + run the
/// verification flow, checkpoint, then build + run the layout flow and
/// checkpoint again. Stops at the first error (a fired crash point),
/// returning the snapshots of everything acknowledged up to then.
///
/// With `verify_frames` (clean reference run only), cross-checks that
/// each generation's journal holds exactly one frame per acknowledged
/// command, so the snapshot indices line up with `ops_replayed`.
fn drive_workload(sim: &SimEnv, verify_frames: bool) -> (Reference, Result<(), HerculesError>) {
    let mut session = sim_session(sim, "sim");
    let seeded = seed_netlist(&mut session);
    let mut ui = Ui::new_in(session, sim.env());
    let mut refs = Reference { by_gen: Vec::new() };

    if let Err(e) = ui.execute(&format!("save {WS_ROOT}")) {
        return (refs, Err(e));
    }
    refs.by_gen
        .push(vec![SessionSpec::from_session(ui.session())]);

    let verification = [
        "goal Verification".to_owned(),
        "expand n0".to_owned(),
        "specialize n2 EditedNetlist".to_owned(),
        "expand n2".to_owned(),
        "expand n3".to_owned(),
        "expand n6".to_owned(),
        format!("select n8 i{}", seeded.raw()),
        "bind-latest".to_owned(),
        "run".to_owned(),
        "store verif-flow".to_owned(),
    ];
    let layout = [
        "clear".to_owned(),
        "goal Layout".to_owned(),
        "expand n0".to_owned(),
        "specialize n2 EditedNetlist".to_owned(),
        "expand n2".to_owned(),
        "bind-latest".to_owned(),
        "run".to_owned(),
    ];

    for segment in [&verification[..], &layout[..]] {
        for cmd in segment {
            if let Err(e) = ui.execute(cmd) {
                // The crashed command was dispatched before its journal
                // append tore, and the frame may still survive whole in
                // the crash image — so recovery can legitimately land
                // one past the acknowledged prefix. Record that
                // submitted-but-unacknowledged state as well.
                let gen = refs.by_gen.len() - 1;
                refs.by_gen[gen].push(SessionSpec::from_session(ui.session()));
                return (refs, Err(e));
            }
            let gen = refs.by_gen.len() - 1;
            refs.by_gen[gen].push(SessionSpec::from_session(ui.session()));
        }
        if verify_frames {
            let gen = refs.by_gen.len() - 1;
            let journal = sim
                .fs()
                .read(&Path::new(WS_ROOT).join(format!("journal-{gen}.log")))
                .expect("journal readable in the clean run");
            assert_eq!(
                scan_frames(&journal).payloads.len(),
                refs.by_gen[gen].len() - 1,
                "one journal frame per acknowledged command in generation {gen}"
            );
        }
        if let Err(e) = ui.execute("checkpoint") {
            // A checkpoint that crashed after its MANIFEST rename
            // became durable (the rename dirop survived the dice)
            // recovers as the next generation with zero replays; its
            // base state is the session state at checkpoint time.
            refs.by_gen
                .push(vec![SessionSpec::from_session(ui.session())]);
            return (refs, Err(e));
        }
        refs.by_gen
            .push(vec![SessionSpec::from_session(ui.session())]);
    }
    (refs, Ok(()))
}

/// Recovers the workspace from the crash image and asserts the prefix
/// invariant: the recovered session state equals the reference
/// snapshot after exactly `ops_replayed` acknowledged frames of the
/// recovered generation — never a non-prefix, never beyond what was
/// submitted.
fn assert_recovers_a_prefix(sim: &SimEnv, refs: &Reference, seed: u64, test: &str, label: &str) {
    let rebooted = sim.crash_and_reboot();
    let (ws, recovered, report) =
        Workspace::open_session_in(Path::new(WS_ROOT), |s| odyssey_registry(s), rebooted.env())
            .unwrap_or_else(|e| {
                panic!(
                    "{label}: recovery failed: {e}\n  failing seed: {seed}\n  reproduce: {}",
                    repro_command(seed, test)
                )
            });
    let gen = report.generation as usize;
    sim_assert(
        gen < refs.by_gen.len(),
        seed,
        test,
        &format!("{label}: recovered generation {gen} was never reached"),
    );
    let snaps = &refs.by_gen[gen];
    sim_assert(
        report.ops_replayed < snaps.len(),
        seed,
        test,
        &format!(
            "{label}: generation {gen} replayed {} ops beyond the {} submitted",
            report.ops_replayed,
            snaps.len() - 1
        ),
    );
    sim_assert(
        SessionSpec::from_session(&recovered) == snaps[report.ops_replayed],
        seed,
        test,
        &format!(
            "{label}: recovered state after {} replayed ops of generation {gen} \
             does not match the acknowledged prefix",
            report.ops_replayed
        ),
    );
    drop(ws);
}

/// The tentpole test: one seeded run sweeps ≥100 distinct scheduler
/// interleavings of a wide synthetic flow, then sweeps a crash point
/// over every mutating disk operation (≥50 of them) of the
/// multi-session workload, asserting prefix recovery at each, with
/// byte-identical event logs on replay.
#[test]
fn sim_multi_session_interleavings_and_crash_points() {
    const TEST: &str = "sim_multi_session_interleavings_and_crash_points";
    let master = master_seed();
    let mut rng = SimRng::new(master);

    // --- Phase 1: scheduler interleavings over a wide flow. ---
    let cfg = SynthConfig {
        layers: 3,
        width: 6,
        fanin: 2,
        subtypes: 0,
    };
    let schema = Arc::new(cfg.generate());
    let mut flow = TaskGraph::new(schema.clone());
    for goal in cfg.goal_layer(&schema) {
        let node = flow.seed(goal).expect("seeds");
        flow.expand_all(node).expect("expands");
    }
    flow.validate_for_execution().expect("complete");

    let run_flow = |seed: u64| -> (Vec<String>, String) {
        let sim = SimEnv::new(seed);
        let mut db = HistoryDb::new(schema.clone());
        toy::seed_everything(&mut db, "sim");
        let mut binding = Binding::new();
        assert!(binding.bind_latest(&flow, &db).is_empty());
        let mut executor = Executor::new(toy::text_registry(&schema));
        let options = executor.options_mut();
        options.clock = sim.clock();
        options.interleave = sim.interleave();
        options.jitter_seed = sim.jitter_seed();
        executor
            .execute(&flow, &binding, &mut db)
            .expect("synthetic flow runs");
        let picks = sim
            .trace()
            .lines()
            .iter()
            .filter(|l| l.starts_with("sched.pick"))
            .cloned()
            .collect();
        (picks, sim.trace().render())
    };

    let mut interleavings: HashSet<Vec<String>> = HashSet::new();
    let mut pick_events = 0usize;
    for i in 0..128 {
        let seed = rng.next_u64();
        let (picks, log) = run_flow(seed);
        sim_assert(
            !picks.is_empty(),
            seed,
            TEST,
            "the serial dataflow pump must route picks through the interleaver",
        );
        pick_events += picks.len();
        interleavings.insert(picks);
        if i % 8 == 0 {
            // Replaying the same seed must reproduce the event log
            // byte for byte.
            let (_, log2) = run_flow(seed);
            sim_assert(
                log == log2,
                seed,
                TEST,
                "same seed, same flow: event logs must be byte-identical",
            );
        }
    }
    assert!(
        interleavings.len() >= 100,
        "expected >=100 distinct scheduler interleavings, got {} ({} pick events; master seed {master})",
        interleavings.len(),
        pick_events
    );

    // --- Phase 2: crash sweep over the multi-session workload. ---
    let workload_seed = rng.next_u64();
    let clean = SimEnv::new(workload_seed);
    let (refs, outcome) = drive_workload(&clean, true);
    outcome.expect("clean run completes");
    let total_ops = clean.fs_state().op_count();
    // Only sweep ops after workspace creation: before the manifest is
    // durable there is nothing to recover.
    let save_ops = {
        let probe = SimEnv::new(workload_seed);
        let mut session = sim_session(&probe, "sim");
        let _ = seed_netlist(&mut session);
        let mut ui = Ui::new_in(session, probe.env());
        ui.execute(&format!("save {WS_ROOT}")).expect("saves");
        probe.fs_state().op_count()
    };
    let crash_points = total_ops - save_ops;
    assert!(
        crash_points >= 50,
        "the workload must expose >=50 post-save crash points, got {crash_points}"
    );

    for k in (save_ops + 1)..=total_ops {
        let sim = SimEnv::new(workload_seed);
        sim.fs_state().set_crash_at(Some(k));
        let (crash_refs, outcome) = drive_workload(&sim, false);
        // A crash landing on the final best-effort cleanup (the
        // superseded journal's removal) is swallowed by design; the
        // workload completes and recovery must still see a consistent
        // image.
        if let Err(err) = outcome {
            sim_assert(
                err.to_string().contains(SIM_CRASH_MARKER),
                workload_seed,
                TEST,
                &format!(
                    "crash at op {k}: the surfaced error must be the simulated crash, got: {err}"
                ),
            );
        }
        assert_recovers_a_prefix(
            &sim,
            &crash_refs,
            workload_seed,
            TEST,
            &format!("crash at op {k}"),
        );
        if k % 10 == 0 {
            // Replay determinism across crash + recovery: the full
            // event log (workload, crash dice, recovery) is
            // byte-identical for the same seed and crash point.
            let render_once = || {
                let sim = SimEnv::new(workload_seed);
                sim.fs_state().set_crash_at(Some(k));
                let (crash_refs, _) = drive_workload(&sim, false);
                assert_recovers_a_prefix(
                    &sim,
                    &crash_refs,
                    workload_seed,
                    TEST,
                    &format!("replayed crash at op {k}"),
                );
                sim.trace().render()
            };
            sim_assert(
                render_once() == render_once(),
                workload_seed,
                TEST,
                &format!("crash at op {k}: replay must give a byte-identical event log"),
            );
        }
    }
    drop(refs);
}

/// Satellite: a crash exactly between the manifest temp-file fsync and
/// the `MANIFEST` rename during a checkpoint must leave the *previous*
/// generation fully intact — the half-finished checkpoint is invisible.
#[test]
fn sim_checkpoint_crash_between_tmp_fsync_and_manifest_rename() {
    const TEST: &str = "sim_checkpoint_crash_between_tmp_fsync_and_manifest_rename";
    let seed = master_seed();

    // Locate the first checkpoint's MANIFEST rename in a clean run:
    // rename #0 of MANIFEST.tmp belongs to `save`, rename #1 to the
    // first `checkpoint` command.
    let clean = SimEnv::new(seed);
    let (refs, outcome) = drive_workload(&clean, false);
    outcome.expect("clean run completes");
    let rename_op: u64 = clean
        .trace()
        .lines()
        .iter()
        .filter(|l| l.starts_with("fs.rename") && l.contains("to=/ws/alpha/MANIFEST "))
        .nth(1)
        .and_then(|l| l.rsplit("op=").next())
        .and_then(|n| n.trim().parse().ok())
        .expect("the checkpoint's MANIFEST rename appears in the trace");

    // Crash *at* the rename: the temp file is written and fsynced, but
    // the swap never happens.
    let sim = SimEnv::new(seed);
    sim.fs_state().set_crash_at(Some(rename_op));
    let (_, outcome) = drive_workload(&sim, false);
    outcome.expect_err("the armed crash point aborts the checkpoint");

    let rebooted = sim.crash_and_reboot();
    let (_ws, recovered, report) =
        Workspace::open_session_in(Path::new(WS_ROOT), |s| odyssey_registry(s), rebooted.env())
            .unwrap_or_else(|e| {
                panic!(
                    "recovery must not fail: {e}\n  failing seed: {seed}\n  reproduce: {}",
                    repro_command(seed, TEST)
                )
            });
    sim_assert(
        report.generation == 0,
        seed,
        TEST,
        &format!(
            "the unrenamed manifest must still name generation 0, got {}",
            report.generation
        ),
    );
    let gen0 = &refs.by_gen[0];
    sim_assert(
        report.ops_replayed == gen0.len() - 1,
        seed,
        TEST,
        &format!(
            "every acknowledged generation-0 frame must replay: {} of {}",
            report.ops_replayed,
            gen0.len() - 1
        ),
    );
    sim_assert(
        SessionSpec::from_session(&recovered) == gen0[gen0.len() - 1],
        seed,
        TEST,
        "recovered state must equal the full pre-checkpoint state",
    );
}

/// Satellite: after a simulated crash mid-workload, reopening and
/// resuming re-runs only the failed/skipped cone — committed branches
/// come from the recovered history.
#[test]
fn sim_resume_after_crash_reruns_only_failed_subtasks() {
    const TEST: &str = "sim_resume_after_crash_reruns_only_failed_subtasks";
    let seed = master_seed().wrapping_add(1);
    let sim = SimEnv::new(seed);

    let mut session = sim_session(&sim, "sim");
    session.executor_mut().options_mut().failure = FailurePolicy::ContinueDisjoint;
    // A placer that always panics: branch B fails, branch A commits.
    let schema = session.schema().clone();
    let placer = schema.require("Placer").expect("known");
    let inner = session
        .executor_mut()
        .registry()
        .lookup(&schema, placer)
        .expect("registered")
        .clone();
    session.executor_mut().registry_mut().register(
        placer,
        FaultyEncapsulation::wrap(inner, FaultPlan::AlwaysPanic),
    );
    let seeded = seed_netlist(&mut session);

    let mut ui = Ui::new_in(session, sim.env());
    ui.execute(&format!("save {WS_ROOT}")).expect("saves");
    for cmd in [
        "goal Verification".to_owned(),
        "expand n0".to_owned(),
        "specialize n2 EditedNetlist".to_owned(),
        "expand n2".to_owned(),
        "expand n3".to_owned(),
        "expand n6".to_owned(),
        format!("select n8 i{}", seeded.raw()),
        "bind-latest".to_owned(),
    ] {
        ui.execute(&cmd).expect(&cmd);
    }
    let out = ui.execute("run").expect("continues past the failure");
    sim_assert(
        out.contains("1 failed, 2 skipped"),
        seed,
        TEST,
        &format!("expected a partial run, got: {out}"),
    );
    drop(ui); // power off

    // Reboot onto the crash image; `open` attaches the standard
    // (un-faulted) registry, so the placer works this time.
    let rebooted = sim.crash_and_reboot();
    let mut ui = Ui::new_in(sim_session(&rebooted, "after-reboot"), rebooted.env());
    ui.execute(&format!("open {WS_ROOT}")).expect("recovers");
    let restored = ui.session().last_report().expect("report survives");
    sim_assert(
        !restored.is_complete(),
        seed,
        TEST,
        "the recovered report must remember the partial execution",
    );

    ui.execute("resume").expect("completes");
    let report = ui.session().last_report().expect("resumed").clone();
    sim_assert(
        report.is_complete(),
        seed,
        TEST,
        "resume must finish the flow",
    );
    sim_assert(
        report.cache_hits() == 1,
        seed,
        TEST,
        &format!(
            "resume must serve the committed branch from history, got {} cache hits",
            report.cache_hits()
        ),
    );
    sim_assert(
        report.runs() == 3,
        seed,
        TEST,
        &format!(
            "resume must re-run only the failed cone (placer, extractor, comparator), got {}",
            report.runs()
        ),
    );
}

/// Satellite: the whole retry-backoff schedule is a function of the
/// seed — same seed, same virtual sleeps, byte for byte; and the
/// sleeps advance the virtual clock instead of blocking the test.
#[test]
fn sim_retry_backoff_is_seed_deterministic() {
    const TEST: &str = "sim_retry_backoff_is_seed_deterministic";
    let base = master_seed().wrapping_add(2);

    let run = |seed: u64| -> (Vec<String>, u64) {
        let sim = SimEnv::new(seed);
        let mut session = sim_session(&sim, "retry");
        session.executor_mut().options_mut().retry = RetryPolicy::attempts(3);
        let schema = session.schema().clone();
        let placer = schema.require("Placer").expect("known");
        let inner = session
            .executor_mut()
            .registry()
            .lookup(&schema, placer)
            .expect("registered")
            .clone();
        session.executor_mut().registry_mut().register(
            placer,
            FaultyEncapsulation::wrap(inner, FaultPlan::FailTimes(2)),
        );
        let mut ui = Ui::new_in(session, sim.env());
        for cmd in [
            "goal Layout",
            "expand n0",
            "specialize n2 EditedNetlist",
            "expand n2",
            "bind-latest",
        ] {
            ui.execute(cmd).expect(cmd);
        }
        ui.execute("run").expect("retries clear the flaky placer");
        let sleeps = sim
            .trace()
            .lines()
            .iter()
            .filter(|l| l.starts_with("clock.sleep"))
            .cloned()
            .collect();
        (sleeps, sim.clock().now().as_ns())
    };

    let (sleeps_a, clock_a) = run(base);
    sim_assert(
        sleeps_a.len() == 2,
        base,
        TEST,
        &format!(
            "two failed attempts mean two backoff sleeps, got {}",
            sleeps_a.len()
        ),
    );
    sim_assert(
        clock_a > 0,
        base,
        TEST,
        "backoff must advance the virtual clock",
    );
    let (sleeps_b, clock_b) = run(base);
    sim_assert(
        sleeps_a == sleeps_b && clock_a == clock_b,
        base,
        TEST,
        "same seed must reproduce the exact backoff schedule",
    );
    let (sleeps_c, _) = run(base.wrapping_add(1));
    sim_assert(
        sleeps_a != sleeps_c,
        base,
        TEST,
        "a different seed must explore a different jitter schedule",
    );
}

/// Satellite: under simulation, group commit batches inline with no
/// flusher thread; a failed flush poisons the workspace — later
/// appends are refused and `close()` surfaces the sticky error instead
/// of dropping it.
#[test]
fn sim_group_commit_flush_failure_is_sticky_and_surfaces_on_close() {
    const TEST: &str = "sim_group_commit_flush_failure_is_sticky_and_surfaces_on_close";
    let seed = master_seed().wrapping_add(3);
    let sim = SimEnv::new(seed);

    let session = sim_session(&sim, "group");
    let mut ws = Workspace::create_in(Path::new(WS_ROOT), &session, sim.env()).expect("creates");
    ws.enable_group_commit(GroupCommitPolicy::default())
        .expect("enables");
    assert!(ws.group_commit_enabled());

    // Three acknowledged frames: enqueue, then one explicit sync.
    // `Clear` replays unconditionally, so recovery can count them.
    for _ in 0..3 {
        ws.append_deferred(&JournalOp::Clear).expect("queues");
    }
    ws.sync().expect("flushes the batch durably");

    // Arm the crash on the next mutating op — the batch write of the
    // following flush — and queue two more frames.
    sim.fs_state()
        .set_crash_at(Some(sim.fs_state().op_count() + 1));
    ws.append_deferred(&JournalOp::Clear).expect("queues");
    ws.append_deferred(&JournalOp::Clear).expect("queues");
    let err = ws.sync().expect_err("the armed crash fails the flush");
    sim_assert(
        err.to_string().contains(SIM_CRASH_MARKER),
        seed,
        TEST,
        &format!("the flush failure must be the simulated crash, got: {err}"),
    );

    // The poison is sticky: no append lands after a torn flush.
    sim_assert(
        ws.append_deferred(&JournalOp::BindLatest).is_err(),
        seed,
        TEST,
        "appends after a failed flush must be refused",
    );
    sim_assert(
        ws.sync().is_err(),
        seed,
        TEST,
        "sync after a failed flush must keep failing",
    );
    let close_err = ws.close().expect_err("close must surface the sticky error");
    sim_assert(
        close_err.to_string().contains(SIM_CRASH_MARKER),
        seed,
        TEST,
        &format!("close must report the original flush failure, got: {close_err}"),
    );

    // The three acknowledged frames survive the crash; the torn batch
    // is at most a submitted-but-unacknowledged tail.
    let rebooted = sim.crash_and_reboot();
    let (_ws, _session, report) =
        Workspace::open_session_in(Path::new(WS_ROOT), |s| odyssey_registry(s), rebooted.env())
            .expect("recovers");
    sim_assert(
        (3..=5).contains(&report.ops_replayed),
        seed,
        TEST,
        &format!(
            "recovery must keep the 3 acknowledged frames (plus at most the torn tail), got {}",
            report.ops_replayed
        ),
    );
}

/// Builds a tiny multi-segment store: segment size 1 forces a roll
/// after every append, so `appends` frames land in `appends + 1`
/// numbered segments (the last one empty). The handle is closed, so
/// the lease is released and the next open is a clean takeover-free
/// open.
fn build_segmented_store(sim: &SimEnv, appends: usize) {
    let session = sim_session(sim, "rot");
    let mut ws = Workspace::create_in(Path::new(WS_ROOT), &session, sim.env()).expect("creates");
    ws.set_segment_max_bytes(1);
    for _ in 0..appends {
        ws.append(&JournalOp::Clear).expect("appends");
    }
    ws.close().expect("closes");
}

/// Tentpole acceptance: flip *every byte* of *every segment* of a
/// multi-segment journal, one world per flip. Recovery must never
/// panic and never silently lose data: every frame is either replayed
/// or counted quarantined, and every quarantine path the report names
/// exists on disk. A second open of the repaired store is clean.
#[test]
fn sim_bitrot_sweep_multi_segment() {
    const TEST: &str = "sim_bitrot_sweep_multi_segment";
    const APPENDS: usize = 4;
    let seed = master_seed().wrapping_add(5);

    // Learn the layout from one clean build.
    let probe = SimEnv::new(seed);
    build_segmented_store(&probe, APPENDS);
    let segments: Vec<(std::path::PathBuf, usize)> = probe
        .fs_state()
        .current_paths()
        .into_iter()
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("journal-") && n.ends_with(".log"))
        })
        .map(|p| {
            let len = probe.fs_state().file_len(&p).unwrap_or(0);
            (p, len)
        })
        .collect();
    assert!(
        segments.len() > APPENDS,
        "rotation must produce multiple segments, got {}",
        segments.len()
    );

    for (path, len) in &segments {
        for off in 0..*len {
            let sim = SimEnv::new(seed);
            build_segmented_store(&sim, APPENDS);
            sim_assert(
                sim.fs_state().corrupt_file(path, off, 0x5A),
                seed,
                TEST,
                &format!("byte {off} of {} must exist", path.display()),
            );
            let (_ws, _session, report) = Workspace::open_session_in(
                Path::new(WS_ROOT),
                |s| odyssey_registry(s),
                sim.env(),
            )
            .unwrap_or_else(|e| {
                panic!(
                    "rot at {}:{off}: recovery failed: {e}\n  failing seed: {seed}\n  reproduce: {}",
                    path.display(),
                    repro_command(seed, TEST)
                )
            });
            let lost: usize = report.segments.iter().map(|s| s.frames_quarantined).sum();
            sim_assert(
                (APPENDS - 1..=APPENDS).contains(&(report.ops_replayed + lost)),
                seed,
                TEST,
                &format!(
                    "rot at {}:{off}: {} replayed + {lost} quarantined must account for \
                     all {APPENDS} frames minus at most the damaged one",
                    path.display(),
                    report.ops_replayed
                ),
            );
            for seg in &report.segments {
                for q in &seg.quarantined_as {
                    sim_assert(
                        sim.fs().exists(&Path::new(WS_ROOT).join(q)),
                        seed,
                        TEST,
                        &format!("quarantine file `{q}` named by the report must exist"),
                    );
                }
            }
            // The repair converged: a second open finds nothing to fix.
            let (_ws2, _s2, report2) =
                Workspace::open_session_in(Path::new(WS_ROOT), |s| odyssey_registry(s), sim.env())
                    .expect("repaired store reopens");
            sim_assert(
                report2.ops_replayed == report.ops_replayed
                    && !report2.quarantined()
                    && !report2.truncated,
                seed,
                TEST,
                &format!(
                    "rot at {}:{off}: second open must be clean with the same prefix",
                    path.display()
                ),
            );
        }
    }
}

/// Satellite: a crash point at every mutating disk op inside
/// `scrub()`'s quarantine-and-rebaseline repair. After any crash the
/// rebooted store must recover to a consistent state — the replayed
/// prefix (generation 0) or the freshly re-baselined checkpoint
/// (generation 1) — and a follow-up scrub finds the store clean.
#[test]
fn sim_scrub_and_repair_crash_sweep() {
    const TEST: &str = "sim_scrub_and_repair_crash_sweep";
    const APPENDS: usize = 3;
    let seed = master_seed().wrapping_add(6);
    let target = Path::new(WS_ROOT).join("journal-0.1.log");

    // Clean reference run: open, then rot a mid-chain segment, then
    // scrub — the repair quarantines and re-baselines.
    let probe = SimEnv::new(seed);
    build_segmented_store(&probe, APPENDS);
    let (mut ws, session, report) =
        Workspace::open_session_in(Path::new(WS_ROOT), |s| odyssey_registry(s), probe.env())
            .expect("clean open");
    sim_assert(report.ops_replayed == APPENDS, seed, TEST, "clean replay");
    let open_ops = probe.fs_state().op_count();
    sim_assert(
        probe.fs_state().corrupt_file(&target, 9, 0xFF),
        seed,
        TEST,
        "the mid-chain segment must have a byte 9 to rot",
    );
    let scrubbed = ws.scrub(&session).expect("scrub repairs");
    sim_assert(
        scrubbed.damaged && scrubbed.repaired,
        seed,
        TEST,
        &format!("scrub must find and repair the rot, got: {scrubbed}"),
    );
    let total_ops = probe.fs_state().op_count();
    drop(ws);
    assert!(
        total_ops - open_ops >= 10,
        "the scrub repair must expose >=10 crash points, got {}",
        total_ops - open_ops
    );

    for k in (open_ops + 1)..=total_ops {
        let sim = SimEnv::new(seed);
        build_segmented_store(&sim, APPENDS);
        let (mut ws, session, _report) =
            Workspace::open_session_in(Path::new(WS_ROOT), |s| odyssey_registry(s), sim.env())
                .expect("clean open");
        sim.fs_state().corrupt_file(&target, 9, 0xFF);
        sim.fs_state().set_crash_at(Some(k));
        match ws.scrub(&session) {
            Err(err) => sim_assert(
                err.to_string().contains(SIM_CRASH_MARKER),
                seed,
                TEST,
                &format!("crash at op {k}: scrub must surface the simulated crash, got: {err}"),
            ),
            // The crash can land inside the re-baseline's best-effort
            // cleanup of retired generation files; the manifest swap is
            // already durable there, so scrub legitimately succeeds.
            Ok(report) => sim_assert(
                report.damaged && report.repaired,
                seed,
                TEST,
                &format!("crash at op {k}: a surviving scrub must have repaired, got: {report}"),
            ),
        }
        drop(ws);

        let rebooted = sim.crash_and_reboot();
        let (mut ws2, s2, report2) =
            Workspace::open_session_in(Path::new(WS_ROOT), |s| odyssey_registry(s), rebooted.env())
                .unwrap_or_else(|e| {
                    panic!(
                "crash at op {k}: recovery failed: {e}\n  failing seed: {seed}\n  reproduce: {}",
                repro_command(seed, TEST)
            )
                });
        sim_assert(
            (report2.generation == 0 && report2.ops_replayed == 1)
                || (report2.generation == 1 && report2.ops_replayed == 0),
            seed,
            TEST,
            &format!(
                "crash at op {k}: recovery must land on the pre-damage prefix (gen 0, \
                 1 op) or the re-baselined checkpoint (gen 1, 0 ops), got generation {} \
                 with {} op(s)",
                report2.generation, report2.ops_replayed
            ),
        );
        let rescrub = ws2.scrub(&s2).expect("post-recovery scrub");
        sim_assert(
            !rescrub.damaged,
            seed,
            TEST,
            &format!("crash at op {k}: the reopened store must scrub clean, got: {rescrub}"),
        );
    }
}

/// Satellite: a crash point at every mutating disk op inside a
/// stale-lease takeover. The takeover's MANIFEST/LEASE writes may tear
/// anywhere; the next open by the same claimant must always succeed,
/// replay every durable frame, and end with a fencing token strictly
/// above the dead writer's.
#[test]
fn sim_takeover_crash_sweep() {
    const TEST: &str = "sim_takeover_crash_sweep";
    let seed = master_seed().wrapping_add(7);

    // Writer "a" (the default `local` owner) dies holding the lease.
    let build = |sim: &SimEnv| {
        let session = sim_session(sim, "a");
        let mut ws =
            Workspace::create_in(Path::new(WS_ROOT), &session, sim.env()).expect("creates");
        for _ in 0..3 {
            ws.append(&JournalOp::Clear).expect("appends");
        }
        std::mem::forget(ws); // died without releasing the lease
    };

    let probe = SimEnv::new(seed);
    build(&probe);
    let base_ops = probe.fs_state().op_count();
    let dead_token = 1; // `create_in` starts the token sequence at 1
    probe.clock().advance(Duration::from_millis(31_000)); // past the 30s lease
    let (ws, _s, report) = Workspace::open_session_as(
        Path::new(WS_ROOT),
        |s| odyssey_registry(s),
        probe.env(),
        "b",
        30_000,
    )
    .expect("stale lease is taken over");
    sim_assert(
        ws.is_writable() && report.ops_replayed == 3 && ws.fencing_token() > dead_token,
        seed,
        TEST,
        "the takeover must be writable, replay all frames, and bump the token",
    );
    let total_ops = probe.fs_state().op_count();
    drop(ws);
    assert!(
        total_ops > base_ops,
        "the takeover must perform mutating disk ops"
    );

    for k in (base_ops + 1)..=total_ops {
        let sim = SimEnv::new(seed);
        build(&sim);
        sim.clock().advance(Duration::from_millis(31_000));
        sim.fs_state().set_crash_at(Some(k));
        let err = Workspace::open_session_as(
            Path::new(WS_ROOT),
            |s| odyssey_registry(s),
            sim.env(),
            "b",
            30_000,
        )
        .map(|_| ())
        .expect_err("the armed crash aborts the takeover");
        sim_assert(
            err.to_string().contains(SIM_CRASH_MARKER),
            seed,
            TEST,
            &format!("crash at op {k}: takeover must surface the crash, got: {err}"),
        );

        let rebooted = sim.crash_and_reboot();
        let (ws2, _s2, report2) = Workspace::open_session_as(
            Path::new(WS_ROOT),
            |s| odyssey_registry(s),
            rebooted.env(),
            "b",
            30_000,
        )
        .unwrap_or_else(|e| {
            panic!(
                "crash at op {k}: retry must succeed: {e}\n  failing seed: {seed}\n  reproduce: {}",
                repro_command(seed, TEST)
            )
        });
        sim_assert(
            ws2.is_writable(),
            seed,
            TEST,
            &format!("crash at op {k}: the retried takeover must be writable"),
        );
        sim_assert(
            report2.ops_replayed == 3,
            seed,
            TEST,
            &format!(
                "crash at op {k}: all 3 durable frames must replay, got {}",
                report2.ops_replayed
            ),
        );
        sim_assert(
            ws2.fencing_token() > dead_token,
            seed,
            TEST,
            &format!(
                "crash at op {k}: the token must end strictly above the dead \
                 writer's, got {}",
                ws2.fencing_token()
            ),
        );
    }
}

/// Satellite acceptance: two workspaces on one store. Writer "a" goes
/// quiet past its lease; "b" takes over with a higher fencing token.
/// Every mutation from the deposed "a" handle is rejected by token
/// check — the journal shows **zero post-fencing frames** from "a" —
/// and a later open replays exactly the five legitimate frames.
#[test]
fn sim_split_brain_fencing() {
    const TEST: &str = "sim_split_brain_fencing";
    let seed = master_seed().wrapping_add(8);
    let sim = SimEnv::new(seed);

    let session_a = sim_session(&sim, "a");
    let mut ws_a =
        Workspace::create_in(Path::new(WS_ROOT), &session_a, sim.env()).expect("creates");
    for _ in 0..3 {
        ws_a.append(&JournalOp::Clear).expect("appends");
    }
    let token_a = ws_a.fencing_token();

    // "a" stalls past its 30s lease; "b" opens the same store.
    sim.clock().advance(Duration::from_millis(31_000));
    let (mut ws_b, _session_b, report_b) = Workspace::open_session_as(
        Path::new(WS_ROOT),
        |s| odyssey_registry(s),
        sim.env(),
        "b",
        30_000,
    )
    .expect("takes over the expired lease");
    sim_assert(
        report_b.ops_replayed == 3 && ws_b.is_writable(),
        seed,
        TEST,
        "the takeover must replay a's acknowledged frames and be writable",
    );
    sim_assert(
        ws_b.fencing_token() > token_a,
        seed,
        TEST,
        "the takeover must bump the fencing token past the deposed writer's",
    );
    for _ in 0..2 {
        ws_b.append(&JournalOp::Clear).expect("appends");
    }

    // The deposed writer wakes up: every mutation is fenced out.
    let err = ws_a
        .append(&JournalOp::BindLatest)
        .expect_err("deposed append is rejected");
    sim_assert(
        matches!(err, StoreError::Degraded(DegradedReason::Fenced { .. })),
        seed,
        TEST,
        &format!("the rejection must be a typed fencing error, got: {err}"),
    );
    sim_assert(
        ws_a.sync().is_err() && ws_a.checkpoint(&session_a).is_err() && !ws_a.is_writable(),
        seed,
        TEST,
        "every later mutation from the deposed handle must stay rejected",
    );

    // Zero post-fencing frames from "a": the journal holds exactly
    // a's 3 pre-takeover frames plus b's 2.
    let journal = sim
        .fs()
        .read(&Path::new(WS_ROOT).join("journal-0.log"))
        .expect("journal readable");
    let scan = scan_frames(&journal);
    sim_assert(
        scan.payloads.len() == 5 && scan.trailing == 0,
        seed,
        TEST,
        &format!(
            "expected exactly 5 frames (3 from a, 2 from b) and no tail, got {} + {} byte(s)",
            scan.payloads.len(),
            scan.trailing
        ),
    );

    // Dropping the deposed handle must not clobber b's lease.
    drop(ws_a);
    sim_assert(
        sim.fs().exists(&Path::new(WS_ROOT).join("LEASE")),
        seed,
        TEST,
        "the deposed writer's drop must leave the new writer's lease alone",
    );

    // A successor open sees the five legitimate frames — nothing more.
    drop(ws_b);
    let (_ws_c, _s_c, report_c) = Workspace::open_session_as(
        Path::new(WS_ROOT),
        |s| odyssey_registry(s),
        sim.env(),
        "c",
        30_000,
    )
    .expect("released lease reopens");
    sim_assert(
        report_c.ops_replayed == 5,
        seed,
        TEST,
        &format!(
            "the successor must replay exactly the 5 legitimate frames, got {}",
            report_c.ops_replayed
        ),
    );
}

/// Fsync reordering: a lying disk that silently drops every third
/// fsync voids the durability contract, but recovery must still land
/// on *some* acknowledged prefix — or fail with an explicit error —
/// never panic, never produce a non-prefix state.
#[test]
fn sim_lying_disk_dropped_fsyncs_still_recover_a_prefix() {
    const TEST: &str = "sim_lying_disk_dropped_fsyncs_still_recover_a_prefix";
    let mut rng = SimRng::new(master_seed().wrapping_add(4));

    let mut recovered_ok = 0usize;
    for _ in 0..8 {
        let seed = rng.next_u64();
        let sim = SimEnv::new(seed);
        sim.fs_state().set_drop_fsync_every(Some(3));
        let (refs, outcome) = drive_workload(&sim, false);
        outcome.expect("a lying disk reports success, so the workload completes");
        sim_assert(
            sim.fs_state().dropped_fsyncs() > 0,
            seed,
            TEST,
            "the lying disk must actually have dropped fsyncs",
        );

        let rebooted = sim.crash_and_reboot();
        // With the manifest swap itself un-fsynced, an unreadable
        // workspace is an honest outcome — the invariant is "prefix
        // or explicit error", never silent corruption.
        if let Ok((_ws, recovered, report)) =
            Workspace::open_session_in(Path::new(WS_ROOT), |s| odyssey_registry(s), rebooted.env())
        {
            let gen = report.generation as usize;
            sim_assert(gen < refs.by_gen.len(), seed, TEST, "phantom generation");
            let snaps = &refs.by_gen[gen];
            sim_assert(
                report.ops_replayed < snaps.len(),
                seed,
                TEST,
                "recovery must not replay beyond the submitted frames",
            );
            sim_assert(
                SessionSpec::from_session(&recovered) == snaps[report.ops_replayed],
                seed,
                TEST,
                "recovered state must be an exact acknowledged prefix, even when \
                 the disk lied about fsyncs",
            );
            recovered_ok += 1;
        }
    }
    assert!(
        recovered_ok > 0,
        "at least one lying-disk world must still recover"
    );
}

/// Tentpole acceptance: the always-on flight recorder leaves a
/// reconstructible trail behind every crash. With a crash armed at
/// every post-save mutating disk op of the multi-session workload, the
/// rebooted disk must yield a parseable, non-empty telemetry tail —
/// anchored by the session stamp fsynced at attach time — with a torn
/// last record tolerated, never fatal.
#[test]
fn sim_telemetry_postmortem_crash_sweep() {
    const TEST: &str = "sim_telemetry_postmortem_crash_sweep";
    let master = master_seed();
    let mut rng = SimRng::new(master.wrapping_add(10));
    let workload_seed = rng.next_u64();

    // Clean reference run: the recorder must have written an undamaged
    // multi-record stream alongside the journal.
    let clean = SimEnv::new(workload_seed);
    let (_refs, outcome) = drive_workload(&clean, false);
    outcome.expect("clean run completes");
    let total_ops = clean.fs_state().op_count();
    let clean_report = read_postmortem(&clean.fs(), Path::new(WS_ROOT)).expect("sidecar reads");
    sim_assert(
        clean_report.records.len() > 1 && clean_report.damaged_lines == 0,
        workload_seed,
        TEST,
        &format!(
            "clean run must leave an undamaged multi-record stream, got {} record(s) \
             and {} damaged line(s)",
            clean_report.records.len(),
            clean_report.damaged_lines
        ),
    );

    // Crash points start after the save: the attach fsyncs the stamp
    // inside the save command, so every swept world has ≥1 durable
    // record to find.
    let save_ops = {
        let probe = SimEnv::new(workload_seed);
        let mut session = sim_session(&probe, "sim");
        let _ = seed_netlist(&mut session);
        let mut ui = Ui::new_in(session, probe.env());
        ui.execute(&format!("save {WS_ROOT}")).expect("saves");
        probe.fs_state().op_count()
    };
    assert!(
        total_ops - save_ops >= 50,
        "the workload must expose >=50 post-save crash points, got {}",
        total_ops - save_ops
    );

    let mut damaged_worlds = 0usize;
    for k in (save_ops + 1)..=total_ops {
        let sim = SimEnv::new(workload_seed);
        sim.fs_state().set_crash_at(Some(k));
        let (_refs, _outcome) = drive_workload(&sim, false);
        let rebooted = sim.crash_and_reboot();
        let report = read_postmortem(&rebooted.fs(), Path::new(WS_ROOT)).unwrap_or_else(|e| {
            panic!(
                "crash at op {k}: postmortem read failed: {e}\n  failing seed: \
                 {workload_seed}\n  reproduce: {}",
                repro_command(workload_seed, TEST)
            )
        });
        sim_assert(
            !report.records.is_empty(),
            workload_seed,
            TEST,
            &format!("crash at op {k}: postmortem must recover at least the session stamp"),
        );
        sim_assert(
            report.records[0].kind == "S",
            workload_seed,
            TEST,
            &format!(
                "crash at op {k}: the stream must start at a session stamp, got `{}`",
                report.records[0].kind
            ),
        );
        for r in &report.records {
            sim_assert(
                matches!(r.kind.as_str(), "S" | "B" | "E" | "I" | "M"),
                workload_seed,
                TEST,
                &format!(
                    "crash at op {k}: unknown record kind `{}` in recovered line `{}`",
                    r.kind, r.line
                ),
            );
        }
        if report.torn_tail || report.damaged_lines > 0 {
            damaged_worlds += 1;
        }
    }
    // Not asserted — the dice may keep every tail whole for a given
    // seed — but worth surfacing when replaying a world by hand.
    let _ = damaged_worlds;
}

/// Tentpole acceptance: the `health` report must agree with the
/// store's actual recovery state in the worlds where it matters — a
/// degraded open against a live foreign lease, and a bit-rot
/// quarantine in a sealed journal segment.
#[test]
fn sim_health_matches_recovery_report() {
    const TEST: &str = "sim_health_matches_recovery_report";
    let seed = master_seed().wrapping_add(11);

    // --- World 1: a live foreign lease forces a degraded open. ---
    let sim = SimEnv::new(seed);
    {
        let mut session = sim_session(&sim, "sim");
        let _ = seed_netlist(&mut session);
        let mut ui = Ui::new_in(session, sim.env());
        ui.execute(&format!("save {WS_ROOT}")).expect("saves");
        ui.execute("goal Layout").expect("journals a command");
    } // dropping the Ui releases the lease
    {
        let mut f = sim
            .fs()
            .create_truncate(&Path::new(WS_ROOT).join("LEASE"))
            .expect("forges the rival lease");
        let far_future = u64::MAX / 2;
        f.write_all(
            format!("{{\"owner\":\"rival\",\"expires_unix_ms\":{far_future},\"token\":99}}")
                .as_bytes(),
        )
        .expect("forges the rival lease");
        f.sync_all().expect("forges the rival lease");
    }
    let mut ui = Ui::new_in(sim_session(&sim, "sim"), sim.env());
    let opened = ui
        .execute(&format!("open {WS_ROOT}"))
        .expect("opens read-only");
    sim_assert(
        opened.contains("opened read-only") && opened.contains("lease held by `rival`"),
        seed,
        TEST,
        &format!("the forged lease must degrade the open, got: {opened}"),
    );
    let health = ui.health_report();
    let check = |name: &str| {
        health
            .checks
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("health must include a `{name}` check"))
    };
    sim_assert(
        health.overall() == HealthStatus::Critical,
        seed,
        TEST,
        "a degraded workspace must report critical overall health",
    );
    sim_assert(
        check("store.mode").status == HealthStatus::Critical
            && check("store.mode").value == "degraded"
            && check("store.mode").detail.contains("rival"),
        seed,
        TEST,
        &format!(
            "store.mode must be critical and name the lease holder, got `{}` / `{}`",
            check("store.mode").value,
            check("store.mode").detail
        ),
    );
    sim_assert(
        check("store.lease").status == HealthStatus::Warn
            && check("store.lease").value == "not held",
        seed,
        TEST,
        "a degraded open holds no lease, so store.lease must warn",
    );
    let rendered = ui.execute("health").expect("health renders while degraded");
    sim_assert(
        rendered.contains("health: critical"),
        seed,
        TEST,
        &format!("the rendered report must lead with the overall status, got: {rendered}"),
    );
    drop(ui);

    // --- World 2: bit rot in a sealed segment quarantines frames, and
    // health reports exactly what the recovery report counted. ---
    let sim = SimEnv::new(seed.wrapping_add(1));
    build_segmented_store(&sim, 4);
    let sealed: Vec<std::path::PathBuf> = sim
        .fs_state()
        .current_paths()
        .into_iter()
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("journal-") && n.ends_with(".log"))
        })
        .collect();
    assert!(sealed.len() > 2, "rotation must seal segments");
    let target = &sealed[1];
    let len = sim.fs_state().file_len(target).expect("segment exists");
    sim_assert(
        sim.fs_state().corrupt_file(target, len / 2, 0x5A),
        seed,
        TEST,
        "the corrupted byte must exist",
    );
    let mut ui = Ui::new_in(sim_session(&sim, "sim"), sim.env());
    let opened = ui
        .execute(&format!("open {WS_ROOT}"))
        .expect("opens after rot");
    // The authoritative count, straight from the open output's
    // recovery JSON: the sum of quarantine files each segment left.
    let recovery_json = opened
        .lines()
        .find_map(|l| l.strip_prefix("recovery: "))
        .expect("open output includes the recovery JSON");
    let recovery: serde::Value = serde_json::from_str(recovery_json).expect("recovery parses");
    let quarantined: usize = match recovery.get("segments") {
        Some(serde::Value::Seq(segs)) => segs
            .iter()
            .map(|s| match s.get("quarantined_as") {
                Some(serde::Value::Seq(q)) => q.len(),
                _ => 0,
            })
            .sum(),
        _ => 0,
    };
    sim_assert(
        quarantined > 0,
        seed,
        TEST,
        "flipping a sealed-segment byte must quarantine at least one frame",
    );
    let health = ui.health_report();
    let qcheck = health
        .checks
        .iter()
        .find(|c| c.name == "store.quarantine")
        .expect("health must include store.quarantine");
    sim_assert(
        qcheck.status == HealthStatus::Warn && qcheck.value == format!("{quarantined} quarantined"),
        seed,
        TEST,
        &format!(
            "store.quarantine must warn with the recovery report's count \
             ({quarantined}), got `{}` ({:?})",
            qcheck.value, qcheck.status
        ),
    );
}

/// Builds a distinct content-cache entry for the sweep: key and
/// payload are functions of the seed and index only.
fn cache_entry_for(seed: u64, i: u64) -> (hercules::cache::CacheKey, hercules::cache::CacheEntry) {
    let mut b = hercules::cache::KeyBuilder::new("sim.cache.sweep");
    b.field_u64("seed", seed);
    b.field_u64("index", i);
    let key = b.finish();
    let entry = hercules::cache::CacheEntry {
        key,
        tool: format!("SimTool{i}"),
        created_ms: 1_000 + i,
        outputs: vec![hercules::cache::CachedOutput {
            entity: "SimProduct".to_owned(),
            name: format!("run-{i}"),
            data: vec![i as u8 ^ 0x5A; 64 + i as usize],
        }],
    };
    (key, entry)
}

/// Crash-point sweep over the on-disk cache tier's write-back path:
/// for every single filesystem operation of the write-back schedule,
/// crash there, reboot from the crash image, and require that (a) the
/// cache directory is still loadable, (b) every lookup is either a
/// byte-correct hit or a miss — never wrong data — and (c) an insert
/// whose write-back completed before the crash point survives it
/// (atomic tmp/fsync/rename durability). Also checks the degraded
/// session keeps serving from memory after the disk dies.
#[test]
fn sim_cache_writeback_crash_sweep() {
    const TEST: &str = "sim_cache_writeback_crash_sweep";
    use hercules::cache::{CacheConfig, ContentCache};
    use hercules::obs::Metrics;
    let seed = master_seed();
    const ENTRIES: u64 = 6;
    let entries: Vec<_> = (0..ENTRIES).map(|i| cache_entry_for(seed, i)).collect();

    // Probe run, no crash: record the op-count boundary after each
    // insert's (synchronous, under sim) write-back.
    let probe = SimEnv::new(seed);
    let cache = ContentCache::open(
        &probe.fs(),
        "/cache",
        None,
        CacheConfig::default(),
        probe.clock(),
        Metrics::disabled(),
    )
    .expect("probe open");
    assert!(cache.sync_writes(), "sim write-back is synchronous");
    let open_ops = probe.fs_state().op_count();
    let mut after_ops = Vec::new();
    for (key, entry) in &entries {
        cache.insert(key, entry);
        after_ops.push(probe.fs_state().op_count());
    }
    let total_ops = probe.fs_state().op_count();
    sim_assert(
        total_ops > open_ops,
        seed,
        TEST,
        "write-back must touch the simulated disk",
    );

    for crash_at in open_ops + 1..=total_ops {
        let sim = SimEnv::new(seed);
        let cache = ContentCache::open(
            &sim.fs(),
            "/cache",
            None,
            CacheConfig::default(),
            sim.clock(),
            Metrics::disabled(),
        )
        .expect("open happens before the sweep window");
        sim.fs_state().set_crash_at(Some(crash_at));
        for (key, entry) in &entries {
            // Disk errors are swallowed into counters: the insert (and
            // the session around it) must keep going.
            cache.insert(key, entry);
        }
        // Degraded, not dead: the memory tier still serves everything.
        for (key, entry) in &entries {
            let got = cache.lookup(key);
            sim_assert(
                got.as_ref() == Some(entry),
                seed,
                TEST,
                &format!("memory tier must keep serving after a disk crash at op {crash_at}"),
            );
        }

        let rebooted = sim.crash_and_reboot();
        let fresh = ContentCache::open(
            &rebooted.fs(),
            "/cache",
            None,
            CacheConfig::default(),
            rebooted.clock(),
            Metrics::disabled(),
        )
        .unwrap_or_else(|e| {
            panic!(
                "cache must be loadable after a crash at op {crash_at}: {e}\n  reproduce: {}",
                repro_command(seed, TEST)
            )
        });
        for (i, (key, expected)) in entries.iter().enumerate() {
            match fresh.lookup(key) {
                Some(got) => sim_assert(
                    got == *expected,
                    seed,
                    TEST,
                    &format!("crash at op {crash_at}: entry {i} served with wrong bytes"),
                ),
                // Op number `crash_at` itself fails, so only inserts
                // whose last op landed strictly before it are durable.
                None => sim_assert(
                    after_ops[i] >= crash_at,
                    seed,
                    TEST,
                    &format!(
                        "crash at op {crash_at}: entry {i} completed write-back at op {} \
                         but did not survive the reboot",
                        after_ops[i]
                    ),
                ),
            }
        }
        // GC over the crash image reaps any torn tmp file and never
        // drops a valid entry.
        let report = fresh.gc().unwrap_or_else(|e| {
            panic!(
                "gc must succeed on the crash image (op {crash_at}): {e}\n  reproduce: {}",
                repro_command(seed, TEST)
            )
        });
        sim_assert(
            report.dropped == 0,
            seed,
            TEST,
            &format!(
                "crash at op {crash_at}: atomic write-back must never leave a torn entry \
                 under an entry name (gc dropped {})",
                report.dropped
            ),
        );
        for (i, (key, expected)) in entries.iter().enumerate() {
            if after_ops[i] < crash_at {
                let got = fresh.lookup(key);
                sim_assert(
                    got.as_ref() == Some(expected),
                    seed,
                    TEST,
                    &format!("crash at op {crash_at}: gc evicted surviving entry {i}"),
                );
            }
        }
    }
}
