//! Environment hygiene guard: production code in `crates/exec`,
//! `crates/core`, `crates/analyze`, and `crates/flow` must reach time
//! and the filesystem only through the `hercules-sim` capability
//! handles (`Clock`, `Fs`) or injected closures, never through the
//! ambient `std` APIs — otherwise the deterministic simulator has a
//! blind spot, a seed no longer fixes the run, and analysis timings
//! stop being reproducible.
//!
//! The real-environment adapter lives in `crates/sim/src/fs.rs` and
//! `crates/sim/src/clock.rs`; binaries and `#[cfg(test)]` code are
//! exempt (tests run only in the real environment).

use std::fs;
use std::path::{Path, PathBuf};

/// Ambient-authority patterns the guarded crates must not use.
const FORBIDDEN: &[&str] = &[
    "Instant::now",
    "SystemTime::now",
    "thread::sleep",
    "std::fs::",
];

/// Files allowed to keep specific ambient calls, with the reason.
fn allowed(path: &Path, pattern: &str) -> bool {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    match (name, pattern) {
        // Toy and fault-injection encapsulations model slow tools with
        // real sleeps; they are test scaffolding that never runs under
        // the simulator's determinism contract.
        ("toy.rs", "thread::sleep") | ("fault.rs", "thread::sleep") => true,
        ("toy.rs", "Instant::now") | ("fault.rs", "Instant::now") => true,
        _ => false,
    }
}

/// Strips `#[cfg(test)]`-gated modules: everything from a line holding
/// the attribute through the end of the file (the convention in this
/// workspace puts the test module last).
fn strip_test_modules(source: &str) -> String {
    match source.find("#[cfg(test)]") {
        Some(idx) => source[..idx].to_owned(),
        None => source.to_owned(),
    }
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // Binaries drive the real environment by definition.
            if path.file_name().and_then(|n| n.to_str()) == Some("bin") {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

#[test]
fn simulated_crates_use_no_ambient_time_or_fs() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let crates_dir = manifest.parent().expect("crates dir");
    let mut violations = Vec::new();

    for krate in ["exec", "core", "analyze", "flow"] {
        let src = crates_dir.join(krate).join("src");
        assert!(src.is_dir(), "missing source tree: {}", src.display());
        let mut files = Vec::new();
        rust_sources(&src, &mut files);
        assert!(!files.is_empty(), "no sources under {}", src.display());

        for file in files {
            let source = fs::read_to_string(&file).expect("readable source");
            let production = strip_test_modules(&source);
            for pattern in FORBIDDEN {
                if allowed(&file, pattern) {
                    continue;
                }
                for (lineno, line) in production.lines().enumerate() {
                    let line = line.trim_start();
                    if line.starts_with("//") {
                        continue;
                    }
                    if line.contains(pattern) {
                        violations.push(format!(
                            "{}:{}: `{pattern}` — route this through hercules_sim::{} instead",
                            file.display(),
                            lineno + 1,
                            if pattern.contains("fs") {
                                "Fs"
                            } else {
                                "Clock"
                            },
                        ));
                    }
                }
            }
        }
    }

    assert!(
        violations.is_empty(),
        "ambient time/fs usage in simulated crates:\n{}",
        violations.join("\n")
    );
}
