//! Real-filesystem round trip of the operational observability stack:
//! a saved workspace records flight-recorder telemetry as commands
//! run, `health` renders and serializes, the postmortem reader
//! reconstructs the stream after the process is gone, and the
//! Prometheus renderer exports the session metrics.

use std::path::PathBuf;

use hercules::obs::{render_prometheus, HealthStatus};
use hercules::ui::Ui;
use hercules::{read_postmortem, Session};

fn temp_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hercules-telemetry-{tag}-{}", std::process::id()))
}

#[test]
fn workspace_records_telemetry_health_and_prometheus() {
    let root = temp_root("roundtrip");
    std::fs::remove_dir_all(&root).ok();

    let mut ui = Ui::new(Session::odyssey("jbb"));
    ui.execute(&format!("save {}", root.display()))
        .expect("saves");
    ui.execute("goal Performance").expect("goal");
    ui.execute("expand n0").expect("expand");
    ui.execute("bind-latest").expect("binds");
    // The run fails (leaves are still unbound) — the traced attempt
    // must land in the flight recorder all the same.
    let _ = ui.execute("run");
    ui.execute("lint").expect("lints");
    ui.execute("checkpoint").expect("checkpoints");

    // Health: ok overall, renderable both ways.
    let health = ui.health_report();
    assert_eq!(
        health.overall(),
        HealthStatus::Ok,
        "a fresh writable workspace must be healthy: {}",
        health.render_text()
    );
    let text = ui.execute("health").expect("health renders");
    assert!(text.starts_with("health: ok"), "{text}");
    assert!(text.contains("store.mode"), "{text}");
    let json = ui.execute("health --json").expect("health serializes");
    assert!(
        json.starts_with('{') && json.contains("\"status\":\"ok\""),
        "{json}"
    );

    // Prometheus: counters, gauges, and the lint histogram as a
    // summary with quantiles.
    let prom = render_prometheus(&ui.session().metrics().snapshot());
    assert!(prom.contains("# TYPE"), "{prom}");
    assert!(prom.contains("hercules_analyze_lint_ns"), "{prom}");
    assert!(prom.contains("quantile=\"0.99\""), "{prom}");
    assert!(prom.contains("hercules_telemetry_records"), "{prom}");
    drop(ui);

    // Postmortem after the process is gone: the sidecar reconstructs
    // an undamaged stream anchored at the session stamp.
    let fs = hercules::sim::Fs::real();
    let report = read_postmortem(&fs, &root).expect("sidecar reads");
    assert!(
        report.records.len() >= 2,
        "expected the stamp plus recorded spans, got {} record(s)",
        report.records.len()
    );
    assert_eq!(report.records[0].kind, "S");
    assert_eq!(report.damaged_lines, 0);
    assert!(!report.torn_tail);
    assert!(report
        .records
        .iter()
        .any(|r| r.kind == "B" || r.kind == "E"));

    // A second session rolls a fresh sidecar; the reader stitches both
    // files in order.
    let mut ui = Ui::new(Session::odyssey("jbb"));
    ui.execute(&format!("open {}", root.display()))
        .expect("reopens");
    drop(ui);
    let report2 = read_postmortem(&fs, &root).expect("sidecars read");
    assert!(
        report2.files.len() >= 2,
        "each writable attach must add a sidecar, got {:?}",
        report2.files
    );
    assert!(report2.records.len() >= report.records.len());

    std::fs::remove_dir_all(&root).ok();
}
