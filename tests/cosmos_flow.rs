//! Experiment F2: a tool created during the design (Fig. 2). The
//! simulator compiler turns a netlist into a `CompiledSimulator` — a
//! tool entity instance with a derivation — which then produces
//! `SwitchSimulation` results from stimuli.

use hercules::{eda, history::Derivation, history::Metadata, Session};

fn seed_adder(session: &mut Session) -> hercules::history::InstanceId {
    let schema = session.schema().clone();
    let editor = schema.require("CircuitEditor").expect("known");
    let edited = schema.require("EditedNetlist").expect("known");
    let tool = session.db().instances_of(editor)[0];
    session
        .db_mut()
        .record_derived(
            edited,
            Metadata::by("tester").named("fa"),
            &eda::cells::full_adder().to_bytes(),
            Derivation::by_tool(tool, []),
        )
        .expect("records")
}

#[test]
fn compile_then_simulate_through_flows() {
    let mut session = Session::odyssey("tester");
    let netlist = seed_adder(&mut session);

    // Flow 1 (Fig. 2 upper half): CompiledSimulator <- SimulatorCompiler
    // <- Netlist.
    let compiled_node = session
        .start_from_goal("CompiledSimulator")
        .expect("starts");
    let created = session.expand(compiled_node).expect("expands");
    let netlist_node = created[1];
    session.select(netlist_node, netlist);
    session.bind_latest().expect("binds");
    session.run().expect("runs");
    let report = session.last_report().expect("ran").clone();
    let compiled = report.single(compiled_node);

    // The compiled simulator is a *tool instance with a derivation*.
    let inst = session.db().instance(compiled).expect("present");
    assert!(session.db().is_tool_instance(compiled).expect("checks"));
    let derivation = inst.derivation().expect("created during the design");
    assert!(derivation.inputs.contains(&netlist));

    // Its payload is a real compiled program.
    let program = session
        .db()
        .data_of(compiled)
        .expect("present")
        .expect("data")
        .to_vec();
    let decoded = eda::CompiledSimulator::from_bytes(&program).expect("program");
    assert_eq!(decoded.inputs().len(), 3);

    // Flow 2 (Fig. 2 lower half): SwitchSimulation <- CompiledSimulator
    // <- Stimuli, binding the tool node to the *instance we just made*.
    session.clear_flow();
    let sim_node = session.start_from_goal("SwitchSimulation").expect("starts");
    let created = session.expand(sim_node).expect("expands");
    let tool_node = created[0];
    session.select(tool_node, compiled);
    session.bind_latest().expect("binds");
    session.run().expect("runs");
    let report = session.last_report().expect("ran").clone();
    let sim_result = report.single(sim_node);

    let bytes = session
        .db()
        .data_of(sim_result)
        .expect("present")
        .expect("data")
        .to_vec();
    let decoded = eda::SwitchSimulation::from_bytes(&bytes).expect("simulation");
    assert!(decoded.vectors >= 8, "adder walk has 8 vectors");

    // The switch-level results agree with the gate-level truth table.
    let sum = decoded.output("sum").expect("sum output");
    assert!(sum.transitions() > 0);

    // Backward chaining from the simulation reaches the *netlist* via
    // the compiled tool: the derivation history spans the tool's own
    // creation.
    let ancestors = session.db().ancestors(sim_result).expect("chains");
    assert!(ancestors.contains(&compiled));
    assert!(ancestors.contains(&netlist));
}

#[test]
fn one_compiled_simulator_runs_many_stimuli() {
    let mut session = Session::odyssey("tester");
    let netlist = seed_adder(&mut session);

    // Compile once.
    let compiled_node = session
        .start_from_goal("CompiledSimulator")
        .expect("starts");
    let created = session.expand(compiled_node).expect("expands");
    session.select(created[1], netlist);
    session.bind_latest().expect("binds");
    session.run().expect("runs");
    let compiled = session.last_report().expect("ran").single(compiled_node);

    // Record three more stimulus sets and fan out over all of them with
    // multi-select (§4.1) — one compiled tool, several runs.
    let schema = session.schema().clone();
    let stimuli_entity = schema.require("Stimuli").expect("known");
    let mut selections = Vec::new();
    for seed in 0..3u64 {
        let s = eda::Stimuli::random(&["a", "b", "cin"], 8, 25, seed);
        let inst = session
            .db_mut()
            .record_primary(
                stimuli_entity,
                Metadata::by("tester").named(&format!("random{seed}")),
                &s.to_bytes(),
            )
            .expect("records");
        selections.push(inst);
    }

    session.clear_flow();
    let sim_node = session.start_from_goal("SwitchSimulation").expect("starts");
    let created = session.expand(sim_node).expect("expands");
    let tool_node = created[0];
    let stim_node = created[1];
    session.select(tool_node, compiled);
    session.select_many(stim_node, &selections);
    session.run().expect("runs");
    let report = session.last_report().expect("ran").clone();
    assert_eq!(report.runs(), 3, "one run per stimulus set");
    assert_eq!(report.instances_of(sim_node).len(), 3);
}
